//! Reduction recognition.
//!
//! Recognizes scalar reductions (`s = s + e`, `s = s * e`,
//! `s = min(s, e)`, `s = max(s, e)`) inside a loop: the accumulator may
//! appear *only* in such updates, so the loop can be parallelized with a
//! privatized partial accumulator per processor.

use irr_frontend::{BinOp, Expr, Intrinsic, LValue, Program, StmtId, StmtKind, VarId};

/// The reduction operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReductionOp {
    Sum,
    Product,
    Min,
    Max,
}

/// A recognized scalar reduction in a loop.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The accumulator variable.
    pub var: VarId,
    /// The operator.
    pub op: ReductionOp,
    /// The update statements.
    pub updates: Vec<StmtId>,
}

/// Recognizes the reductions of one loop body. An accumulator qualifies
/// when every appearance of it inside the loop is within one of its own
/// update statements, all updates use the same operator, and the update
/// expressions do not read the accumulator elsewhere.
pub fn recognize_reductions(program: &Program, loop_stmt: StmtId) -> Vec<Reduction> {
    let body: Vec<StmtId> = match &program.stmt(loop_stmt).kind {
        StmtKind::Do { body, .. } | StmtKind::While { body, .. } => body.clone(),
        _ => return Vec::new(),
    };
    let all = program.stmts_in(&body);
    // Candidate updates per variable.
    let mut candidates: Vec<Reduction> = Vec::new();
    for &s in &all {
        if let Some((v, op)) = reduction_update(program, s) {
            match candidates.iter_mut().find(|r| r.var == v) {
                Some(r) => {
                    if r.op == op {
                        r.updates.push(s);
                    } else {
                        r.updates.clear(); // mixed operators: disqualify
                    }
                }
                None => candidates.push(Reduction {
                    var: v,
                    op,
                    updates: vec![s],
                }),
            }
        }
    }
    candidates.retain(|r| !r.updates.is_empty());
    // Reject accumulators read or written outside their updates.
    candidates.retain(|r| {
        all.iter().all(|&s| {
            if r.updates.contains(&s) {
                return true;
            }
            let mut uses = false;
            irr_frontend::visit::for_each_expr_in_stmt(program, s, |e| {
                if e.mentions(r.var) {
                    uses = true;
                }
            });
            let writes = match &program.stmt(s).kind {
                StmtKind::Assign { lhs, .. } => lhs.var() == r.var,
                StmtKind::Do { var, .. } => *var == r.var,
                StmtKind::Call { .. } => true, // conservative
                _ => false,
            };
            !uses && !writes
        })
    });
    candidates
}

/// Matches `v = v op e` / `v = e op v` (op commutative) or
/// `v = min/max(v, e)`. The accumulator must not occur in `e`.
fn reduction_update(program: &Program, s: StmtId) -> Option<(VarId, ReductionOp)> {
    let StmtKind::Assign {
        lhs: LValue::Scalar(v),
        rhs,
    } = &program.stmt(s).kind
    else {
        return None;
    };
    let v = *v;
    match rhs {
        Expr::Bin(BinOp::Add, a, b) => {
            if a.is_var(v) && !b.mentions(v) {
                return Some((v, ReductionOp::Sum));
            }
            if b.is_var(v) && !a.mentions(v) {
                return Some((v, ReductionOp::Sum));
            }
            None
        }
        Expr::Bin(BinOp::Sub, a, b) => {
            // s = s - e is a sum reduction with negated operand.
            if a.is_var(v) && !b.mentions(v) {
                return Some((v, ReductionOp::Sum));
            }
            None
        }
        Expr::Bin(BinOp::Mul, a, b) => {
            if (a.is_var(v) && !b.mentions(v)) || (b.is_var(v) && !a.mentions(v)) {
                return Some((v, ReductionOp::Product));
            }
            None
        }
        Expr::Call(intr, args) if args.len() == 2 => {
            let op = match intr {
                Intrinsic::Min => ReductionOp::Min,
                Intrinsic::Max => ReductionOp::Max,
                _ => return None,
            };
            if (args[0].is_var(v) && !args[1].mentions(v))
                || (args[1].is_var(v) && !args[0].mentions(v))
            {
                Some((v, op))
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;
    use irr_frontend::Program;

    fn first_loop(p: &Program) -> StmtId {
        p.stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .find(|s| p.stmt(*s).kind.is_loop())
            .unwrap()
    }

    #[test]
    fn sum_reduction() {
        let p = parse_program(
            "program t
             integer i, n
             real s, x(100)
             s = 0
             do i = 1, n
               s = s + x(i)
             enddo
             end",
        )
        .unwrap();
        let r = recognize_reductions(&p, first_loop(&p));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].op, ReductionOp::Sum);
        assert_eq!(p.symbols.name(r[0].var), "s");
    }

    #[test]
    fn conditional_and_multiple_updates() {
        let p = parse_program(
            "program t
             integer i, n
             real s, x(100)
             do i = 1, n
               if (x(i) > 0) then
                 s = s + x(i)
               else
                 s = s + 1
               endif
             enddo
             end",
        )
        .unwrap();
        let r = recognize_reductions(&p, first_loop(&p));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].updates.len(), 2);
    }

    #[test]
    fn min_max_reductions() {
        let p = parse_program(
            "program t
             integer i, n
             real lo, hi, x(100)
             do i = 1, n
               lo = min(lo, x(i))
               hi = max(hi, x(i))
             enddo
             end",
        )
        .unwrap();
        let r = recognize_reductions(&p, first_loop(&p));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn accumulator_read_elsewhere_disqualifies() {
        let p = parse_program(
            "program t
             integer i, n
             real s, x(100)
             do i = 1, n
               s = s + x(i)
               x(i) = s
             enddo
             end",
        )
        .unwrap();
        assert!(recognize_reductions(&p, first_loop(&p)).is_empty());
    }

    #[test]
    fn mixed_operators_disqualify() {
        let p = parse_program(
            "program t
             integer i, n
             real s, x(100)
             do i = 1, n
               s = s + x(i)
               s = s * 2
             enddo
             end",
        )
        .unwrap();
        assert!(recognize_reductions(&p, first_loop(&p)).is_empty());
    }

    #[test]
    fn accumulator_in_update_operand_disqualifies() {
        let p = parse_program(
            "program t
             integer i, n
             real s
             do i = 1, n
               s = s + s
             enddo
             end",
        )
        .unwrap();
        assert!(recognize_reductions(&p, first_loop(&p)).is_empty());
    }
}
