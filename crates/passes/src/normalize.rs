//! Loop normalization.
//!
//! Rewrites constant-step `do` loops into unit-step form so every later
//! phase only sees `do i' = 1, n` loops:
//!
//! ```text
//! do i = lo, hi, c        do i2 = 1, (hi - lo + c) / c
//!   ... i ...        =>     i = lo + (i2 - 1) * c      (synthesized)
//! enddo                     ... i ...
//!                         enddo
//! ```
//!
//! The original induction variable becomes an ordinary derived variable,
//! which the scalar passes then clean up.

use irr_frontend::diag::SourceLoc;
use irr_frontend::{Expr, LValue, Program, ScalarType, Stmt, StmtId, StmtKind};

/// Normalizes every constant-step (`step != 1`) `do` loop. Returns the
/// number of loops rewritten.
pub fn normalize_loops(program: &mut Program) -> usize {
    let mut count = 0;
    for i in 0..program.procedures.len() {
        for s in program.stmts_in(&program.procedures[i].body.clone()) {
            let StmtKind::Do {
                var,
                lo,
                hi,
                step: Some(step),
                body,
                label,
            } = program.stmt(s).kind.clone()
            else {
                continue;
            };
            let Some(c) = step.as_int_lit() else { continue };
            if c == 1 {
                // Drop the redundant step.
                program.stmt_mut(s).kind = StmtKind::Do {
                    var,
                    lo,
                    hi,
                    step: None,
                    body,
                    label,
                };
                continue;
            }
            if c <= 0 {
                continue; // negative/zero steps are left alone
            }
            // Fresh induction variable.
            let fresh_name = fresh_var_name(program, "i_nrm");
            let fresh = program
                .symbols
                .declare(&fresh_name, ScalarType::Int, Vec::new())
                .expect("fresh name cannot conflict");
            // i = lo + (i2 - 1) * c, prepended to the body.
            let derive = StmtKind::Assign {
                lhs: LValue::Scalar(var),
                rhs: Expr::add(
                    lo.clone(),
                    Expr::mul(Expr::sub(Expr::Var(fresh), Expr::int(1)), Expr::int(c)),
                ),
            };
            let derive_id = StmtId(program.stmts.len() as u32);
            program.stmts.push(Stmt {
                id: derive_id,
                kind: derive,
                loc: SourceLoc::synthetic(),
            });
            let mut new_body = vec![derive_id];
            new_body.extend(body);
            // Trip count: (hi - lo + c) / c with floor division.
            let trip = Expr::bin(
                irr_frontend::BinOp::Div,
                Expr::add(Expr::sub(hi.clone(), lo.clone()), Expr::int(c)),
                Expr::int(c),
            );
            program.stmt_mut(s).kind = StmtKind::Do {
                var: fresh,
                lo: Expr::int(1),
                hi: trip,
                step: None,
                body: new_body,
                label,
            };
            count += 1;
        }
    }
    count
}

fn fresh_var_name(program: &Program, base: &str) -> String {
    let mut k = 0;
    loop {
        let name = format!("{base}{k}");
        if program.symbols.lookup(&name).is_none() {
            return name;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    #[test]
    fn constant_step_is_normalized() {
        let mut p = parse_program(
            "program t
             integer i
             real x(100)
             do i = 1, 99, 2
               x(i) = 1
             enddo
             end",
        )
        .unwrap();
        let n = normalize_loops(&mut p);
        assert_eq!(n, 1);
        let printed = irr_frontend::print_program(&p);
        assert!(printed.contains("do i_nrm0 = 1,"), "printed:\n{printed}");
        assert!(
            printed.contains("i = (1 + ((i_nrm0 - 1) * 2))"),
            "printed:\n{printed}"
        );
    }

    #[test]
    fn unit_step_is_cleaned() {
        let mut p = parse_program(
            "program t
             integer i
             real x(10)
             do i = 1, 10, 1
               x(i) = 1
             enddo
             end",
        )
        .unwrap();
        assert_eq!(normalize_loops(&mut p), 0);
        let body = p.procedure(p.main()).body.clone();
        match &p.stmt(body[0]).kind {
            StmtKind::Do { step, .. } => assert!(step.is_none()),
            other => panic!("expected do, got {other:?}"),
        }
    }

    #[test]
    fn negative_step_left_alone() {
        let mut p = parse_program(
            "program t
             integer i
             real x(10)
             do i = 10, 1, 0 - 1
               x(i) = 1
             enddo
             end",
        )
        .unwrap();
        // Step is an expression, not a literal: left alone.
        assert_eq!(normalize_loops(&mut p), 0);
    }
}
