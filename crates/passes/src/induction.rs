//! Induction variable substitution.
//!
//! A scalar `q` that is incremented by a constant exactly once per
//! iteration, unconditionally, at the top level of a `do` loop body is a
//! derived induction variable. The pass removes the increment, rewrites
//! uses of `q` inside the loop as `q + c*(i - lo [+1])` (where `q` now
//! always holds its loop-entry value), and appends
//! `q = q + c * max(hi - lo + 1, 0)` after the loop to restore the final
//! value. Irregular-looking subscripts like `x(q)` thus become affine in
//! the loop index.
//!
//! Conditional increments (the gather loops of §4) are deliberately
//! *not* substituted — those are exactly the cases the paper's irregular
//! analyses exist for.

use irr_frontend::diag::SourceLoc;
use irr_frontend::{BinOp, Expr, Intrinsic, LValue, Program, Stmt, StmtId, StmtKind, VarId};

/// Applies induction variable substitution to every `do` loop in the
/// program. Returns the number of variables substituted.
pub fn substitute_induction_variables(program: &mut Program) -> usize {
    let mut count = 0;
    for i in 0..program.procedures.len() {
        let body = program.procedures[i].body.clone();
        let new_body = walk_body(program, body, &mut count);
        program.procedures[i].body = new_body;
    }
    count
}

/// Processes a body list, returning the (possibly longer) replacement.
fn walk_body(program: &mut Program, body: Vec<StmtId>, count: &mut usize) -> Vec<StmtId> {
    let mut out = Vec::with_capacity(body.len());
    for s in body {
        // Recurse into nested bodies first.
        match program.stmt(s).kind.clone() {
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body: inner,
                label,
            } => {
                let inner = walk_body(program, inner, count);
                program.stmt_mut(s).kind = StmtKind::Do {
                    var,
                    lo,
                    hi,
                    step,
                    body: inner,
                    label,
                };
                out.push(s);
                // Try to substitute in this loop; may append adjustments.
                for adj in substitute_in_loop(program, s, count) {
                    out.push(adj);
                }
            }
            StmtKind::While { cond, body: inner } => {
                let inner = walk_body(program, inner, count);
                program.stmt_mut(s).kind = StmtKind::While { cond, body: inner };
                out.push(s);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let then_body = walk_body(program, then_body, count);
                let else_body = walk_body(program, else_body, count);
                program.stmt_mut(s).kind = StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                };
                out.push(s);
            }
            _ => out.push(s),
        }
    }
    out
}

/// Recognizes `q = q + c` / `q = q - c` and returns `(q, c)`.
fn increment_of(program: &Program, s: StmtId) -> Option<(VarId, i64)> {
    if let StmtKind::Assign {
        lhs: LValue::Scalar(q),
        rhs,
    } = &program.stmt(s).kind
    {
        match rhs {
            Expr::Bin(BinOp::Add, a, b) => {
                if let (Expr::Var(v), Expr::IntLit(c)) = (a.as_ref(), b.as_ref()) {
                    if v == q {
                        return Some((*q, *c));
                    }
                }
                if let (Expr::IntLit(c), Expr::Var(v)) = (a.as_ref(), b.as_ref()) {
                    if v == q {
                        return Some((*q, *c));
                    }
                }
            }
            Expr::Bin(BinOp::Sub, a, b) => {
                if let (Expr::Var(v), Expr::IntLit(c)) = (a.as_ref(), b.as_ref()) {
                    if v == q {
                        return Some((*q, -*c));
                    }
                }
            }
            _ => {}
        }
    }
    None
}

/// Attempts the substitution for one loop; returns the post-loop
/// adjustment statements to splice after it.
fn substitute_in_loop(program: &mut Program, loop_stmt: StmtId, count: &mut usize) -> Vec<StmtId> {
    let StmtKind::Do {
        var,
        lo,
        hi,
        step,
        body,
        label,
    } = program.stmt(loop_stmt).kind.clone()
    else {
        return Vec::new();
    };
    if step.as_ref().and_then(|e| e.as_int_lit()).unwrap_or(1) != 1 {
        return Vec::new();
    }
    let all = program.stmts_in(&body);
    // Bail out if calls are present (they might touch the candidates).
    if all
        .iter()
        .any(|s| matches!(program.stmt(*s).kind, StmtKind::Call { .. }))
    {
        return Vec::new();
    }
    // The adjustment uses lo/hi after the loop, so the body must not
    // assign anything they mention.
    let assigned = irr_frontend::visit::scalars_assigned_in(program, &body);
    let bounds_stable = !assigned.iter().any(|v| lo.mentions(*v) || hi.mentions(*v));
    if !bounds_stable {
        return Vec::new();
    }
    let candidates: Vec<(usize, StmtId, VarId, i64)> = body
        .iter()
        .enumerate()
        .filter_map(|(pos, s)| increment_of(program, *s).map(|(q, c)| (pos, *s, q, c)))
        .filter(|(_, inc_stmt, q, _)| {
            *q != var
                && !all.iter().any(|s| {
                    *s != *inc_stmt
                        && match &program.stmt(*s).kind {
                            StmtKind::Assign {
                                lhs: LValue::Scalar(v),
                                ..
                            } => v == q,
                            StmtKind::Do { var: v, .. } => v == q,
                            _ => false,
                        }
                })
        })
        .collect();
    let mut adjustments = Vec::new();
    let mut new_body = body.clone();
    for (pos, inc_stmt, q, c) in candidates {
        // Rewrite every use of q in the loop (except the increment
        // itself, which is removed): before the increment the value is
        // q + c*(i - lo), after it q + c*(i - lo + 1).
        let make = |extra: i64| {
            let delta = Expr::add(Expr::sub(Expr::Var(var), lo.clone()), Expr::int(extra));
            Expr::add(Expr::Var(q), Expr::mul(Expr::int(c), delta))
        };
        let before = make(0);
        let after = make(1);
        for (k, s) in body.iter().enumerate() {
            if *s == inc_stmt {
                continue;
            }
            let replacement = if k < pos { &before } else { &after };
            for t in program.stmts_in(std::slice::from_ref(s)) {
                rewrite_stmt_uses(program, t, q, replacement);
            }
        }
        // Remove the increment from the body.
        new_body.retain(|s| *s != inc_stmt);
        // q = q + c * max(hi - lo + 1, 0) after the loop.
        let trip = Expr::Call(
            Intrinsic::Max,
            vec![
                Expr::add(Expr::sub(hi.clone(), lo.clone()), Expr::int(1)),
                Expr::int(0),
            ],
        );
        let adj_kind = StmtKind::Assign {
            lhs: LValue::Scalar(q),
            rhs: Expr::add(Expr::Var(q), Expr::mul(Expr::int(c), trip)),
        };
        let id = StmtId(program.stmts.len() as u32);
        program.stmts.push(Stmt {
            id,
            kind: adj_kind,
            loc: SourceLoc::synthetic(),
        });
        adjustments.push(id);
        *count += 1;
    }
    if !adjustments.is_empty() {
        program.stmt_mut(loop_stmt).kind = StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body: new_body,
            label,
        };
    }
    adjustments
}

fn rewrite_stmt_uses(program: &mut Program, s: StmtId, q: VarId, replacement: &Expr) {
    let mut kind = program.stmt(s).kind.clone();
    let mut n = 0usize;
    {
        let mut fix = |e: &mut Expr| n += rewrite_expr_uses(e, q, replacement);
        match &mut kind {
            StmtKind::Assign { lhs, rhs } => {
                fix(rhs);
                if let LValue::Element(_, subs) = lhs {
                    for e in subs {
                        fix(e);
                    }
                }
            }
            StmtKind::Do { lo, hi, step, .. } => {
                fix(lo);
                fix(hi);
                if let Some(st) = step {
                    fix(st);
                }
            }
            StmtKind::While { cond, .. } => fix(cond),
            StmtKind::If { cond, .. } => fix(cond),
            StmtKind::Print { args } => {
                for e in args {
                    fix(e);
                }
            }
            StmtKind::Call { .. } | StmtKind::Return => {}
        }
    }
    if n > 0 {
        program.stmt_mut(s).kind = kind;
    }
}

fn rewrite_expr_uses(e: &mut Expr, q: VarId, replacement: &Expr) -> usize {
    match e {
        Expr::Var(v) if *v == q => {
            *e = replacement.clone();
            1
        }
        Expr::Var(_) | Expr::IntLit(_) | Expr::RealLit(_) => 0,
        Expr::Element(_, subs) => subs
            .iter_mut()
            .map(|x| rewrite_expr_uses(x, q, replacement))
            .sum(),
        Expr::Bin(_, a, b) => {
            rewrite_expr_uses(a, q, replacement) + rewrite_expr_uses(b, q, replacement)
        }
        Expr::Un(_, a) => rewrite_expr_uses(a, q, replacement),
        Expr::Call(_, args) => args
            .iter_mut()
            .map(|x| rewrite_expr_uses(x, q, replacement))
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    #[test]
    fn unconditional_increment_is_substituted() {
        let mut p = parse_program(
            "program t
             integer i, q, n
             real x(100)
             q = 0
             do i = 1, n
               q = q + 1
               x(q) = i
             enddo
             end",
        )
        .unwrap();
        let n = substitute_induction_variables(&mut p);
        assert_eq!(n, 1);
        let printed = irr_frontend::print_program(&p);
        // x(q) becomes x(q + 1*((i-1)+1)); the increment is gone; the
        // final value is restored after the loop.
        assert!(
            printed.contains("x((q + (1 * ((i - 1) + 1))))"),
            "printed:\n{printed}"
        );
        assert!(
            printed.contains("q = (q + (1 * max(((n - 1) + 1), 0)))"),
            "printed:\n{printed}"
        );
        assert!(!printed.contains("q = (q + 1)\n"), "printed:\n{printed}");
    }

    #[test]
    fn conditional_increment_is_left_alone() {
        let mut p = parse_program(
            "program t
             integer i, q, n, ind(100)
             real x(100)
             q = 0
             do i = 1, n
               if (x(i) > 0) then
                 q = q + 1
                 ind(q) = i
               endif
             enddo
             end",
        )
        .unwrap();
        let n = substitute_induction_variables(&mut p);
        assert_eq!(n, 0, "gather loops must not be destroyed");
        let printed = irr_frontend::print_program(&p);
        assert!(printed.contains("ind(q)"), "printed:\n{printed}");
    }

    #[test]
    fn uses_before_increment_get_smaller_offset() {
        let mut p = parse_program(
            "program t
             integer i, q, n
             real x(100), y(100)
             do i = 1, n
               y(i) = x(q)
               q = q + 1
             enddo
             end",
        )
        .unwrap();
        substitute_induction_variables(&mut p);
        let printed = irr_frontend::print_program(&p);
        assert!(
            printed.contains("x((q + (1 * ((i - 1) + 0))))"),
            "printed:\n{printed}"
        );
    }

    #[test]
    fn two_defs_block_substitution() {
        let mut p = parse_program(
            "program t
             integer i, q, n
             real x(100)
             do i = 1, n
               q = q + 1
               x(q) = i
               q = q - 1
             enddo
             end",
        )
        .unwrap();
        assert_eq!(substitute_induction_variables(&mut p), 0);
    }

    #[test]
    fn substituted_loop_matches_interpretation() {
        // Semantic check by hand: q0=0, loop 1..3 writes x(1), x(2),
        // x(3); after the loop q == 3. Verify the rewritten uses with a
        // direct symbolic check on the printed program.
        let mut p = parse_program(
            "program t
             integer i, q
             real x(10)
             q = 0
             do i = 1, 3
               q = q + 1
               x(q) = i
             enddo
             print q
             end",
        )
        .unwrap();
        substitute_induction_variables(&mut p);
        let printed = irr_frontend::print_program(&p);
        // The adjustment restores q = 0 + 1*max(3,0) = 3.
        assert!(printed.contains("max(((3 - 1) + 1), 0)"), "{printed}");
    }

    #[test]
    fn unstable_bounds_block_substitution() {
        let mut p = parse_program(
            "program t
             integer i, q, n
             real x(100)
             do i = 1, n
               q = q + 1
               n = n - 1
               x(q) = i
             enddo
             end",
        )
        .unwrap();
        assert_eq!(substitute_induction_variables(&mut p), 0);
    }
}
