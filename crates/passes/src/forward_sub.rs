//! Forward substitution of scalar definitions into later uses.
//!
//! `m = n - 1 ; do i = 1, m` becomes `do i = 1, n - 1`, exposing the
//! symbolic bound to the range test. Substitution is deliberately
//! conservative: only *single-definition* scalars are propagated (a
//! multiply-defined scalar is usually an index variable whose irregular
//! idiom — `p = 0; p = p + 1; x(p) = ...` — must survive for the §2
//! analyses), only while the defined variable and every variable in its
//! defining expression remain unmodified, and never across calls.

use irr_frontend::{Expr, LValue, Program, StmtId, StmtKind, VarId};
use std::collections::HashMap;

/// Applies forward substitution in every procedure. Returns the number
/// of use sites rewritten.
pub fn forward_substitute(program: &mut Program) -> usize {
    let mut rewrites = 0;
    for i in 0..program.procedures.len() {
        let body = program.procedures[i].body.clone();
        // Scalars assigned more than once in this procedure are index
        // variables, accumulators, or state: never substitute them.
        let mut counts: HashMap<VarId, usize> = HashMap::new();
        for s in program.stmts_in(&body) {
            match &program.stmt(s).kind {
                StmtKind::Assign {
                    lhs: LValue::Scalar(v),
                    ..
                } => {
                    *counts.entry(*v).or_insert(0) += 1;
                }
                StmtKind::Do { var, .. } => {
                    *counts.entry(*var).or_insert(0) += 2;
                }
                _ => {}
            }
        }
        let single_def: std::collections::HashSet<VarId> = counts
            .into_iter()
            .filter(|(_, c)| *c == 1)
            .map(|(v, _)| v)
            .collect();
        let mut defs: HashMap<VarId, Expr> = HashMap::new();
        rewrites += walk(program, &body, &mut defs, &single_def);
    }
    rewrites
}

/// Whether `e` is simple enough to copy: scalars, literals, arithmetic —
/// no array references (their values could change).
fn substitutable(e: &Expr) -> bool {
    match e {
        Expr::IntLit(_) | Expr::RealLit(_) | Expr::Var(_) => true,
        Expr::Element(..) => false,
        Expr::Bin(_, a, b) => substitutable(a) && substitutable(b),
        Expr::Un(_, a) => substitutable(a),
        // Intrinsic calls are values the symbolic layer treats as opaque
        // anchors (e.g. a runtime-derived stack bottom): keep the name.
        Expr::Call(..) => false,
    }
}

fn invalidate(defs: &mut HashMap<VarId, Expr>, killed: VarId) {
    defs.remove(&killed);
    defs.retain(|_, e| !e.mentions(killed));
}

fn kill_region(program: &Program, body: &[StmtId], defs: &mut HashMap<VarId, Expr>) {
    for v in irr_frontend::visit::scalars_assigned_in(program, body) {
        invalidate(defs, v);
    }
    for s in program.stmts_in(body) {
        if matches!(program.stmt(s).kind, StmtKind::Call { .. }) {
            defs.clear();
        }
    }
}

fn walk(
    program: &mut Program,
    body: &[StmtId],
    defs: &mut HashMap<VarId, Expr>,
    single_def: &std::collections::HashSet<VarId>,
) -> usize {
    let mut rewrites = 0;
    for &s in body {
        let kind = program.stmt(s).kind.clone();
        match kind {
            StmtKind::Assign { lhs, mut rhs } => {
                rewrites += subst_expr(&mut rhs, defs);
                let lhs = match lhs {
                    LValue::Scalar(v) => LValue::Scalar(v),
                    LValue::Element(a, mut subs) => {
                        for e in &mut subs {
                            rewrites += subst_expr(e, defs);
                        }
                        LValue::Element(a, subs)
                    }
                };
                if let LValue::Scalar(v) = &lhs {
                    invalidate(defs, *v);
                    if single_def.contains(v) && substitutable(&rhs) && !rhs.mentions(*v) {
                        defs.insert(*v, rhs.clone());
                    }
                }
                program.stmt_mut(s).kind = StmtKind::Assign { lhs, rhs };
            }
            StmtKind::Do {
                var,
                mut lo,
                mut hi,
                mut step,
                body: inner,
                label,
            } => {
                rewrites += subst_expr(&mut lo, defs);
                rewrites += subst_expr(&mut hi, defs);
                if let Some(st) = &mut step {
                    rewrites += subst_expr(st, defs);
                }
                program.stmt_mut(s).kind = StmtKind::Do {
                    var,
                    lo,
                    hi,
                    step,
                    body: inner.clone(),
                    label,
                };
                invalidate(defs, var);
                kill_region(program, &inner, defs);
                rewrites += walk(program, &inner, defs, single_def);
                kill_region(program, &inner, defs);
            }
            StmtKind::While {
                mut cond,
                body: inner,
            } => {
                kill_region(program, &inner, defs);
                rewrites += subst_expr(&mut cond, defs);
                program.stmt_mut(s).kind = StmtKind::While {
                    cond,
                    body: inner.clone(),
                };
                rewrites += walk(program, &inner, defs, single_def);
                kill_region(program, &inner, defs);
            }
            StmtKind::If {
                mut cond,
                then_body,
                else_body,
            } => {
                rewrites += subst_expr(&mut cond, defs);
                program.stmt_mut(s).kind = StmtKind::If {
                    cond,
                    then_body: then_body.clone(),
                    else_body: else_body.clone(),
                };
                let mut d_then = defs.clone();
                let mut d_else = defs.clone();
                rewrites += walk(program, &then_body, &mut d_then, single_def);
                rewrites += walk(program, &else_body, &mut d_else, single_def);
                // Keep only definitions that survived both arms
                // unchanged.
                defs.retain(|v, e| d_then.get(v) == Some(e) && d_else.get(v) == Some(e));
            }
            StmtKind::Call { .. } => {
                defs.clear();
            }
            StmtKind::Print { mut args } => {
                for e in &mut args {
                    rewrites += subst_expr(e, defs);
                }
                program.stmt_mut(s).kind = StmtKind::Print { args };
            }
            StmtKind::Return => {}
        }
    }
    rewrites
}

fn subst_expr(e: &mut Expr, defs: &HashMap<VarId, Expr>) -> usize {
    match e {
        Expr::Var(v) => {
            if let Some(def) = defs.get(v) {
                *e = def.clone();
                1
            } else {
                0
            }
        }
        Expr::IntLit(_) | Expr::RealLit(_) => 0,
        Expr::Element(_, subs) => subs.iter_mut().map(|x| subst_expr(x, defs)).sum(),
        Expr::Bin(_, a, b) => subst_expr(a, defs) + subst_expr(b, defs),
        Expr::Un(_, a) => subst_expr(a, defs),
        Expr::Call(_, args) => args.iter_mut().map(|x| subst_expr(x, defs)).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    #[test]
    fn substitutes_into_loop_bounds() {
        let mut p = parse_program(
            "program t
             integer n, m, i
             real x(100)
             m = n - 1
             do i = 1, m
               x(i) = 1
             enddo
             end",
        )
        .unwrap();
        let r = forward_substitute(&mut p);
        assert!(r >= 1);
        let printed = irr_frontend::print_program(&p);
        assert!(printed.contains("do i = 1, (n - 1)"), "printed:\n{printed}");
    }

    #[test]
    fn redefinition_stops_substitution() {
        let mut p = parse_program(
            "program t
             integer n, m
             real x(100)
             m = n - 1
             n = 5
             x(m) = 1
             end",
        )
        .unwrap();
        forward_substitute(&mut p);
        let printed = irr_frontend::print_program(&p);
        // m's definition mentions n which changed: keep the use symbolic.
        assert!(printed.contains("x(m)"), "printed:\n{printed}");
    }

    #[test]
    fn array_rhs_is_not_substituted() {
        let mut p = parse_program(
            "program t
             integer m, a(10), k
             real x(100)
             m = a(3)
             a(3) = 0
             x(m) = 1
             end",
        )
        .unwrap();
        forward_substitute(&mut p);
        let printed = irr_frontend::print_program(&p);
        assert!(printed.contains("x(m)"), "printed:\n{printed}");
        let _ = p.symbols.lookup("k");
    }

    #[test]
    fn branches_preserve_only_common_defs() {
        let mut p = parse_program(
            "program t
             integer m, c
             real x(100)
             m = 3
             if (c > 0) then
               m = 4
             endif
             x(m) = 1
             end",
        )
        .unwrap();
        forward_substitute(&mut p);
        let printed = irr_frontend::print_program(&p);
        assert!(printed.contains("x(m)"), "printed:\n{printed}");
    }

    #[test]
    fn chains_of_definitions() {
        let mut p = parse_program(
            "program t
             integer a, b, n
             real x(100)
             a = n + 1
             b = a + 1
             x(b) = 1
             end",
        )
        .unwrap();
        forward_substitute(&mut p);
        let printed = irr_frontend::print_program(&p);
        assert!(printed.contains("x(((n + 1) + 1))"), "printed:\n{printed}");
    }
}
