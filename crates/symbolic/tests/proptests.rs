//! Property-based tests of the symbolic layer (deterministic, offline).
//!
//! The central soundness contract: whenever `prove_*` says a fact is
//! provable under an environment, the fact must hold for **every**
//! concrete valuation consistent with that environment. The tests
//! generate random expressions and valuations from a SplitMix64 stream
//! and check the symbolic layer against direct evaluation.

use irr_frontend::VarId;
use irr_symbolic::{prove_eq, prove_ge0, prove_le, AggMode, RangeEnv, Section, SymExpr};
use std::collections::HashMap;

/// Local SplitMix64 copy (irr-symbolic sits below irr-exec in the crate
/// graph, so it cannot borrow `irr_exec::SplitMix64` without a dev-dep
/// cycle through the driver). Same constants, same stream.
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64 + 1) as i64
    }
}

/// A random expression tree over three variables.
#[derive(Clone, Debug)]
enum E {
    Const(i64),
    Var(u8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    /// Floor division by a positive constant.
    Div(Box<E>, i64),
    /// Non-negative remainder by a positive constant.
    Mod(Box<E>, i64),
}

fn draw_expr(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.below(3) == 0 {
        if rng.below(2) == 0 {
            E::Const(rng.range(-6, 6))
        } else {
            E::Var(rng.below(3) as u8)
        }
    } else {
        let d = depth - 1;
        match rng.below(5) {
            0 => E::Add(Box::new(draw_expr(rng, d)), Box::new(draw_expr(rng, d))),
            1 => E::Sub(Box::new(draw_expr(rng, d)), Box::new(draw_expr(rng, d))),
            2 => E::Mul(Box::new(draw_expr(rng, d)), Box::new(draw_expr(rng, d))),
            3 => E::Div(Box::new(draw_expr(rng, d)), rng.range(2, 5)),
            _ => E::Mod(Box::new(draw_expr(rng, d)), rng.range(2, 5)),
        }
    }
}

fn to_sym(e: &E) -> SymExpr {
    match e {
        E::Const(c) => SymExpr::int(*c),
        E::Var(v) => SymExpr::var(VarId(*v as u32)),
        E::Add(a, b) => to_sym(a).add(&to_sym(b)),
        E::Sub(a, b) => to_sym(a).sub(&to_sym(b)),
        E::Mul(a, b) => to_sym(a).mul(&to_sym(b)),
        E::Div(a, c) => to_sym(a).div(&SymExpr::int(*c)),
        E::Mod(a, c) => to_sym(a).mod_op(&SymExpr::int(*c)),
    }
}

/// Direct evaluation with the language's floor semantics.
fn eval(e: &E, vals: &[i64; 3]) -> i64 {
    match e {
        E::Const(c) => *c,
        E::Var(v) => vals[*v as usize],
        E::Add(a, b) => eval(a, vals).wrapping_add(eval(b, vals)),
        E::Sub(a, b) => eval(a, vals).wrapping_sub(eval(b, vals)),
        E::Mul(a, b) => eval(a, vals).wrapping_mul(eval(b, vals)),
        E::Div(a, c) => eval(a, vals).div_euclid(*c),
        E::Mod(a, c) => eval(a, vals).rem_euclid(*c),
    }
}

/// Evaluates a SymExpr (rational polynomial over atoms) directly; the
/// result is a rational `(num, den)` to tolerate intermediate halves.
fn eval_sym(e: &SymExpr, vals: &HashMap<VarId, i64>) -> Option<(i128, i128)> {
    let mut num: i128 = 0;
    for (m, c) in e.terms() {
        let mut term: i128 = *c as i128;
        for a in m.atoms() {
            term *= eval_atom(a, vals)? as i128;
        }
        num += term;
    }
    Some((num, e.den() as i128))
}

fn eval_atom(a: &irr_symbolic::Atom, vals: &HashMap<VarId, i64>) -> Option<i64> {
    use irr_symbolic::{Atom, OpaqueOp};
    match a {
        Atom::Var(v) => vals.get(v).copied(),
        Atom::Elem(..) => None,
        Atom::Opaque(op, args) => {
            let xs: Vec<i64> = args
                .iter()
                .map(|x| {
                    let (n, d) = eval_sym(x, vals)?;
                    if n % d != 0 {
                        return None;
                    }
                    i64::try_from(n / d).ok()
                })
                .collect::<Option<Vec<_>>>()?;
            Some(match op {
                OpaqueOp::Div => {
                    if xs[1] == 0 {
                        return None;
                    }
                    xs[0].div_euclid(xs[1])
                }
                OpaqueOp::Mod => {
                    if xs[1] == 0 {
                        return None;
                    }
                    xs[0].rem_euclid(xs[1])
                }
                OpaqueOp::Min => xs[0].min(xs[1]),
                OpaqueOp::Max => xs[0].max(xs[1]),
            })
        }
    }
}

/// Normalization is value-preserving: the polynomial form evaluates
/// to exactly the tree's value (as a rational with denominator 1
/// after full evaluation).
#[test]
fn normalization_preserves_value() {
    let mut rng = Rng::new(0x7001);
    for _ in 0..512 {
        let e = draw_expr(&mut rng, 3);
        let (v0, v1, v2) = (rng.range(-8, 8), rng.range(-8, 8), rng.range(-8, 8));
        let sym = to_sym(&e);
        let direct = eval(&e, &[v0, v1, v2]);
        let mut vals = HashMap::new();
        vals.insert(VarId(0), v0);
        vals.insert(VarId(1), v1);
        vals.insert(VarId(2), v2);
        if let Some((num, den)) = eval_sym(&sym, &vals) {
            // The polynomial may be an exact rational; the value must
            // still match the integer result exactly.
            assert_eq!(
                num,
                direct as i128 * den,
                "tree {e:?} -> {direct} but poly {sym} evaluates to {num}/{den}"
            );
        }
    }
}

/// Prover soundness: a proven `a >= 0` holds for every valuation in
/// the environment's ranges.
#[test]
fn prove_ge0_is_sound() {
    let mut rng = Rng::new(0x7002);
    for _ in 0..512 {
        let e = draw_expr(&mut rng, 3);
        let (lo0, w0) = (rng.range(-4, 1), rng.range(0, 5));
        let (lo1, w1) = (rng.range(-4, 1), rng.range(0, 5));
        let (s0, s1) = (rng.range(0, 4), rng.range(0, 4));
        let v2 = rng.range(-8, 8);
        let sym = to_sym(&e);
        let mut env = RangeEnv::new();
        env.set_var_range(VarId(0), SymExpr::int(lo0), SymExpr::int(lo0 + w0));
        env.set_var_range(VarId(1), SymExpr::int(lo1), SymExpr::int(lo1 + w1));
        // v2 unconstrained in the env.
        if prove_ge0(&sym, &env) {
            // Sample the box (including endpoints).
            let x0 = (lo0 + s0 % (w0 + 1)).min(lo0 + w0);
            let x1 = (lo1 + s1 % (w1 + 1)).min(lo1 + w1);
            let direct = eval(&e, &[x0, x1, v2]);
            assert!(
                direct >= 0,
                "proved {} >= 0 under v0 in [{},{}], v1 in [{},{}] but eval({:?}, [{x0},{x1},{v2}]) = {}",
                sym,
                lo0,
                lo0 + w0,
                lo1,
                lo1 + w1,
                e,
                direct
            );
        }
    }
}

/// prove_eq is sound.
#[test]
fn prove_eq_is_sound() {
    let mut rng = Rng::new(0x7003);
    for _ in 0..512 {
        let a = draw_expr(&mut rng, 3);
        let b = draw_expr(&mut rng, 3);
        let (v0, v1, v2) = (rng.range(-8, 8), rng.range(-8, 8), rng.range(-8, 8));
        let (sa, sb) = (to_sym(&a), to_sym(&b));
        let env = RangeEnv::new();
        if prove_eq(&sa, &sb, &env) {
            assert_eq!(
                eval(&a, &[v0, v1, v2]),
                eval(&b, &[v0, v1, v2]),
                "proved {sa} == {sb}"
            );
        }
    }
}

/// Substitution commutes with evaluation.
#[test]
fn subst_commutes_with_eval() {
    let mut rng = Rng::new(0x7004);
    for _ in 0..512 {
        let e = draw_expr(&mut rng, 3);
        let r = rng.range(-5, 5);
        let (v1, v2) = (rng.range(-8, 8), rng.range(-8, 8));
        let sym = to_sym(&e).subst(VarId(0), &SymExpr::int(r));
        let direct = eval(&e, &[r, v1, v2]);
        let mut vals = HashMap::new();
        vals.insert(VarId(1), v1);
        vals.insert(VarId(2), v2);
        if let Some((num, den)) = eval_sym(&sym, &vals) {
            assert_eq!(num, direct as i128 * den);
        }
    }
}

// ----- section algebra soundness over concrete integer ranges -----------

fn concrete(lo: i64, hi: i64) -> Section {
    Section::range1(SymExpr::int(lo), SymExpr::int(hi))
}

fn members(s: &Section, universe: std::ops::RangeInclusive<i64>) -> Vec<i64> {
    let env = RangeEnv::new();
    universe
        .filter(|k| {
            let pt = Section::point(vec![SymExpr::int(*k)]);
            !s.provably_disjoint(&pt, &env)
        })
        .collect()
}

/// MAY union contains both operands; MUST intersection is contained
/// in both; subtract_under over-approximates the true difference;
/// subtract_may never keeps a killed element.
#[test]
fn section_ops_respect_directions() {
    let mut rng = Rng::new(0x7005);
    for _ in 0..256 {
        let (a_lo, a_w) = (rng.range(0, 11), rng.range(0, 7));
        let (b_lo, b_w) = (rng.range(0, 11), rng.range(0, 7));
        let env = RangeEnv::new();
        let a = concrete(a_lo, a_lo + a_w);
        let b = concrete(b_lo, b_lo + b_w);
        let uni = 0i64..=24;
        let ma: Vec<i64> = members(&a, uni.clone());
        let mb: Vec<i64> = members(&b, uni.clone());

        let u = a.union_may(&b, &env);
        let mu = members(&u, uni.clone());
        for k in ma.iter().chain(mb.iter()) {
            assert!(mu.contains(k), "union_may lost {k}");
        }

        let i = a.intersect_must(&b, &env);
        let mi = members(&i, uni.clone());
        for k in &mi {
            assert!(
                ma.contains(k) && mb.contains(k),
                "intersect_must invented {k}"
            );
        }

        let d = a.subtract_under(&b, &env);
        let md = members(&d, uni.clone());
        for k in &ma {
            if !mb.contains(k) {
                assert!(md.contains(k), "subtract_under lost live element {k}");
            }
        }

        let dm = a.subtract_may(&b, &env);
        let mdm = members(&dm, uni.clone());
        for k in &mdm {
            assert!(!mb.contains(k), "subtract_may kept killed element {k}");
            assert!(ma.contains(k), "subtract_may invented {k}");
        }

        let um = a.union_must(&b, &env);
        let mum = members(&um, uni.clone());
        for k in &mum {
            assert!(ma.contains(k) || mb.contains(k), "union_must invented {k}");
        }
    }
}

/// Aggregation directions: MAY over-approximates and MUST
/// under-approximates the true union over iterations of a section
/// `[i + c : i + c + w]`.
#[test]
fn aggregation_respects_directions() {
    let mut rng = Rng::new(0x7006);
    for _ in 0..256 {
        let c = rng.range(-3, 3);
        let w = rng.range(0, 2);
        let lo = rng.range(1, 3);
        let span = rng.range(0, 4);
        let stride = rng.range(1, 2);
        let env = RangeEnv::new();
        let var = VarId(9);
        let i = SymExpr::var(var).scale(stride);
        let sec = Section::range1(i.add(&SymExpr::int(c)), i.add(&SymExpr::int(c + w)));
        let hi = lo + span;
        // True union.
        let mut truth: Vec<i64> = Vec::new();
        for it in lo..=hi {
            for k in (stride * it + c)..=(stride * it + c + w) {
                if !truth.contains(&k) {
                    truth.push(k);
                }
            }
        }
        let uni = -20i64..=40;
        let may = sec.aggregate(
            var,
            &SymExpr::int(lo),
            &SymExpr::int(hi),
            &env,
            AggMode::May,
        );
        let m_may = members(&may, uni.clone());
        for k in &truth {
            assert!(m_may.contains(k), "May aggregation lost {k}");
        }
        let must = sec.aggregate(
            var,
            &SymExpr::int(lo),
            &SymExpr::int(hi),
            &env,
            AggMode::Must,
        );
        let m_must = members(&must, uni.clone());
        for k in &m_must {
            assert!(
                truth.contains(k),
                "Must aggregation invented {k} (truth {truth:?}, stride {stride})"
            );
        }
    }
}

/// `extremes_over` brackets the true extremes of a monotone
/// expression.
#[test]
fn extremes_bracket_truth() {
    let mut rng = Rng::new(0x7007);
    for _ in 0..256 {
        let a = rng.range(-4, 4);
        let b = rng.range(-6, 6);
        let lo = rng.range(-3, 2);
        let span = rng.range(0, 5);
        let var = VarId(3);
        let e = SymExpr::var(var).scale(a).add(&SymExpr::int(b));
        let env = RangeEnv::new();
        let hi = lo + span;
        if let Some((emin, emax)) =
            irr_symbolic::extremes_over(&e, var, &SymExpr::int(lo), &SymExpr::int(hi), &env)
        {
            let (emin, emax) = (emin.as_int().unwrap(), emax.as_int().unwrap());
            for it in lo..=hi {
                let v = a * it + b;
                assert!(emin <= v && v <= emax);
            }
            // And they are attained.
            assert!(prove_le(&SymExpr::int(emin), &SymExpr::int(emax), &env));
        }
    }
}
