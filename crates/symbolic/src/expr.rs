//! Normalized symbolic expressions: rational polynomials over atoms.
//!
//! A [`SymExpr`] is `(Σ coeff_k · monomial_k) / den` with integer
//! coefficients, a positive common denominator, monomials sorted and
//! deduplicated, and the gcd of all coefficients and the denominator
//! reduced to 1. Two expressions are semantically equal iff they are
//! structurally equal (for the fragment without opaque operations).
//!
//! Truncating integer division and `mod` are *not* expanded: they become
//! [`Atom::Opaque`] atoms whose arguments are themselves normalized
//! expressions, so structurally equal opaque computations still compare
//! equal. The prover in [`crate::prove`] knows sound bounding rules for
//! them.

use irr_frontend::VarId;
use std::fmt;

/// Opaque (non-polynomial) operations kept as atoms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OpaqueOp {
    /// Truncating integer division (Fortran `/` on integers).
    Div,
    /// Fortran `mod`.
    Mod,
    Min,
    Max,
}

/// An indivisible symbolic quantity.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Atom {
    /// A scalar variable.
    Var(VarId),
    /// An array element, e.g. `pptr(i)`.
    Elem(VarId, Vec<SymExpr>),
    /// An opaque operation over normalized arguments.
    Opaque(OpaqueOp, Vec<SymExpr>),
}

impl Atom {
    /// Wraps the atom as an expression.
    pub fn to_expr(&self) -> SymExpr {
        SymExpr::from_atom(self.clone())
    }

    /// Substitutes `var := replacement` inside the atom (recursively in
    /// subscripts/arguments). Returns the resulting *expression* because
    /// a `Var` atom may be replaced by an arbitrary expression.
    pub fn subst(&self, var: VarId, replacement: &SymExpr) -> SymExpr {
        match self {
            Atom::Var(v) if *v == var => replacement.clone(),
            Atom::Var(_) => self.to_expr(),
            Atom::Elem(a, subs) => {
                let subs: Vec<SymExpr> = subs.iter().map(|s| s.subst(var, replacement)).collect();
                Atom::Elem(*a, subs).to_expr()
            }
            Atom::Opaque(op, args) => {
                let args: Vec<SymExpr> = args.iter().map(|s| s.subst(var, replacement)).collect();
                // Re-normalize: the substitution may make a division exact.
                match op {
                    OpaqueOp::Div if args.len() == 2 => args[0].div(&args[1]),
                    OpaqueOp::Mod if args.len() == 2 => args[0].mod_op(&args[1]),
                    _ => Atom::Opaque(op.clone(), args).to_expr(),
                }
            }
        }
    }

    /// Whether `var` occurs anywhere in the atom.
    pub fn mentions_var(&self, var: VarId) -> bool {
        match self {
            Atom::Var(v) => *v == var,
            Atom::Elem(_, subs) => subs.iter().any(|s| s.mentions_var(var)),
            Atom::Opaque(_, args) => args.iter().any(|s| s.mentions_var(var)),
        }
    }

    /// Whether array `arr` occurs as the base of an element reference
    /// anywhere in the atom.
    pub fn mentions_array(&self, arr: VarId) -> bool {
        match self {
            Atom::Var(_) => false,
            Atom::Elem(a, subs) => *a == arr || subs.iter().any(|s| s.mentions_array(arr)),
            Atom::Opaque(_, args) => args.iter().any(|s| s.mentions_array(arr)),
        }
    }
}

/// A product of atoms (with multiplicity), kept sorted. The empty
/// monomial is the constant `1`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Monomial {
    atoms: Vec<Atom>,
}

impl Monomial {
    /// The constant monomial `1`.
    pub fn unit() -> Monomial {
        Monomial::default()
    }

    /// A monomial consisting of one atom.
    pub fn atom(a: Atom) -> Monomial {
        Monomial { atoms: vec![a] }
    }

    /// Whether this is the constant monomial.
    pub fn is_unit(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Total degree (number of atom factors).
    pub fn degree(&self) -> usize {
        self.atoms.len()
    }

    /// The atom factors.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().cloned());
        atoms.sort();
        Monomial { atoms }
    }
}

/// A normalized symbolic expression; see the module docs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SymExpr {
    /// Sorted by monomial; no zero coefficients; no duplicate monomials.
    terms: Vec<(Monomial, i64)>,
    /// Positive common denominator, coprime with the gcd of coefficients.
    den: i64,
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl SymExpr {
    // ----- constructors ---------------------------------------------------

    /// The integer constant `v`.
    pub fn int(v: i64) -> SymExpr {
        if v == 0 {
            SymExpr {
                terms: Vec::new(),
                den: 1,
            }
        } else {
            SymExpr {
                terms: vec![(Monomial::unit(), v)],
                den: 1,
            }
        }
    }

    /// The scalar variable `v`.
    pub fn var(v: VarId) -> SymExpr {
        Atom::Var(v).to_expr()
    }

    /// The array element `arr(subs...)`.
    pub fn elem(arr: VarId, subs: Vec<SymExpr>) -> SymExpr {
        Atom::Elem(arr, subs).to_expr()
    }

    /// The expression consisting of a single atom.
    pub fn from_atom(a: Atom) -> SymExpr {
        SymExpr {
            terms: vec![(Monomial::atom(a), 1)],
            den: 1,
        }
    }

    fn normalize(mut terms: Vec<(Monomial, i64)>, den: i64) -> SymExpr {
        debug_assert!(den != 0, "denominator cannot be zero");
        terms.sort_by(|a, b| a.0.cmp(&b.0));
        let mut merged: Vec<(Monomial, i64)> = Vec::with_capacity(terms.len());
        for (m, c) in terms {
            match merged.last_mut() {
                Some((lm, lc)) if *lm == m => *lc += c,
                _ => merged.push((m, c)),
            }
        }
        merged.retain(|(_, c)| *c != 0);
        let mut den = den;
        if den < 0 {
            den = -den;
            for t in &mut merged {
                t.1 = -t.1;
            }
        }
        let mut g = den;
        for (_, c) in &merged {
            g = gcd(g, *c);
            if g == 1 {
                break;
            }
        }
        if g > 1 {
            den /= g;
            for t in &mut merged {
                t.1 /= g;
            }
        }
        if merged.is_empty() {
            den = 1;
        }
        SymExpr { terms: merged, den }
    }

    // ----- queries --------------------------------------------------------

    /// Whether the expression is the constant 0.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// If the expression is an integer constant, returns it. An exact
    /// rational like `1/2` returns `None`.
    pub fn as_int(&self) -> Option<i64> {
        if self.terms.is_empty() {
            return Some(0);
        }
        if self.den == 1 && self.terms.len() == 1 && self.terms[0].0.is_unit() {
            return Some(self.terms[0].1);
        }
        None
    }

    /// If the expression is a constant rational, returns `(num, den)`.
    pub fn as_rational(&self) -> Option<(i64, i64)> {
        if self.terms.is_empty() {
            return Some((0, 1));
        }
        if self.terms.len() == 1 && self.terms[0].0.is_unit() {
            return Some((self.terms[0].1, self.den));
        }
        None
    }

    /// If the expression is a single atom with coefficient 1, returns it.
    pub fn as_single_atom(&self) -> Option<&Atom> {
        if self.den == 1 && self.terms.len() == 1 && self.terms[0].1 == 1 {
            let m = &self.terms[0].0;
            if m.degree() == 1 {
                return Some(&m.atoms()[0]);
            }
        }
        None
    }

    /// If the expression is a bare scalar variable, returns it.
    pub fn as_var(&self) -> Option<VarId> {
        match self.as_single_atom() {
            Some(Atom::Var(v)) => Some(*v),
            _ => None,
        }
    }

    /// The terms `(monomial, coefficient)`; the denominator applies to
    /// all of them.
    pub fn terms(&self) -> &[(Monomial, i64)] {
        &self.terms
    }

    /// The common denominator (always positive).
    pub fn den(&self) -> i64 {
        self.den
    }

    /// The constant term as a rational `(num, den)`.
    pub fn constant_part(&self) -> (i64, i64) {
        for (m, c) in &self.terms {
            if m.is_unit() {
                return (*c, self.den);
            }
        }
        (0, 1)
    }

    /// Whether every monomial is of degree ≤ 1 (affine in its atoms).
    pub fn is_affine(&self) -> bool {
        self.terms.iter().all(|(m, _)| m.degree() <= 1)
    }

    /// Whether `var` occurs anywhere (including inside atoms).
    pub fn mentions_var(&self, var: VarId) -> bool {
        self.terms
            .iter()
            .any(|(m, _)| m.atoms().iter().any(|a| a.mentions_var(var)))
    }

    /// Whether array `arr` occurs as an element base anywhere.
    pub fn mentions_array(&self, arr: VarId) -> bool {
        self.terms
            .iter()
            .any(|(m, _)| m.atoms().iter().any(|a| a.mentions_array(arr)))
    }

    /// All distinct atoms appearing at the top level of monomials.
    pub fn atoms(&self) -> Vec<&Atom> {
        let mut out: Vec<&Atom> = Vec::new();
        for (m, _) in &self.terms {
            for a in m.atoms() {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// The coefficient of the degree-1 monomial for `atom` as a rational
    /// `(num, den)`; 0 if absent.
    pub fn coeff_of_atom(&self, atom: &Atom) -> (i64, i64) {
        for (m, c) in &self.terms {
            if m.degree() == 1 && &m.atoms()[0] == atom {
                return (*c, self.den);
            }
        }
        (0, 1)
    }

    // ----- arithmetic -----------------------------------------------------

    /// `self + other`.
    pub fn add(&self, other: &SymExpr) -> SymExpr {
        let den = self
            .den
            .checked_mul(other.den / gcd(self.den, other.den))
            .expect("denominator overflow");
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        let f1 = den / self.den;
        let f2 = den / other.den;
        for (m, c) in &self.terms {
            terms.push((m.clone(), c.checked_mul(f1).expect("coefficient overflow")));
        }
        for (m, c) in &other.terms {
            terms.push((m.clone(), c.checked_mul(f2).expect("coefficient overflow")));
        }
        SymExpr::normalize(terms, den)
    }

    /// `self - other`.
    pub fn sub(&self, other: &SymExpr) -> SymExpr {
        self.add(&other.neg())
    }

    /// `-self`.
    pub fn neg(&self) -> SymExpr {
        SymExpr {
            terms: self.terms.iter().map(|(m, c)| (m.clone(), -c)).collect(),
            den: self.den,
        }
    }

    /// `self * other` (full polynomial product).
    pub fn mul(&self, other: &SymExpr) -> SymExpr {
        let mut terms = Vec::with_capacity(self.terms.len() * other.terms.len());
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                terms.push((
                    m1.mul(m2),
                    c1.checked_mul(*c2).expect("coefficient overflow"),
                ));
            }
        }
        let den = self
            .den
            .checked_mul(other.den)
            .expect("denominator overflow");
        SymExpr::normalize(terms, den)
    }

    /// `self * k` for an integer constant.
    pub fn scale(&self, k: i64) -> SymExpr {
        self.mul(&SymExpr::int(k))
    }

    /// Exact rational division by a nonzero constant.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0`.
    pub fn div_exact(&self, c: i64) -> SymExpr {
        assert!(c != 0, "division by zero");
        SymExpr::normalize(
            self.terms.clone(),
            self.den.checked_mul(c).expect("denominator overflow"),
        )
    }

    /// Truncating integer division `self / other` as the program computes
    /// it. Folds constants, divides exactly when every coefficient is
    /// divisible, and otherwise produces an opaque `Div` atom (the prover
    /// knows the floor sandwich for it).
    pub fn div(&self, other: &SymExpr) -> SymExpr {
        if let (Some(a), Some(b)) = (self.as_int(), other.as_int()) {
            if b != 0 {
                // The language defines integer division as floor division.
                return SymExpr::int(a.div_euclid(b));
            }
        }
        if let Some(c) = other.as_int() {
            if c != 0 && self.den == 1 && self.terms.iter().all(|(_, k)| k % c == 0) {
                // Every coefficient is divisible, so the runtime division
                // is exact on every value and rational division is sound.
                return self.div_exact(c);
            }
        }
        if self == other && !self.is_zero() {
            return SymExpr::int(1);
        }
        Atom::Opaque(OpaqueOp::Div, vec![self.clone(), other.clone()]).to_expr()
    }

    /// Fortran `mod(self, other)`. Folds constants; otherwise opaque.
    pub fn mod_op(&self, other: &SymExpr) -> SymExpr {
        if let (Some(a), Some(b)) = (self.as_int(), other.as_int()) {
            if b != 0 {
                // Non-negative remainder, matching the interpreter.
                return SymExpr::int(a.rem_euclid(b));
            }
        }
        Atom::Opaque(OpaqueOp::Mod, vec![self.clone(), other.clone()]).to_expr()
    }

    /// `min(self, other)`; folds constants and equal arguments.
    pub fn min_op(&self, other: &SymExpr) -> SymExpr {
        if self == other {
            return self.clone();
        }
        if let (Some(a), Some(b)) = (self.as_int(), other.as_int()) {
            return SymExpr::int(a.min(b));
        }
        let mut args = vec![self.clone(), other.clone()];
        args.sort();
        Atom::Opaque(OpaqueOp::Min, args).to_expr()
    }

    /// `max(self, other)`; folds constants and equal arguments.
    pub fn max_op(&self, other: &SymExpr) -> SymExpr {
        if self == other {
            return self.clone();
        }
        if let (Some(a), Some(b)) = (self.as_int(), other.as_int()) {
            return SymExpr::int(a.max(b));
        }
        let mut args = vec![self.clone(), other.clone()];
        args.sort();
        Atom::Opaque(OpaqueOp::Max, args).to_expr()
    }

    /// Substitutes `var := replacement` everywhere (including inside
    /// element subscripts and opaque arguments).
    pub fn subst(&self, var: VarId, replacement: &SymExpr) -> SymExpr {
        if !self.mentions_var(var) {
            return self.clone();
        }
        let mut acc = SymExpr::int(0);
        for (m, c) in &self.terms {
            let mut term = SymExpr::int(*c);
            for a in m.atoms() {
                term = term.mul(&a.subst(var, replacement));
            }
            acc = acc.add(&term);
        }
        acc.div_exact(self.den)
    }

    /// Substitutes every occurrence of the exact atom `from` with
    /// `to` at the top level of monomials (used for difference
    /// canonicalization of `Div` atoms).
    pub fn subst_atom(&self, from: &Atom, to: &SymExpr) -> SymExpr {
        let mut acc = SymExpr::int(0);
        for (m, c) in &self.terms {
            let mut term = SymExpr::int(*c);
            for a in m.atoms() {
                if a == from {
                    term = term.mul(to);
                } else {
                    term = term.mul(&a.to_expr());
                }
            }
            acc = acc.add(&term);
        }
        acc.div_exact(self.den)
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, c) in &self.terms {
            if first {
                if *c < 0 {
                    write!(f, "-")?;
                }
                first = false;
            } else if *c < 0 {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let ac = c.abs();
            if m.is_unit() {
                write!(f, "{ac}")?;
            } else {
                if ac != 1 {
                    write!(f, "{ac}*")?;
                }
                let strs: Vec<String> = m.atoms().iter().map(|a| format!("{a}")).collect();
                write!(f, "{}", strs.join("*"))?;
            }
        }
        if self.den != 1 {
            write!(f, " / {}", self.den)?;
        }
        Ok(())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Var(v) => write!(f, "{v}"),
            Atom::Elem(a, subs) => {
                let strs: Vec<String> = subs.iter().map(|s| format!("{s}")).collect();
                write!(f, "{a}[{}]", strs.join(","))
            }
            Atom::Opaque(op, args) => {
                let name = match op {
                    OpaqueOp::Div => "div",
                    OpaqueOp::Mod => "mod",
                    OpaqueOp::Min => "min",
                    OpaqueOp::Max => "max",
                };
                let strs: Vec<String> = args.iter().map(|s| format!("{s}")).collect();
                write!(f, "{name}({})", strs.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> SymExpr {
        SymExpr::var(VarId(n))
    }

    #[test]
    fn constants_fold() {
        assert_eq!(SymExpr::int(2).add(&SymExpr::int(3)).as_int(), Some(5));
        assert_eq!(SymExpr::int(2).mul(&SymExpr::int(3)).as_int(), Some(6));
        assert_eq!(SymExpr::int(7).div(&SymExpr::int(2)).as_int(), Some(3));
        assert_eq!(SymExpr::int(7).mod_op(&SymExpr::int(3)).as_int(), Some(1));
        assert!(SymExpr::int(0).is_zero());
    }

    #[test]
    fn like_terms_combine() {
        let i = v(0);
        let e = i.add(&i).add(&i); // 3i
        assert_eq!(e, i.scale(3));
        assert!(e.sub(&i.scale(3)).is_zero());
    }

    #[test]
    fn polynomial_identity_triangular_numbers() {
        // i*(i+1)/2 == i*(i-1)/2 + i  — the TRFD identity.
        let i = v(0);
        let a = i.mul(&i.add(&SymExpr::int(1))).div_exact(2);
        let b = i.mul(&i.sub(&SymExpr::int(1))).div_exact(2).add(&i);
        assert_eq!(a, b);
    }

    #[test]
    fn rational_normalization() {
        let i = v(0);
        // (2i + 4) / 2 == i + 2 via exact division.
        let e = i.scale(2).add(&SymExpr::int(4)).div(&SymExpr::int(2));
        assert_eq!(e, i.add(&SymExpr::int(2)));
        // (2i + 1) / 2 stays opaque (truncating).
        let o = i.scale(2).add(&SymExpr::int(1)).div(&SymExpr::int(2));
        assert!(o.as_single_atom().is_some());
    }

    #[test]
    fn division_by_self_is_one() {
        let i = v(0);
        let e = i.add(&SymExpr::int(5));
        assert_eq!(e.div(&e).as_int(), Some(1));
    }

    #[test]
    fn subst_replaces_everywhere() {
        let i = VarId(0);
        let n = v(1);
        // (i^2 + i) [i := n+1] == n^2 + 3n + 2
        let e = v(0).mul(&v(0)).add(&v(0));
        let r = e.subst(i, &n.add(&SymExpr::int(1)));
        let expect = n.mul(&n).add(&n.scale(3)).add(&SymExpr::int(2));
        assert_eq!(r, expect);
    }

    #[test]
    fn subst_inside_element_subscripts() {
        let i = VarId(0);
        let arr = VarId(5);
        let e = SymExpr::elem(arr, vec![v(0).add(&SymExpr::int(1))]);
        let r = e.subst(i, &SymExpr::int(4));
        assert_eq!(r, SymExpr::elem(arr, vec![SymExpr::int(5)]));
    }

    #[test]
    fn subst_renormalizes_division() {
        // div(2i, 2) is opaque until i := 3 makes it constant 3.
        let i = VarId(0);
        let e = v(0).scale(2).add(&SymExpr::int(1)).div(&SymExpr::int(2));
        let r = e.subst(i, &SymExpr::int(3));
        assert_eq!(r.as_int(), Some(3));
    }

    #[test]
    fn min_max_canonicalize_argument_order() {
        let a = v(0);
        let b = v(1);
        assert_eq!(a.min_op(&b), b.min_op(&a));
        assert_eq!(a.max_op(&b), b.max_op(&a));
        assert_eq!(a.min_op(&a), a);
    }

    #[test]
    fn affine_detection() {
        assert!(v(0).add(&v(1).scale(3)).is_affine());
        assert!(!v(0).mul(&v(0)).is_affine());
    }

    #[test]
    fn coeff_of_atom_reads_linear_coefficients() {
        let e = v(0).scale(3).add(&v(1)).add(&SymExpr::int(7));
        assert_eq!(e.coeff_of_atom(&Atom::Var(VarId(0))), (3, 1));
        assert_eq!(e.coeff_of_atom(&Atom::Var(VarId(1))), (1, 1));
        assert_eq!(e.coeff_of_atom(&Atom::Var(VarId(9))), (0, 1));
        assert_eq!(e.constant_part(), (7, 1));
    }

    #[test]
    fn display_is_readable() {
        let e = v(0).scale(2).sub(&SymExpr::int(3));
        let s = format!("{e}");
        // Terms print in monomial order (constant first): "-3 + 2*v0".
        assert!(s.contains("2*"), "got {s}");
        assert!(s.starts_with('-'), "got {s}");
    }

    #[test]
    fn mentions_array_sees_nested() {
        let pptr = VarId(3);
        let e = SymExpr::elem(pptr, vec![v(0)]).add(&v(1));
        assert!(e.mentions_array(pptr));
        assert!(!e.mentions_array(VarId(9)));
    }

    #[test]
    fn subst_atom_rewrites_div_atoms() {
        let i = v(0);
        let d = i.mul(&i).add(&i).div(&SymExpr::int(2)); // opaque? (i^2+i)/2: coeffs 1,1 not divisible by 2 -> opaque
        let atom = d.as_single_atom().expect("opaque div atom").clone();
        let rewritten = d.add(&i).subst_atom(&atom, &SymExpr::int(10));
        assert_eq!(rewritten, i.add(&SymExpr::int(10)));
    }
}
