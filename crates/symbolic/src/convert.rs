//! Conversion from AST expressions to symbolic expressions.

use crate::expr::SymExpr;
use irr_frontend::{BinOp, Expr, Intrinsic, UnOp};

/// Converts an integer-valued AST expression into a [`SymExpr`].
///
/// Returns `None` for expressions the symbolic layer cannot represent:
/// real literals, comparisons/logical operators, and real-valued
/// intrinsics. Callers treat `None` as "unanalyzable" and approximate
/// conservatively.
pub fn expr_to_sym(e: &Expr) -> Option<SymExpr> {
    match e {
        Expr::IntLit(v) => Some(SymExpr::int(*v)),
        Expr::RealLit(_) => None,
        Expr::Var(v) => Some(SymExpr::var(*v)),
        Expr::Element(arr, subs) => {
            let subs: Option<Vec<SymExpr>> = subs.iter().map(expr_to_sym).collect();
            Some(SymExpr::elem(*arr, subs?))
        }
        Expr::Bin(op, a, b) => {
            let a = expr_to_sym(a)?;
            let b = expr_to_sym(b)?;
            Some(match op {
                BinOp::Add => a.add(&b),
                BinOp::Sub => a.sub(&b),
                BinOp::Mul => a.mul(&b),
                BinOp::Div => a.div(&b),
                BinOp::Mod => a.mod_op(&b),
                _ => return None,
            })
        }
        Expr::Un(UnOp::Neg, a) => Some(expr_to_sym(a)?.neg()),
        Expr::Un(UnOp::Not, _) => None,
        Expr::Call(intr, args) => match intr {
            Intrinsic::Min if args.len() == 2 => {
                Some(expr_to_sym(&args[0])?.min_op(&expr_to_sym(&args[1])?))
            }
            Intrinsic::Max if args.len() == 2 => {
                Some(expr_to_sym(&args[0])?.max_op(&expr_to_sym(&args[1])?))
            }
            Intrinsic::Mod if args.len() == 2 => {
                Some(expr_to_sym(&args[0])?.mod_op(&expr_to_sym(&args[1])?))
            }
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;
    use irr_frontend::StmtKind;

    fn rhs_of_first_assign(src: &str) -> (irr_frontend::Program, Expr) {
        let p = parse_program(src).unwrap();
        let body = p.procedure(p.main()).body.clone();
        let all = p.stmts_in(&body);
        for id in all {
            if let StmtKind::Assign { rhs, .. } = &p.stmt(id).kind {
                let rhs = rhs.clone();
                return (p, rhs);
            }
        }
        panic!("no assignment found");
    }

    #[test]
    fn affine_expression_converts() {
        let (p, rhs) = rhs_of_first_assign("program t\ninteger k, i, j\nk = 2*i + j - 3\nend\n");
        let s = expr_to_sym(&rhs).unwrap();
        let i = p.symbols.lookup("i").unwrap();
        let j = p.symbols.lookup("j").unwrap();
        let expect = SymExpr::var(i)
            .scale(2)
            .add(&SymExpr::var(j))
            .sub(&SymExpr::int(3));
        assert_eq!(s, expect);
    }

    #[test]
    fn triangular_index_converts_with_division() {
        let (_, rhs) = rhs_of_first_assign("program t\ninteger k, i\nk = i*(i-1)/2\nend\n");
        let s = expr_to_sym(&rhs).unwrap();
        // Not exactly divisible coefficient-wise, so an opaque div atom.
        assert!(s.as_single_atom().is_some());
    }

    #[test]
    fn indirect_subscript_converts_to_elem_atom() {
        let (p, rhs) =
            rhs_of_first_assign("program t\ninteger k, pos(10), i\nk = pos(i) + 1\nend\n");
        let s = expr_to_sym(&rhs).unwrap();
        let pos = p.symbols.lookup("pos").unwrap();
        assert!(s.mentions_array(pos));
    }

    #[test]
    fn real_literals_do_not_convert() {
        let (_, rhs) = rhs_of_first_assign("program t\nx = 1.5\nend\n");
        assert!(expr_to_sym(&rhs).is_none());
    }

    #[test]
    fn comparisons_do_not_convert() {
        let p =
            parse_program("program t\ninteger a, b\nif (a < b) then\na = 1\nendif\nend\n").unwrap();
        let body = &p.procedure(p.main()).body;
        if let StmtKind::If { cond, .. } = &p.stmt(body[0]).kind {
            assert!(expr_to_sym(cond).is_none());
        } else {
            panic!("expected if");
        }
    }

    #[test]
    fn min_max_mod_intrinsics_convert() {
        let (_, rhs) =
            rhs_of_first_assign("program t\ninteger k, a, b\nk = min(a, b) + mod(a, 4)\nend\n");
        assert!(expr_to_sym(&rhs).is_some());
    }
}
