//! Symbolic intervals and the fact environment used by the prover.

use crate::expr::{Atom, SymExpr};
use irr_frontend::VarId;
use std::collections::HashMap;
use std::fmt;

/// One end of a symbolic interval.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Bound {
    NegInf,
    /// A finite symbolic bound (inclusive).
    Finite(SymExpr),
    PosInf,
}

impl Bound {
    /// The finite expression if this bound is finite.
    pub fn as_finite(&self) -> Option<&SymExpr> {
        match self {
            Bound::Finite(e) => Some(e),
            _ => None,
        }
    }

    /// Adds two lower (or two upper) bounds.
    pub fn add(&self, other: &Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.add(b)),
            (Bound::NegInf, _) | (_, Bound::NegInf) => Bound::NegInf,
            (Bound::PosInf, _) | (_, Bound::PosInf) => Bound::PosInf,
        }
    }

    /// Scales the bound by a positive rational `num/den`; flips infinities
    /// when `num` is negative.
    pub fn scale(&self, num: i64, den: i64) -> Bound {
        debug_assert!(den > 0);
        match self {
            Bound::Finite(e) => Bound::Finite(e.scale(num).div_exact(den)),
            Bound::NegInf => {
                if num >= 0 {
                    Bound::NegInf
                } else {
                    Bound::PosInf
                }
            }
            Bound::PosInf => {
                if num >= 0 {
                    Bound::PosInf
                } else {
                    Bound::NegInf
                }
            }
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::NegInf => write!(f, "-inf"),
            Bound::Finite(e) => write!(f, "{e}"),
            Bound::PosInf => write!(f, "+inf"),
        }
    }
}

/// A symbolic interval `[lo, hi]` (both inclusive).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SymRange {
    pub lo: Bound,
    pub hi: Bound,
}

impl SymRange {
    /// The unbounded interval.
    pub fn universal() -> SymRange {
        SymRange {
            lo: Bound::NegInf,
            hi: Bound::PosInf,
        }
    }

    /// A degenerate interval `[e, e]`.
    pub fn point(e: SymExpr) -> SymRange {
        SymRange {
            lo: Bound::Finite(e.clone()),
            hi: Bound::Finite(e),
        }
    }

    /// `[lo, hi]` from finite expressions.
    pub fn new(lo: SymExpr, hi: SymExpr) -> SymRange {
        SymRange {
            lo: Bound::Finite(lo),
            hi: Bound::Finite(hi),
        }
    }

    /// Whether both ends are finite.
    pub fn is_finite(&self) -> bool {
        matches!(self.lo, Bound::Finite(_)) && matches!(self.hi, Bound::Finite(_))
    }

    /// Interval addition.
    pub fn add(&self, other: &SymRange) -> SymRange {
        SymRange {
            lo: self.lo.add(&other.lo),
            hi: self.hi.add(&other.hi),
        }
    }

    /// Scales by the rational `num/den` (`den > 0`), swapping ends for
    /// negative `num`.
    pub fn scale(&self, num: i64, den: i64) -> SymRange {
        if num >= 0 {
            SymRange {
                lo: self.lo.scale(num, den),
                hi: self.hi.scale(num, den),
            }
        } else {
            SymRange {
                lo: self.hi.scale(num, den),
                hi: self.lo.scale(num, den),
            }
        }
    }
}

impl fmt::Display for SymRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}:{}]", self.lo, self.hi)
    }
}

/// Known facts about atoms, consulted by [`crate::prove`] and the section
/// algebra.
///
/// Three layers of facts are supported:
/// - exact atom ranges (`i ∈ [1, n]` for a loop variable),
/// - per-array element value ranges (`iblen(*) ∈ [0, +inf]` — the
///   closed-form-bound facts produced by array property analysis),
/// - closed-form distances (`pptr(k+1) - pptr(k) = iblen(k)` — produced
///   by the closed-form-distance property).
#[derive(Clone, Debug, Default)]
pub struct RangeEnv {
    atom_ranges: HashMap<Atom, SymRange>,
    elem_ranges: HashMap<VarId, SymRange>,
    /// `array -> d` such that `array(k+1) - array(k) == d(k)` where the
    /// distance is an expression in the subscript variable given as the
    /// paired `VarId` placeholder (see [`RangeEnv::set_distance`]).
    distances: HashMap<VarId, (VarId, SymExpr)>,
}

impl RangeEnv {
    /// An empty environment.
    pub fn new() -> RangeEnv {
        RangeEnv::default()
    }

    /// Records `lo <= var <= hi`.
    pub fn set_var_range(&mut self, var: VarId, lo: SymExpr, hi: SymExpr) {
        self.atom_ranges
            .insert(Atom::Var(var), SymRange::new(lo, hi));
    }

    /// Records a one-sided or two-sided range for an atom.
    pub fn set_atom_range(&mut self, atom: Atom, range: SymRange) {
        self.atom_ranges.insert(atom, range);
    }

    /// Records that every element value of `array` lies in `range`
    /// (a closed-form bound fact, §3).
    pub fn set_elem_range(&mut self, array: VarId, range: SymRange) {
        self.elem_ranges.insert(array, range);
    }

    /// Records a closed-form distance fact: for all `k`,
    /// `array(k+1) - array(k) == distance`, where `distance` is expressed
    /// in terms of the placeholder variable `subscript_var`.
    pub fn set_distance(&mut self, array: VarId, subscript_var: VarId, distance: SymExpr) {
        self.distances.insert(array, (subscript_var, distance));
    }

    /// Exact range for an atom, if recorded.
    pub fn atom_range(&self, atom: &Atom) -> Option<&SymRange> {
        self.atom_ranges.get(atom)
    }

    /// Element-value range for an array, if recorded.
    pub fn elem_range(&self, array: VarId) -> Option<&SymRange> {
        self.elem_ranges.get(&array)
    }

    /// Closed-form distance fact for an array, if recorded.
    pub fn distance(&self, array: VarId) -> Option<&(VarId, SymExpr)> {
        self.distances.get(&array)
    }

    /// The range known for `atom`, combining the exact and per-array
    /// layers; `None` when nothing is known.
    pub fn lookup(&self, atom: &Atom) -> Option<SymRange> {
        if let Some(r) = self.atom_ranges.get(atom) {
            return Some(r.clone());
        }
        if let Atom::Elem(arr, _) = atom {
            if let Some(r) = self.elem_ranges.get(arr) {
                return Some(r.clone());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> SymExpr {
        SymExpr::var(VarId(n))
    }

    #[test]
    fn bound_arithmetic() {
        let a = Bound::Finite(v(0));
        let b = Bound::Finite(SymExpr::int(3));
        assert_eq!(a.add(&b), Bound::Finite(v(0).add(&SymExpr::int(3))));
        assert_eq!(Bound::NegInf.add(&b), Bound::NegInf);
        assert_eq!(Bound::PosInf.scale(-1, 1), Bound::NegInf);
    }

    #[test]
    fn range_scale_flips_on_negation() {
        let r = SymRange::new(SymExpr::int(1), SymExpr::int(5));
        let s = r.scale(-2, 1);
        assert_eq!(s.lo, Bound::Finite(SymExpr::int(-10)));
        assert_eq!(s.hi, Bound::Finite(SymExpr::int(-2)));
    }

    #[test]
    fn env_layers() {
        let mut env = RangeEnv::new();
        let i = VarId(0);
        let arr = VarId(1);
        env.set_var_range(i, SymExpr::int(1), v(2));
        env.set_elem_range(arr, SymRange::new(SymExpr::int(0), SymExpr::int(9)));
        assert!(env.lookup(&Atom::Var(i)).is_some());
        let elem = Atom::Elem(arr, vec![v(0)]);
        let r = env.lookup(&elem).unwrap();
        assert_eq!(r.lo, Bound::Finite(SymExpr::int(0)));
        // Exact atom facts shadow per-array facts.
        let mut env2 = env.clone();
        env2.set_atom_range(elem.clone(), SymRange::point(SymExpr::int(5)));
        assert_eq!(
            env2.lookup(&elem).unwrap(),
            SymRange::point(SymExpr::int(5))
        );
    }
}
