//! Symbolic expressions, ranges, and array-section algebra.
//!
//! The analyses of Lin & Padua (PLDI 2000) manipulate *array sections*
//! with symbolic bounds (`x[1:p]`, `data[offset(i) : offset(i)+length(i)-1]`)
//! and need to decide questions like "is `pptr(i) + iblen(i) - 1 <
//! pptr(i+1)` provable?". This crate provides:
//!
//! - [`SymExpr`] — a normalized rational polynomial over [`Atom`]s
//!   (variables, array elements like `pptr(i)`, and opaque operations like
//!   truncating division). Rational normalization is what lets
//!   `i*(i-1)/2 + i` and `i*(i+1)/2` be recognized as equal.
//! - [`SymRange`] / [`Bound`] — symbolic intervals with ±∞.
//! - [`RangeEnv`] — facts about atoms (loop variable ranges, array value
//!   bounds from property analysis) used by the prover.
//! - [`prove_ge0`] and friends — a conservative inequality prover with
//!   sound rules for truncating division (the sandwich
//!   `(a-c+1)/c <= a div c <= a/c` plus difference canonicalization).
//! - [`Section`] — per-dimension symbolic array sections with the
//!   MAY/MUST-directed operations and the loop aggregation of §3.2.5.
//!
//! # Example
//!
//! ```
//! use irr_symbolic::{SymExpr, RangeEnv, prove_ge0};
//! use irr_frontend::VarId;
//!
//! let i = SymExpr::var(VarId(0));
//! let n = SymExpr::var(VarId(1));
//! let mut env = RangeEnv::new();
//! env.set_var_range(VarId(0), SymExpr::int(1), n.clone()); // 1 <= i <= n
//! // i*(i+1)/2 - i*(i-1)/2 - i == 0 by rational normalization.
//! let a = i.clone().mul(&i.clone().add(&SymExpr::int(1))).div_exact(2);
//! let b = i.clone().mul(&i.clone().sub(&SymExpr::int(1))).div_exact(2);
//! assert!(prove_ge0(&a.sub(&b).sub(&i), &env));
//! ```

pub mod convert;
pub mod expr;
pub mod prove;
pub mod range;
pub mod section;

pub use convert::expr_to_sym;
pub use expr::{Atom, Monomial, OpaqueOp, SymExpr};
pub use prove::{prove_eq, prove_ge0, prove_gt0, prove_le, prove_lt};
pub use range::{Bound, RangeEnv, SymRange};
pub use section::{extremes_over, AggMode, Section};
