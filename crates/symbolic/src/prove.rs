//! A conservative symbolic inequality prover.
//!
//! `prove_*` functions return `true` only when the fact is provable from
//! the environment; `false` means "unknown", never "disproved". This is
//! the directionality every client needs: dependence tests and
//! privatization only act on proven facts.
//!
//! Integer division in the mini-Fortran language is defined as **floor
//! division** (`div_euclid` for positive divisors) and `mod` as the
//! non-negative remainder (`rem_euclid`). This gives the prover two sound
//! rules for opaque `Div` atoms with constant divisor `c > 0`:
//!
//! - the *sandwich*: `(a - c + 1)/c <= a div c <= a/c` (rationally), and
//! - *difference canonicalization*: if `c` divides `a - b` exactly then
//!   `a div c == b div c + (a - b)/c`.
//!
//! Difference canonicalization is what proves the TRFD-style facts like
//! `(i²+i) div 2 - (i²-i) div 2 == i` that the range test needs for
//! closed-form-value index arrays (§3.2.7).

use crate::expr::{Atom, OpaqueOp, SymExpr};
use crate::range::{Bound, RangeEnv, SymRange};

/// Maximum recursion depth for the mutually recursive bound computation
/// and sign proving.
const DEFAULT_DEPTH: u32 = 5;

/// Proves `e == 0` (after canonicalization).
pub fn prove_eq(a: &SymExpr, b: &SymExpr, env: &RangeEnv) -> bool {
    let d = canonicalize(&a.sub(b), env);
    d.is_zero()
}

/// Proves `e >= 0`.
pub fn prove_ge0(e: &SymExpr, env: &RangeEnv) -> bool {
    prove_ge0_depth(e, env, DEFAULT_DEPTH)
}

/// Proves `e > 0`.
pub fn prove_gt0(e: &SymExpr, env: &RangeEnv) -> bool {
    prove_gt0_depth(e, env, DEFAULT_DEPTH)
}

/// Proves `a <= b`.
pub fn prove_le(a: &SymExpr, b: &SymExpr, env: &RangeEnv) -> bool {
    prove_ge0(&b.sub(a), env)
}

/// Proves `a < b`.
pub fn prove_lt(a: &SymExpr, b: &SymExpr, env: &RangeEnv) -> bool {
    prove_gt0(&b.sub(a), env)
}

fn prove_ge0_depth(e: &SymExpr, env: &RangeEnv, depth: u32) -> bool {
    let e = canonicalize(e, env);
    if let Some((num, _den)) = e.as_rational() {
        return num >= 0;
    }
    if depth == 0 {
        return false;
    }
    match lower_bound(&e, env, depth - 1) {
        Bound::Finite(lb) => {
            if let Some((num, _)) = lb.as_rational() {
                num >= 0
            } else if lb != e {
                prove_ge0_depth(&lb, env, depth - 1)
            } else {
                false
            }
        }
        _ => false,
    }
}

fn prove_gt0_depth(e: &SymExpr, env: &RangeEnv, depth: u32) -> bool {
    let e = canonicalize(e, env);
    if let Some((num, _den)) = e.as_rational() {
        return num > 0;
    }
    if depth == 0 {
        return false;
    }
    match lower_bound(&e, env, depth - 1) {
        Bound::Finite(lb) => {
            if let Some((num, _)) = lb.as_rational() {
                num > 0
            } else if lb != e {
                prove_gt0_depth(&lb, env, depth - 1)
            } else {
                false
            }
        }
        _ => false,
    }
}

/// Interval bounds for `e` under `env`.
pub fn bounds_of(e: &SymExpr, env: &RangeEnv) -> SymRange {
    let e = canonicalize(e, env);
    bounds_of_depth(&e, env, DEFAULT_DEPTH)
}

fn lower_bound(e: &SymExpr, env: &RangeEnv, depth: u32) -> Bound {
    bounds_of_depth(e, env, depth).lo
}

fn bounds_of_depth(e: &SymExpr, env: &RangeEnv, depth: u32) -> SymRange {
    let mut acc = SymRange::point(SymExpr::int(0));
    for (m, c) in e.terms() {
        let mr = if m.is_unit() {
            SymRange::point(SymExpr::int(1))
        } else {
            let mut r = SymRange::point(SymExpr::int(1));
            for a in m.atoms() {
                let ar = atom_bounds(a, env, depth);
                r = range_mul(&r, &ar, env, depth);
            }
            r
        };
        acc = acc.add(&mr.scale(*c, e.den()));
    }
    acc
}

/// The interval of a single atom.
fn atom_bounds(a: &Atom, env: &RangeEnv, depth: u32) -> SymRange {
    if let Some(r) = env.lookup(a) {
        return r;
    }
    if depth == 0 {
        return SymRange::universal();
    }
    match a {
        Atom::Opaque(OpaqueOp::Div, args) if args.len() == 2 => {
            if let Some(c) = args[1].as_int() {
                if c > 0 {
                    // Floor-division sandwich.
                    let inner = bounds_of_depth(&args[0], env, depth - 1);
                    let lo = inner
                        .lo
                        .add(&Bound::Finite(SymExpr::int(-(c - 1))))
                        .scale(1, c);
                    let hi = inner.hi.scale(1, c);
                    return SymRange { lo, hi };
                }
            }
            SymRange::universal()
        }
        Atom::Opaque(OpaqueOp::Mod, args) if args.len() == 2 => {
            if let Some(c) = args[1].as_int() {
                if c > 0 {
                    // rem_euclid is always in [0, c-1].
                    return SymRange::new(SymExpr::int(0), SymExpr::int(c - 1));
                }
            }
            SymRange::universal()
        }
        Atom::Opaque(OpaqueOp::Min, args) if args.len() == 2 => {
            let r0 = bounds_of_depth(&args[0], env, depth - 1);
            let r1 = bounds_of_depth(&args[1], env, depth - 1);
            // hi(min) <= min(hi0, hi1): either upper bound is sound; pick
            // the provably smaller one when possible, else hi0 if finite.
            let hi = pick_smaller_upper(&r0.hi, &r1.hi, env, depth);
            let lo = pick_smaller_lower(&r0.lo, &r1.lo, env, depth);
            SymRange { lo, hi }
        }
        Atom::Opaque(OpaqueOp::Max, args) if args.len() == 2 => {
            let r0 = bounds_of_depth(&args[0], env, depth - 1);
            let r1 = bounds_of_depth(&args[1], env, depth - 1);
            let lo = pick_larger_lower(&r0.lo, &r1.lo, env, depth);
            let hi = pick_larger_upper(&r0.hi, &r1.hi, env, depth);
            SymRange { lo, hi }
        }
        _ => SymRange::universal(),
    }
}

/// A sound upper bound for `min(x, y)` given upper bounds of each: any of
/// the two is sound; prefer the provably smaller.
fn pick_smaller_upper(a: &Bound, b: &Bound, env: &RangeEnv, depth: u32) -> Bound {
    match (a, b) {
        (Bound::Finite(x), Bound::Finite(y)) => {
            if prove_ge0_depth(&x.sub(y), env, depth.saturating_sub(1)) {
                b.clone()
            } else {
                a.clone()
            }
        }
        (Bound::Finite(_), _) => a.clone(),
        (_, Bound::Finite(_)) => b.clone(),
        (Bound::NegInf, _) | (_, Bound::NegInf) => Bound::NegInf,
        _ => Bound::PosInf,
    }
}

/// A sound lower bound for `min(x, y)`: must be ≤ both, so only a bound
/// provably below the other is usable.
fn pick_smaller_lower(a: &Bound, b: &Bound, env: &RangeEnv, depth: u32) -> Bound {
    match (a, b) {
        (Bound::Finite(x), Bound::Finite(y)) => {
            if prove_ge0_depth(&y.sub(x), env, depth.saturating_sub(1)) {
                a.clone()
            } else if prove_ge0_depth(&x.sub(y), env, depth.saturating_sub(1)) {
                b.clone()
            } else {
                Bound::NegInf
            }
        }
        _ => Bound::NegInf,
    }
}

/// A sound lower bound for `max(x, y)`: any of the two lower bounds is
/// sound; prefer the provably larger.
fn pick_larger_lower(a: &Bound, b: &Bound, env: &RangeEnv, depth: u32) -> Bound {
    match (a, b) {
        (Bound::Finite(x), Bound::Finite(y)) => {
            if prove_ge0_depth(&x.sub(y), env, depth.saturating_sub(1)) {
                a.clone()
            } else {
                b.clone()
            }
        }
        (Bound::Finite(_), _) => a.clone(),
        (_, Bound::Finite(_)) => b.clone(),
        _ => Bound::NegInf,
    }
}

/// A sound upper bound for `max(x, y)`: must be ≥ both.
fn pick_larger_upper(a: &Bound, b: &Bound, env: &RangeEnv, depth: u32) -> Bound {
    match (a, b) {
        (Bound::Finite(x), Bound::Finite(y)) => {
            if prove_ge0_depth(&x.sub(y), env, depth.saturating_sub(1)) {
                a.clone()
            } else if prove_ge0_depth(&y.sub(x), env, depth.saturating_sub(1)) {
                b.clone()
            } else {
                Bound::PosInf
            }
        }
        _ => Bound::PosInf,
    }
}

/// Interval multiplication, sound only for the cases it handles:
/// constant factors, and factors provably non-negative.
fn range_mul(a: &SymRange, b: &SymRange, env: &RangeEnv, depth: u32) -> SymRange {
    // Constant point factor.
    if let (Bound::Finite(lo), Bound::Finite(hi)) = (&a.lo, &a.hi) {
        if lo == hi {
            if let Some(c) = lo.as_int() {
                return b.scale(c, 1);
            }
        }
    }
    if let (Bound::Finite(lo), Bound::Finite(hi)) = (&b.lo, &b.hi) {
        if lo == hi {
            if let Some(c) = lo.as_int() {
                return a.scale(c, 1);
            }
        }
    }
    // Both non-negative: [lo_a*lo_b, hi_a*hi_b].
    let a_nonneg = matches!(&a.lo, Bound::Finite(x)
        if prove_ge0_depth(x, env, depth.saturating_sub(1)));
    let b_nonneg = matches!(&b.lo, Bound::Finite(x)
        if prove_ge0_depth(x, env, depth.saturating_sub(1)));
    if a_nonneg && b_nonneg {
        let lo = match (&a.lo, &b.lo) {
            (Bound::Finite(x), Bound::Finite(y)) => Bound::Finite(x.mul(y)),
            _ => unreachable!("checked finite above"),
        };
        let hi = match (&a.hi, &b.hi) {
            (Bound::Finite(x), Bound::Finite(y)) => Bound::Finite(x.mul(y)),
            _ => Bound::PosInf,
        };
        return SymRange { lo, hi };
    }
    SymRange::universal()
}

/// Rewrites `e` using the environment's closed-form-distance facts and
/// the divisibility rule for `Div` atoms, so that related atoms cancel.
pub fn canonicalize(e: &SymExpr, env: &RangeEnv) -> SymExpr {
    let mut cur = e.clone();
    for _ in 0..8 {
        let next = canonicalize_once(&cur, env);
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

fn canonicalize_once(e: &SymExpr, env: &RangeEnv) -> SymExpr {
    let mut cur = e.clone();
    // Closed-form distance: rewrite arr(s+1) -> arr(s) + d(s) whenever
    // both arr(s+1) and arr(s) occur, so their difference becomes d(s).
    let atoms: Vec<Atom> = cur.atoms().into_iter().cloned().collect();
    for a in &atoms {
        let Atom::Elem(arr, subs) = a else { continue };
        if subs.len() != 1 {
            continue;
        }
        let Some((pv, dist)) = env.distance(*arr) else {
            continue;
        };
        let (pv, dist) = (*pv, dist.clone());
        // Find a sibling arr(s') with subs[0] - s' == 1.
        for b in &atoms {
            let Atom::Elem(arr2, subs2) = b else {
                continue;
            };
            if arr2 != arr || subs2.len() != 1 || a == b {
                continue;
            }
            let diff = subs[0].sub(&subs2[0]);
            if diff.as_int() == Some(1) {
                let replacement = b.to_expr().add(&dist.subst(pv, &subs2[0]));
                cur = cur.subst_atom(a, &replacement);
                return cur;
            }
        }
    }
    // Div difference canonicalization: a div c == b div c + (a-b)/c when
    // c | (a-b) exactly (floor semantics).
    let atoms: Vec<Atom> = cur.atoms().into_iter().cloned().collect();
    for (idx, a) in atoms.iter().enumerate() {
        let Atom::Opaque(OpaqueOp::Div, args_a) = a else {
            continue;
        };
        let Some(c) = args_a[1].as_int() else {
            continue;
        };
        if c <= 0 {
            continue;
        }
        for b in atoms.iter().skip(idx + 1) {
            let Atom::Opaque(OpaqueOp::Div, args_b) = b else {
                continue;
            };
            if args_b[1].as_int() != Some(c) {
                continue;
            }
            let diff = args_a[0].sub(&args_b[0]);
            if diff.den() == 1 && diff.terms().iter().all(|(_, k)| k % c == 0) {
                let replacement = b.to_expr().add(&diff.div_exact(c));
                cur = cur.subst_atom(a, &replacement);
                return cur;
            }
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::VarId;

    fn v(n: u32) -> SymExpr {
        SymExpr::var(VarId(n))
    }

    fn env_i_1_to_n() -> RangeEnv {
        let mut env = RangeEnv::new();
        env.set_var_range(VarId(0), SymExpr::int(1), v(1));
        env
    }

    #[test]
    fn constant_facts() {
        let env = RangeEnv::new();
        assert!(prove_ge0(&SymExpr::int(0), &env));
        assert!(prove_ge0(&SymExpr::int(3), &env));
        assert!(!prove_ge0(&SymExpr::int(-1), &env));
        assert!(prove_gt0(&SymExpr::int(1), &env));
        assert!(!prove_gt0(&SymExpr::int(0), &env));
    }

    #[test]
    fn variable_with_range() {
        let env = env_i_1_to_n();
        // i >= 1 > 0.
        assert!(prove_gt0(&v(0), &env));
        // i - 1 >= 0.
        assert!(prove_ge0(&v(0).sub(&SymExpr::int(1)), &env));
        // i - 2 unknown.
        assert!(!prove_ge0(&v(0).sub(&SymExpr::int(2)), &env));
        // n unknown (no range for n).
        assert!(!prove_ge0(&v(1), &env));
    }

    #[test]
    fn unknown_never_proves_both_directions() {
        let env = RangeEnv::new();
        let e = v(5);
        assert!(!prove_ge0(&e, &env));
        assert!(!prove_ge0(&e.neg(), &env));
    }

    #[test]
    fn quadratic_with_nonneg_factors() {
        // i in [1, n] and n unknown: i*i >= 1 > 0.
        let env = env_i_1_to_n();
        let sq = v(0).mul(&v(0));
        assert!(prove_gt0(&sq, &env));
    }

    #[test]
    fn elem_range_facts() {
        // iblen(k) >= 0 for all k  ==>  iblen(i) + 1 > 0.
        let mut env = RangeEnv::new();
        let iblen = VarId(3);
        env.set_elem_range(
            iblen,
            SymRange {
                lo: Bound::Finite(SymExpr::int(0)),
                hi: Bound::PosInf,
            },
        );
        let e = SymExpr::elem(iblen, vec![v(0)]).add(&SymExpr::int(1));
        assert!(prove_gt0(&e, &env));
        assert!(prove_ge0(&SymExpr::elem(iblen, vec![v(9)]), &env));
    }

    #[test]
    fn distance_fact_cancels_consecutive_elements() {
        // pptr(i+1) - pptr(i) == iblen(i), iblen(*) >= 0:
        // prove pptr(i+1) - pptr(i) - iblen(i) == 0 and >= 0.
        let mut env = RangeEnv::new();
        let pptr = VarId(2);
        let iblen = VarId(3);
        let k = VarId(7); // placeholder
        env.set_distance(pptr, k, SymExpr::elem(iblen, vec![SymExpr::var(k)]));
        env.set_elem_range(
            iblen,
            SymRange {
                lo: Bound::Finite(SymExpr::int(0)),
                hi: Bound::PosInf,
            },
        );
        let i = v(0);
        let p_next = SymExpr::elem(pptr, vec![i.add(&SymExpr::int(1))]);
        let p_cur = SymExpr::elem(pptr, vec![i.clone()]);
        let d = SymExpr::elem(iblen, vec![i.clone()]);
        assert!(prove_eq(&p_next.sub(&p_cur), &d, &env));
        assert!(prove_ge0(&p_next.sub(&p_cur), &env));
    }

    #[test]
    fn dyfesm_fig13_disjointness() {
        // f range rel pptr(i): [0, iblen(i)-2]; g range: [1, iblen(i)-1].
        // Next segment starts at pptr(i)+iblen(i). Prove
        // pptr(i)+iblen(i)-1 < pptr(i+1)+1, i.e. segments do not overlap:
        // max over both accesses (pptr(i)+iblen(i)-1) < min at i+1
        // (pptr(i+1) + 0).
        let mut env = RangeEnv::new();
        let pptr = VarId(2);
        let iblen = VarId(3);
        let k = VarId(7);
        env.set_distance(pptr, k, SymExpr::elem(iblen, vec![SymExpr::var(k)]));
        env.set_elem_range(
            iblen,
            SymRange {
                lo: Bound::Finite(SymExpr::int(0)),
                hi: Bound::PosInf,
            },
        );
        let i = v(0);
        let hi_i = SymExpr::elem(pptr, vec![i.clone()])
            .add(&SymExpr::elem(iblen, vec![i.clone()]))
            .sub(&SymExpr::int(1));
        let lo_next = SymExpr::elem(pptr, vec![i.add(&SymExpr::int(1))]).add(&SymExpr::int(1));
        assert!(prove_lt(&hi_i, &lo_next, &env));
    }

    #[test]
    fn trfd_triangular_disjointness() {
        // f(i,j) = (i^2 - i) div 2 + j, j in [1, i].
        // max_j f(i) = (i^2-i) div 2 + i; min_j f(i+1) = (i^2+i) div 2 + 1.
        // Difference canonicalization: (i^2+i) div 2 - (i^2-i) div 2 = i.
        // So min f(i+1) - max f(i) = 1 > 0.
        let env = env_i_1_to_n();
        let i = v(0);
        let isq = i.mul(&i);
        let f_max = isq.sub(&i).div(&SymExpr::int(2)).add(&i);
        let f_next_min = isq.add(&i).div(&SymExpr::int(2)).add(&SymExpr::int(1));
        assert!(super::prove_lt(&f_max, &f_next_min, &env));
    }

    #[test]
    fn div_sandwich_bounds() {
        // i in [1, n]: i div 2 >= (1 - 1)/2 = 0.
        let env = env_i_1_to_n();
        let e = v(0).div(&SymExpr::int(2));
        assert!(prove_ge0(&e, &env));
    }

    #[test]
    fn mod_bounds() {
        let env = RangeEnv::new();
        let e = v(0).mod_op(&SymExpr::int(8));
        assert!(prove_ge0(&e, &env));
        // mod(x, 8) <= 7.
        assert!(prove_le(&e, &SymExpr::int(7), &env));
    }

    #[test]
    fn min_max_bounds() {
        // i in [1,n]: min(i, 5) <= 5, max(i, 5) >= 5, min(i,5) >= ...
        let env = env_i_1_to_n();
        let m = v(0).min_op(&SymExpr::int(5));
        assert!(prove_le(&m, &SymExpr::int(5), &env));
        let x = v(0).max_op(&SymExpr::int(5));
        assert!(prove_ge0(&x.sub(&SymExpr::int(5)), &env));
        // min(i, 5) >= 1 because both args >= 1.
        assert!(prove_ge0(&m.sub(&SymExpr::int(1)), &env));
    }

    #[test]
    fn prove_le_lt_wrappers() {
        let env = env_i_1_to_n();
        assert!(prove_le(&SymExpr::int(1), &v(0), &env));
        assert!(prove_lt(&SymExpr::int(0), &v(0), &env));
        assert!(!prove_lt(&v(0), &v(0), &env));
        assert!(prove_le(&v(0), &v(0), &env));
        assert!(prove_eq(&v(0), &v(0), &env));
    }
}
