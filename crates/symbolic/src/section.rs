//! Array sections with symbolic bounds and the MAY/MUST-directed algebra.
//!
//! A [`Section`] describes a rectangular region of an array, one
//! [`SymRange`] per dimension (the "regular section" representation the
//! paper cites as reference 17; §3.1 notes the method is orthogonal to the
//! representation as long as aggregation is defined).
//!
//! Every operation is annotated with its approximation direction:
//! operations used for *Kill* sets over-approximate (MAY), operations
//! used for *Gen* sets under-approximate (MUST). Using an operation in
//! the wrong direction is the classic soundness bug in array data-flow
//! analysis, so the directions are part of the method names.

use crate::expr::SymExpr;
use crate::prove::{prove_ge0, prove_le, prove_lt};
use crate::range::{Bound, RangeEnv, SymRange};
use irr_frontend::VarId;
use std::fmt;

/// Aggregation direction for [`Section::aggregate`] (§3.2.5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggMode {
    /// Over-approximate the union over all iterations (for Kill sets).
    May,
    /// Under-approximate the union over all iterations (for Gen sets).
    Must,
}

/// A rectangular array section with symbolic bounds.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Section {
    /// The empty section.
    Empty,
    /// The whole array (or "unknown", as the paper's worst-case Kill
    /// `[-inf, +inf]`).
    Universal,
    /// One symbolic range per dimension.
    Dims(Vec<SymRange>),
}

impl Section {
    /// A single element `a(subs...)`.
    pub fn point(subs: Vec<SymExpr>) -> Section {
        Section::Dims(subs.into_iter().map(SymRange::point).collect())
    }

    /// A 1-D section `[lo:hi]`.
    pub fn range1(lo: SymExpr, hi: SymExpr) -> Section {
        Section::Dims(vec![SymRange::new(lo, hi)])
    }

    /// Section from explicit per-dimension ranges.
    pub fn from_ranges(ranges: Vec<SymRange>) -> Section {
        Section::Dims(ranges)
    }

    /// Whether this is the empty section (syntactically).
    pub fn is_empty(&self) -> bool {
        matches!(self, Section::Empty)
    }

    /// Whether this is the universal section.
    pub fn is_universal(&self) -> bool {
        matches!(self, Section::Universal)
    }

    /// The per-dimension ranges, if rectangular.
    pub fn ranges(&self) -> Option<&[SymRange]> {
        match self {
            Section::Dims(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the section is *provably* empty under `env` (some
    /// dimension has `hi < lo`).
    pub fn provably_empty(&self, env: &RangeEnv) -> bool {
        match self {
            Section::Empty => true,
            Section::Universal => false,
            Section::Dims(ranges) => ranges.iter().any(|r| match (&r.lo, &r.hi) {
                (Bound::Finite(lo), Bound::Finite(hi)) => prove_lt(hi, lo, env),
                _ => false,
            }),
        }
    }

    /// Whether `self` and `other` are provably disjoint (no shared
    /// element) under `env`.
    pub fn provably_disjoint(&self, other: &Section, env: &RangeEnv) -> bool {
        match (self, other) {
            (Section::Empty, _) | (_, Section::Empty) => true,
            (Section::Universal, o) | (o, Section::Universal) => o.provably_empty(env),
            (Section::Dims(a), Section::Dims(b)) => {
                if self.provably_empty(env) || other.provably_empty(env) {
                    return true;
                }
                if a.len() != b.len() {
                    return false;
                }
                a.iter().zip(b.iter()).any(|(ra, rb)| {
                    let a_before_b = match (&ra.hi, &rb.lo) {
                        (Bound::Finite(h), Bound::Finite(l)) => prove_lt(h, l, env),
                        _ => false,
                    };
                    let b_before_a = match (&rb.hi, &ra.lo) {
                        (Bound::Finite(h), Bound::Finite(l)) => prove_lt(h, l, env),
                        _ => false,
                    };
                    a_before_b || b_before_a
                })
            }
        }
    }

    /// Whether `self` provably contains every element of `other`.
    pub fn provably_contains(&self, other: &Section, env: &RangeEnv) -> bool {
        match (self, other) {
            (_, Section::Empty) => true,
            (Section::Universal, _) => true,
            (_, Section::Universal) => false,
            (Section::Empty, other) => other.provably_empty(env),
            (Section::Dims(a), Section::Dims(b)) => {
                if other.provably_empty(env) {
                    return true;
                }
                if a.len() != b.len() {
                    return false;
                }
                a.iter().zip(b.iter()).all(|(ra, rb)| {
                    let lo_ok = match (&ra.lo, &rb.lo) {
                        (Bound::NegInf, _) => true,
                        (Bound::Finite(la), Bound::Finite(lb)) => prove_le(la, lb, env),
                        _ => false,
                    };
                    let hi_ok = match (&ra.hi, &rb.hi) {
                        (Bound::PosInf, _) => true,
                        (Bound::Finite(ha), Bound::Finite(hb)) => prove_le(hb, ha, env),
                        _ => false,
                    };
                    lo_ok && hi_ok
                })
            }
        }
    }

    /// Over-approximate union (sound for MAY/Kill information): the
    /// result contains every element of both operands.
    pub fn union_may(&self, other: &Section, env: &RangeEnv) -> Section {
        match (self, other) {
            (Section::Empty, o) | (o, Section::Empty) => o.clone(),
            (Section::Universal, _) | (_, Section::Universal) => Section::Universal,
            (Section::Dims(a), Section::Dims(b)) => {
                if a.len() != b.len() {
                    return Section::Universal;
                }
                let ranges = a
                    .iter()
                    .zip(b.iter())
                    .map(|(ra, rb)| SymRange {
                        lo: lower_of(&ra.lo, &rb.lo, env),
                        hi: upper_of(&ra.hi, &rb.hi, env),
                    })
                    .collect();
                Section::Dims(ranges)
            }
        }
    }

    /// Under-approximate union (sound for MUST/Gen information): every
    /// element of the result is in the true union. When the operands
    /// cannot be proven to overlap or be adjacent, one operand is
    /// returned (still an under-approximation of the union).
    pub fn union_must(&self, other: &Section, env: &RangeEnv) -> Section {
        match (self, other) {
            (Section::Empty, o) | (o, Section::Empty) => o.clone(),
            (Section::Universal, _) | (_, Section::Universal) => Section::Universal,
            (Section::Dims(a), Section::Dims(b)) => {
                if self.provably_contains(other, env) {
                    return self.clone();
                }
                if other.provably_contains(self, env) {
                    return other.clone();
                }
                if a.len() == b.len() {
                    // Boxes that agree in every dimension but one can
                    // merge along that dimension when the two ranges
                    // provably overlap or meet.
                    let same_range =
                        |ra: &SymRange, rb: &SymRange| match ((&ra.lo, &ra.hi), (&rb.lo, &rb.hi)) {
                            (
                                (Bound::Finite(la), Bound::Finite(ha)),
                                (Bound::Finite(lb), Bound::Finite(hb)),
                            ) => {
                                use crate::prove::prove_eq;
                                prove_eq(la, lb, env) && prove_eq(ha, hb, env)
                            }
                            _ => ra == rb,
                        };
                    let differing: Vec<usize> = (0..a.len())
                        .filter(|&d| !same_range(&a[d], &b[d]))
                        .collect();
                    if differing.len() == 1 {
                        let d = differing[0];
                        let (ra, rb) = (&a[d], &b[d]);
                        if let (
                            Bound::Finite(la),
                            Bound::Finite(ha),
                            Bound::Finite(lb),
                            Bound::Finite(hb),
                        ) = (&ra.lo, &ra.hi, &rb.lo, &rb.hi)
                        {
                            // a before-or-meeting b, contiguous:
                            // lb <= ha + 1.
                            let one = SymExpr::int(1);
                            let merged = if prove_le(la, lb, env)
                                && prove_le(lb, &ha.add(&one), env)
                                && prove_le(ha, hb, env)
                            {
                                Some(SymRange::new(la.clone(), hb.clone()))
                            } else if prove_le(lb, la, env)
                                && prove_le(la, &hb.add(&one), env)
                                && prove_le(hb, ha, env)
                            {
                                Some(SymRange::new(lb.clone(), ha.clone()))
                            } else {
                                None
                            };
                            if let Some(m) = merged {
                                let mut out = a.clone();
                                out[d] = m;
                                return Section::Dims(out);
                            }
                        }
                    }
                }
                // Fall back to the larger-looking operand; either is a
                // sound under-approximation of the union. Prefer one that
                // is not provably empty.
                if self.provably_empty(env) {
                    other.clone()
                } else {
                    self.clone()
                }
            }
        }
    }

    /// Over-approximate intersection (sound for checking `Kill ∩ query`):
    /// the result contains every element of the true intersection.
    pub fn intersect_may(&self, other: &Section, env: &RangeEnv) -> Section {
        match (self, other) {
            (Section::Empty, _) | (_, Section::Empty) => Section::Empty,
            (Section::Universal, o) | (o, Section::Universal) => o.clone(),
            (Section::Dims(a), Section::Dims(b)) => {
                if self.provably_disjoint(other, env) {
                    return Section::Empty;
                }
                if a.len() != b.len() {
                    // Shouldn't happen for same-array sections; be sound.
                    return self.clone();
                }
                let ranges = a
                    .iter()
                    .zip(b.iter())
                    .map(|(ra, rb)| SymRange {
                        // For over-approximation either lo is sound; take
                        // the provably larger for precision.
                        lo: pick_max_lo(&ra.lo, &rb.lo, env),
                        hi: pick_min_hi(&ra.hi, &rb.hi, env),
                    })
                    .collect();
                Section::Dims(ranges)
            }
        }
    }

    /// Over-approximate difference `self \ gen` (sound for computing the
    /// *remaining* part of a query after subtracting MUST-generated
    /// elements): the result contains every element of the true
    /// difference.
    pub fn subtract_under(&self, gen: &Section, env: &RangeEnv) -> Section {
        match (self, gen) {
            (Section::Empty, _) => Section::Empty,
            (s, Section::Empty) => s.clone(),
            (_, Section::Universal) => Section::Empty,
            (s, g) => {
                if g.provably_contains(s, env) {
                    return Section::Empty;
                }
                if let (Section::Dims(a), Section::Dims(b)) = (s, g) {
                    if a.len() == 1 && b.len() == 1 {
                        if let (
                            Bound::Finite(la),
                            Bound::Finite(ha),
                            Bound::Finite(lb),
                            Bound::Finite(hb),
                        ) = (&a[0].lo, &a[0].hi, &b[0].lo, &b[0].hi)
                        {
                            let one = SymExpr::int(1);
                            // gen covers a prefix: lb <= la  =>  rest is
                            // [hb+1, ha].
                            if prove_le(lb, la, env) && prove_le(hb, ha, env) {
                                return Section::range1(hb.add(&one), ha.clone());
                            }
                            // gen covers a suffix: ha <= hb  =>  rest is
                            // [la, lb-1].
                            if prove_le(ha, hb, env) && prove_le(la, lb, env) {
                                return Section::range1(la.clone(), lb.sub(&one));
                            }
                        }
                    }
                }
                s.clone()
            }
        }
    }

    /// Under-approximate intersection (sound for MUST information): every
    /// element of the result is in both operands. Degrades to `Empty`
    /// when the bounds cannot be ordered.
    pub fn intersect_must(&self, other: &Section, env: &RangeEnv) -> Section {
        match (self, other) {
            (Section::Empty, _) | (_, Section::Empty) => Section::Empty,
            (Section::Universal, o) | (o, Section::Universal) => o.clone(),
            (Section::Dims(a), Section::Dims(b)) => {
                if self.provably_contains(other, env) {
                    return other.clone();
                }
                if other.provably_contains(self, env) {
                    return self.clone();
                }
                if a.len() != b.len() {
                    return Section::Empty;
                }
                let mut out = Vec::with_capacity(a.len());
                for (ra, rb) in a.iter().zip(b.iter()) {
                    // lo must be >= both los provably; hi <= both his.
                    let lo = match (&ra.lo, &rb.lo) {
                        (Bound::NegInf, o) | (o, Bound::NegInf) => o.clone(),
                        (Bound::Finite(x), Bound::Finite(y)) => {
                            if prove_ge0(&x.sub(y), env) {
                                Bound::Finite(x.clone())
                            } else if prove_ge0(&y.sub(x), env) {
                                Bound::Finite(y.clone())
                            } else {
                                return Section::Empty;
                            }
                        }
                        _ => return Section::Empty,
                    };
                    let hi = match (&ra.hi, &rb.hi) {
                        (Bound::PosInf, o) | (o, Bound::PosInf) => o.clone(),
                        (Bound::Finite(x), Bound::Finite(y)) => {
                            if prove_ge0(&y.sub(x), env) {
                                Bound::Finite(x.clone())
                            } else if prove_ge0(&x.sub(y), env) {
                                Bound::Finite(y.clone())
                            } else {
                                return Section::Empty;
                            }
                        }
                        _ => return Section::Empty,
                    };
                    out.push(SymRange { lo, hi });
                }
                Section::Dims(out)
            }
        }
    }

    /// Under-approximate difference `self \ kill` where `kill` is a MAY
    /// set (sound for trimming Gen information by later kills): no
    /// element of the result is in `kill`.
    pub fn subtract_may(&self, kill: &Section, env: &RangeEnv) -> Section {
        match (self, kill) {
            (Section::Empty, _) => Section::Empty,
            (s, Section::Empty) => s.clone(),
            (_, Section::Universal) => Section::Empty,
            (s, k) => {
                if s.provably_disjoint(k, env) {
                    return s.clone();
                }
                if let (Section::Dims(a), Section::Dims(b)) = (s, k) {
                    if a.len() == 1 && b.len() == 1 {
                        if let (
                            Bound::Finite(la),
                            Bound::Finite(ha),
                            Bound::Finite(lb),
                            Bound::Finite(hb),
                        ) = (&a[0].lo, &a[0].hi, &b[0].lo, &b[0].hi)
                        {
                            let one = SymExpr::int(1);
                            // Everything above the kill is safe.
                            let above = Section::range1(hb.add(&one), ha.clone());
                            if prove_le(&hb.add(&one), ha, env) && prove_le(la, &hb.add(&one), env)
                            {
                                return above;
                            }
                            // Everything below the kill is safe.
                            let below = Section::range1(la.clone(), lb.sub(&one));
                            if prove_le(la, &lb.sub(&one), env) && prove_le(&lb.sub(&one), ha, env)
                            {
                                return below;
                            }
                        }
                    }
                }
                Section::Empty
            }
        }
    }

    /// Substitutes `var := replacement` in every bound.
    pub fn subst(&self, var: VarId, replacement: &SymExpr) -> Section {
        match self {
            Section::Empty => Section::Empty,
            Section::Universal => Section::Universal,
            Section::Dims(ranges) => Section::Dims(
                ranges
                    .iter()
                    .map(|r| SymRange {
                        lo: subst_bound(&r.lo, var, replacement),
                        hi: subst_bound(&r.hi, var, replacement),
                    })
                    .collect(),
            ),
        }
    }

    /// Whether the per-iteration sections chain exactly as `var` steps
    /// by one: the single `var`-dependent dimension satisfies
    /// `lo(var+1) == hi(var) + 1` unconditionally. Used to justify MUST
    /// aggregation when the loop's trip count is unknown.
    fn chains_exactly(&self, var: VarId, env: &RangeEnv) -> bool {
        let Section::Dims(ranges) = self else {
            return false;
        };
        let varying: Vec<&SymRange> = ranges
            .iter()
            .filter(|r| {
                r.lo.as_finite().is_some_and(|e| e.mentions_var(var))
                    || r.hi.as_finite().is_some_and(|e| e.mentions_var(var))
            })
            .collect();
        // Exactly one dimension may vary with `var`; a box is empty as
        // soon as any one dimension is, so the zero-trip argument only
        // needs the varying dimension to chain exactly.
        if varying.len() != 1 {
            return false;
        }
        let r = varying[0];
        let (Bound::Finite(flo), Bound::Finite(fhi)) = (&r.lo, &r.hi) else {
            return false;
        };
        let next = SymExpr::var(var).add(&SymExpr::int(1));
        let lo_next = flo.subst(var, &next);
        // Exact chaining: lo(var+1) - hi(var) - 1 == 0 syntactically
        // (or provably under env without iteration constraints).
        let diff = lo_next.sub(fhi).sub(&SymExpr::int(1));
        diff.is_zero() || {
            use crate::prove::prove_eq;
            prove_eq(&diff, &SymExpr::int(0), env)
        }
    }

    /// Whether any bound mentions `var`.
    pub fn mentions_var(&self, var: VarId) -> bool {
        match self {
            Section::Dims(ranges) => ranges.iter().any(|r| {
                r.lo.as_finite().is_some_and(|e| e.mentions_var(var))
                    || r.hi.as_finite().is_some_and(|e| e.mentions_var(var))
            }),
            _ => false,
        }
    }

    /// Aggregates the per-iteration section over `var ∈ [lo, hi]`
    /// (§3.2.5, the `Aggregate` operator of Gross & Steenkiste / Gu et
    /// al.).
    ///
    /// - [`AggMode::May`]: the result contains the union over all
    ///   iterations (hull via monotone substitution; `Universal` when the
    ///   dependence on `var` is not understood).
    /// - [`AggMode::Must`]: the result is contained in the union,
    ///   requiring the per-iteration sections to chain contiguously
    ///   (`lo(i+1) <= hi(i) + 1`) and the loop to execute at least once;
    ///   `Empty` otherwise.
    pub fn aggregate(
        &self,
        var: VarId,
        lo: &SymExpr,
        hi: &SymExpr,
        env: &RangeEnv,
        mode: AggMode,
    ) -> Section {
        match self {
            Section::Empty => Section::Empty,
            Section::Universal => Section::Universal,
            Section::Dims(ranges) => {
                // A MUST union over zero iterations is empty; when the
                // trip count is unprovable the aggregate is still usable
                // if the per-iteration sections chain *exactly*
                // (`lo(i+1) == hi(i) + 1`): then the result box
                // `[lo(lo) : hi(hi)]` is itself provably empty whenever
                // the loop runs zero times.
                let runs_at_least_once = prove_le(lo, hi, env);
                if mode == AggMode::Must && !runs_at_least_once && !self.chains_exactly(var, env) {
                    return Section::Empty;
                }
                if !self.mentions_var(var) {
                    if mode == AggMode::Must && !runs_at_least_once {
                        return Section::Empty;
                    }
                    return self.clone();
                }
                // Iteration-local env: var ranges over [lo, hi].
                let mut iter_env = env.clone();
                iter_env.set_var_range(var, lo.clone(), hi.clone());
                let varying: Vec<usize> = ranges
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| {
                        r.lo.as_finite().is_some_and(|e| e.mentions_var(var))
                            || r.hi.as_finite().is_some_and(|e| e.mentions_var(var))
                    })
                    .map(|(i, _)| i)
                    .collect();
                match mode {
                    AggMode::May => {
                        let mut out = Vec::with_capacity(ranges.len());
                        for r in ranges {
                            let lo_b = minimize_bound(&r.lo, var, lo, hi, &iter_env);
                            let hi_b = maximize_bound(&r.hi, var, lo, hi, &iter_env);
                            out.push(SymRange { lo: lo_b, hi: hi_b });
                        }
                        Section::Dims(out)
                    }
                    AggMode::Must => {
                        if varying.len() != 1 {
                            return Section::Empty;
                        }
                        let d = varying[0];
                        let r = &ranges[d];
                        let (Bound::Finite(flo), Bound::Finite(fhi)) = (&r.lo, &r.hi) else {
                            return Section::Empty;
                        };
                        // Contiguity: lo(i+1) <= hi(i) + 1 for i in
                        // [lo, hi-1]; monotone growth: lo(i) <= lo(i+1).
                        let mut chain_env = env.clone();
                        chain_env.set_var_range(var, lo.clone(), hi.sub(&SymExpr::int(1)));
                        let next = SymExpr::var(var).add(&SymExpr::int(1));
                        let lo_next = flo.subst(var, &next);
                        let hi_next = fhi.subst(var, &next);
                        let one = SymExpr::int(1);
                        let contiguous = prove_le(&lo_next, &fhi.add(&one), &chain_env);
                        let lo_monotone = prove_le(flo, &lo_next, &chain_env);
                        let hi_monotone = prove_le(fhi, &hi_next, &chain_env);
                        // Per-iteration non-emptiness: lo(i) <= hi(i).
                        let nonempty = prove_le(flo, fhi, &iter_env);
                        if contiguous && lo_monotone && hi_monotone && nonempty {
                            let mut out = ranges.clone();
                            out[d] = SymRange::new(flo.subst(var, lo), fhi.subst(var, hi));
                            Section::Dims(out)
                        } else {
                            Section::Empty
                        }
                    }
                }
            }
        }
    }
}

fn subst_bound(b: &Bound, var: VarId, replacement: &SymExpr) -> Bound {
    match b {
        Bound::Finite(e) => Bound::Finite(e.subst(var, replacement)),
        other => other.clone(),
    }
}

/// A sound lower bound for `min(a, b)` when both are lower bounds of
/// sections being unioned (the hull's lower end).
fn lower_of(a: &Bound, b: &Bound, env: &RangeEnv) -> Bound {
    match (a, b) {
        (Bound::NegInf, _) | (_, Bound::NegInf) => Bound::NegInf,
        (Bound::PosInf, o) | (o, Bound::PosInf) => o.clone(),
        (Bound::Finite(x), Bound::Finite(y)) => {
            if prove_le(x, y, env) {
                a.clone()
            } else if prove_le(y, x, env) {
                b.clone()
            } else {
                Bound::NegInf
            }
        }
    }
}

/// A sound upper bound for `max(a, b)` (the hull's upper end).
fn upper_of(a: &Bound, b: &Bound, env: &RangeEnv) -> Bound {
    match (a, b) {
        (Bound::PosInf, _) | (_, Bound::PosInf) => Bound::PosInf,
        (Bound::NegInf, o) | (o, Bound::NegInf) => o.clone(),
        (Bound::Finite(x), Bound::Finite(y)) => {
            if prove_le(x, y, env) {
                b.clone()
            } else if prove_le(y, x, env) {
                a.clone()
            } else {
                Bound::PosInf
            }
        }
    }
}

/// For an over-approximate intersection, any of the operand `lo`s is
/// sound; pick the provably larger.
fn pick_max_lo(a: &Bound, b: &Bound, env: &RangeEnv) -> Bound {
    match (a, b) {
        (Bound::NegInf, o) | (o, Bound::NegInf) => o.clone(),
        (Bound::PosInf, _) | (_, Bound::PosInf) => Bound::PosInf,
        (Bound::Finite(x), Bound::Finite(y)) => {
            if prove_le(x, y, env) {
                b.clone()
            } else {
                a.clone()
            }
        }
    }
}

fn pick_min_hi(a: &Bound, b: &Bound, env: &RangeEnv) -> Bound {
    match (a, b) {
        (Bound::PosInf, o) | (o, Bound::PosInf) => o.clone(),
        (Bound::NegInf, _) | (_, Bound::NegInf) => Bound::NegInf,
        (Bound::Finite(x), Bound::Finite(y)) => {
            if prove_le(x, y, env) {
                a.clone()
            } else {
                b.clone()
            }
        }
    }
}

/// The smallest value `bound` takes as `var` ranges over `[lo, hi]`
/// (monotone substitution); `NegInf` when monotonicity is unprovable.
fn minimize_bound(bound: &Bound, var: VarId, lo: &SymExpr, hi: &SymExpr, env: &RangeEnv) -> Bound {
    let Bound::Finite(e) = bound else {
        return bound.clone();
    };
    if !e.mentions_var(var) {
        return bound.clone();
    }
    match monotonicity(e, var, lo, hi, env) {
        Some(Monotone::NonDecreasing) => Bound::Finite(e.subst(var, lo)),
        Some(Monotone::NonIncreasing) => Bound::Finite(e.subst(var, hi)),
        None => Bound::NegInf,
    }
}

/// The largest value `bound` takes as `var` ranges over `[lo, hi]`.
fn maximize_bound(bound: &Bound, var: VarId, lo: &SymExpr, hi: &SymExpr, env: &RangeEnv) -> Bound {
    let Bound::Finite(e) = bound else {
        return bound.clone();
    };
    if !e.mentions_var(var) {
        return bound.clone();
    }
    match monotonicity(e, var, lo, hi, env) {
        Some(Monotone::NonDecreasing) => Bound::Finite(e.subst(var, hi)),
        Some(Monotone::NonIncreasing) => Bound::Finite(e.subst(var, lo)),
        None => Bound::PosInf,
    }
}

/// The smallest and largest values `e` takes as `var` ranges over
/// `[lo, hi]`, via monotone substitution. `None` when the evolution of
/// `e` in `var` cannot be proven monotone.
pub fn extremes_over(
    e: &SymExpr,
    var: VarId,
    lo: &SymExpr,
    hi: &SymExpr,
    env: &RangeEnv,
) -> Option<(SymExpr, SymExpr)> {
    if !e.mentions_var(var) {
        return Some((e.clone(), e.clone()));
    }
    match monotonicity(e, var, lo, hi, env)? {
        Monotone::NonDecreasing => Some((e.subst(var, lo), e.subst(var, hi))),
        Monotone::NonIncreasing => Some((e.subst(var, hi), e.subst(var, lo))),
    }
}

enum Monotone {
    NonDecreasing,
    NonIncreasing,
}

/// Determines how `e` evolves as `var` steps by +1 through `[lo, hi]`,
/// using the prover (which understands closed-form-distance facts, so
/// `pptr(i)` counts as non-decreasing when `pptr(i+1)-pptr(i) = iblen(i)
/// >= 0` is known).
fn monotonicity(
    e: &SymExpr,
    var: VarId,
    lo: &SymExpr,
    hi: &SymExpr,
    env: &RangeEnv,
) -> Option<Monotone> {
    let mut step_env = env.clone();
    step_env.set_var_range(var, lo.clone(), hi.sub(&SymExpr::int(1)));
    let next = e.subst(var, &SymExpr::var(var).add(&SymExpr::int(1)));
    let delta = next.sub(e);
    if prove_ge0(&delta, &step_env) {
        return Some(Monotone::NonDecreasing);
    }
    if prove_ge0(&delta.neg(), &step_env) {
        return Some(Monotone::NonIncreasing);
    }
    None
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Section::Empty => write!(f, "{{}}"),
            Section::Universal => write!(f, "[-inf:+inf]"),
            Section::Dims(ranges) => {
                let strs: Vec<String> = ranges.iter().map(|r| format!("{r}")).collect();
                write!(f, "{}", strs.join("x"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: i64) -> SymExpr {
        SymExpr::int(v)
    }

    fn sec(lo: i64, hi: i64) -> Section {
        Section::range1(c(lo), c(hi))
    }

    #[test]
    fn disjointness_and_containment() {
        let env = RangeEnv::new();
        assert!(sec(1, 5).provably_disjoint(&sec(6, 9), &env));
        assert!(!sec(1, 5).provably_disjoint(&sec(5, 9), &env));
        assert!(sec(1, 10).provably_contains(&sec(2, 9), &env));
        assert!(!sec(2, 9).provably_contains(&sec(1, 10), &env));
        assert!(sec(5, 1).provably_empty(&env));
        assert!(!sec(1, 1).provably_empty(&env));
    }

    #[test]
    fn union_may_hull() {
        let env = RangeEnv::new();
        let u = sec(1, 3).union_may(&sec(7, 9), &env);
        assert_eq!(u, sec(1, 9));
        assert!(u.provably_contains(&sec(1, 3), &env));
        assert!(u.provably_contains(&sec(7, 9), &env));
    }

    #[test]
    fn union_must_merges_contiguous() {
        let env = RangeEnv::new();
        // [1,3] ∪ [4,9] = [1,9] exactly (adjacent).
        assert_eq!(sec(1, 3).union_must(&sec(4, 9), &env), sec(1, 9));
        // [1,3] ∪ [5,9] not contiguous: under-approximates with one side.
        let u = sec(1, 3).union_must(&sec(5, 9), &env);
        assert!(u == sec(1, 3) || u == sec(5, 9));
        // Containment collapses.
        assert_eq!(sec(1, 9).union_must(&sec(2, 5), &env), sec(1, 9));
    }

    #[test]
    fn intersect_may_precision() {
        let env = RangeEnv::new();
        assert_eq!(sec(1, 5).intersect_may(&sec(3, 9), &env), sec(3, 5));
        assert_eq!(sec(1, 5).intersect_may(&sec(6, 9), &env), Section::Empty);
    }

    #[test]
    fn subtract_prefix_and_suffix() {
        let env = RangeEnv::new();
        // [1,10] - [1,4] = [5,10].
        assert_eq!(sec(1, 10).subtract_under(&sec(1, 4), &env), sec(5, 10));
        // [1,10] - [6,10] = [1,5].
        assert_eq!(sec(1, 10).subtract_under(&sec(6, 10), &env), sec(1, 5));
        // [1,10] - [1,10] = empty.
        assert_eq!(sec(1, 10).subtract_under(&sec(0, 12), &env), Section::Empty);
        // Middle hole: conservative (whole section remains).
        assert_eq!(sec(1, 10).subtract_under(&sec(4, 6), &env), sec(1, 10));
    }

    #[test]
    fn aggregate_may_affine() {
        // Section [i:i] aggregated over i in [1, n] -> [1:n].
        let mut env = RangeEnv::new();
        let i = VarId(0);
        let n = VarId(1);
        env.set_var_range(n, c(1), c(1000));
        let s = Section::point(vec![SymExpr::var(i)]);
        let agg = s.aggregate(i, &c(1), &SymExpr::var(n), &env, AggMode::May);
        assert_eq!(agg, Section::range1(c(1), SymExpr::var(n)));
    }

    #[test]
    fn aggregate_must_contiguous_points() {
        // MUST: [i:i] over i in [1, n] with n >= 1 -> [1:n].
        let mut env = RangeEnv::new();
        let i = VarId(0);
        let n = VarId(1);
        env.set_var_range(n, c(1), c(1000)); // n >= 1, so the loop runs.
        let s = Section::point(vec![SymExpr::var(i)]);
        let agg = s.aggregate(i, &c(1), &SymExpr::var(n), &env, AggMode::Must);
        assert_eq!(agg, Section::range1(c(1), SymExpr::var(n)));
    }

    #[test]
    fn aggregate_must_fails_with_gaps() {
        // [2i : 2i] leaves holes -> MUST aggregation must give Empty.
        let mut env = RangeEnv::new();
        let i = VarId(0);
        env.set_var_range(VarId(1), c(2), c(1000));
        let s = Section::point(vec![SymExpr::var(i).scale(2)]);
        let agg = s.aggregate(i, &c(1), &SymExpr::var(VarId(1)), &env, AggMode::Must);
        assert_eq!(agg, Section::Empty);
    }

    #[test]
    fn aggregate_must_with_unknown_trip_count() {
        // n unknown but the sections chain exactly: [i:i] over [1, n]
        // aggregates to [1:n], which is itself empty when n < 1.
        let env = RangeEnv::new();
        let i = VarId(0);
        let n = SymExpr::var(VarId(1));
        let s = Section::point(vec![SymExpr::var(i)]);
        let agg = s.aggregate(i, &c(1), &n, &env, AggMode::Must);
        assert_eq!(agg, Section::range1(c(1), n.clone()));
        // A var-independent section cannot be MUST-aggregated over a
        // possibly-zero-trip loop.
        let fixed = Section::range1(c(1), c(5));
        let agg2 = fixed.aggregate(i, &c(1), &n, &env, AggMode::Must);
        assert_eq!(agg2, Section::Empty);
        // Nor can a section with gaps relative to its chaining.
        let gapped = Section::range1(SymExpr::var(i).scale(2), SymExpr::var(i).scale(2));
        let agg3 = gapped.aggregate(i, &c(1), &n, &env, AggMode::Must);
        assert_eq!(agg3, Section::Empty);
    }

    #[test]
    fn aggregate_may_unknown_dependence_is_unbounded() {
        // Section [q:q] where q is not the loop var but [x(i):x(i)]
        // depends on i through an unknown array: May -> unbounded dim.
        let env = RangeEnv::new();
        let i = VarId(0);
        let arr = VarId(5);
        let s = Section::point(vec![SymExpr::elem(arr, vec![SymExpr::var(i)])]);
        let agg = s.aggregate(i, &c(1), &c(10), &env, AggMode::May);
        match agg {
            Section::Dims(r) => {
                assert_eq!(r[0].lo, Bound::NegInf);
                assert_eq!(r[0].hi, Bound::PosInf);
            }
            other => panic!("expected dims, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_ccs_segments_with_distance_fact() {
        // Section [pptr(i) : pptr(i)+iblen(i)-1] over i in [1, n]:
        // with pptr(i+1) = pptr(i) + iblen(i) and iblen >= 0 this chains
        // contiguously: MUST aggregate = [pptr(1) : pptr(n)+iblen(n)-1]
        // ... but per-iteration non-emptiness needs iblen(i) >= 1, so use
        // iblen >= 1 here.
        let mut env = RangeEnv::new();
        let i = VarId(0);
        let n = VarId(1);
        let pptr = VarId(2);
        let iblen = VarId(3);
        let k = VarId(7);
        env.set_var_range(n, c(1), c(1000));
        env.set_distance(pptr, k, SymExpr::elem(iblen, vec![SymExpr::var(k)]));
        env.set_elem_range(
            iblen,
            SymRange {
                lo: Bound::Finite(c(1)),
                hi: Bound::PosInf,
            },
        );
        let lo = SymExpr::elem(pptr, vec![SymExpr::var(i)]);
        let hi = lo
            .add(&SymExpr::elem(iblen, vec![SymExpr::var(i)]))
            .sub(&c(1));
        let s = Section::range1(lo, hi);
        let agg = s.aggregate(i, &c(1), &SymExpr::var(n), &env, AggMode::Must);
        let expect_lo = SymExpr::elem(pptr, vec![c(1)]);
        let expect_hi = SymExpr::elem(pptr, vec![SymExpr::var(n)])
            .add(&SymExpr::elem(iblen, vec![SymExpr::var(n)]))
            .sub(&c(1));
        assert_eq!(agg, Section::range1(expect_lo, expect_hi));
    }

    #[test]
    fn intersect_must_underapproximates() {
        let env = RangeEnv::new();
        assert_eq!(sec(1, 5).intersect_must(&sec(3, 9), &env), sec(3, 5));
        assert_eq!(sec(1, 10).intersect_must(&sec(2, 5), &env), sec(2, 5));
        // Unorderable bounds degrade to Empty.
        let i = VarId(0);
        let s = Section::range1(SymExpr::var(i), SymExpr::var(i).add(&c(5)));
        assert_eq!(s.intersect_must(&sec(1, 10), &env), Section::Empty);
    }

    #[test]
    fn subtract_may_never_keeps_killed_elements() {
        let env = RangeEnv::new();
        // [1,10] \ [1,4] -> [5,10].
        assert_eq!(sec(1, 10).subtract_may(&sec(1, 4), &env), sec(5, 10));
        // [1,10] \ [8,12] -> [1,7].
        assert_eq!(sec(1, 10).subtract_may(&sec(8, 12), &env), sec(1, 7));
        // Disjoint kill leaves the section alone.
        assert_eq!(sec(1, 10).subtract_may(&sec(20, 30), &env), sec(1, 10));
        // Kill in the middle: a box cannot represent two pieces, so one
        // sound piece (the upper one) is kept.
        assert_eq!(sec(1, 10).subtract_may(&sec(4, 6), &env), sec(7, 10));
        // Universal kill removes everything.
        assert_eq!(
            sec(1, 10).subtract_may(&Section::Universal, &env),
            Section::Empty
        );
    }

    #[test]
    fn subst_rewrites_bounds() {
        let i = VarId(0);
        let s = Section::range1(SymExpr::var(i), SymExpr::var(i).add(&c(2)));
        let t = s.subst(i, &c(5));
        assert_eq!(t, sec(5, 7));
    }

    #[test]
    fn universal_and_empty_behave() {
        let env = RangeEnv::new();
        assert_eq!(
            Section::Universal.union_may(&sec(1, 2), &env),
            Section::Universal
        );
        assert_eq!(Section::Empty.union_may(&sec(1, 2), &env), sec(1, 2));
        assert_eq!(
            Section::Universal.intersect_may(&sec(1, 2), &env),
            sec(1, 2)
        );
        assert_eq!(
            sec(1, 2).subtract_under(&Section::Universal, &env),
            Section::Empty
        );
        assert!(Section::Empty.provably_empty(&env));
        assert!(!Section::Universal.provably_empty(&env));
    }

    #[test]
    fn display_sections() {
        assert_eq!(format!("{}", sec(1, 5)), "[1:5]");
        assert_eq!(format!("{}", Section::Empty), "{}");
    }
}
