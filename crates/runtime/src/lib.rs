//! Hybrid inspector–executor runtime (§1 revisited).
//!
//! The paper argues that compile-time analysis beats run-time
//! inspection because "the inspector pays on every execution". This
//! crate implements the *hybrid* middle ground the comparison implies:
//!
//! - loops the compile-time analysis **proved** parallel dispatch
//!   straight to the chunked executor ([`DispatchTier::CompileTimeParallel`]);
//! - loops it **disproved** (or cannot pattern-match) stay sequential;
//! - loops left **Unknown** — where the dependence tester matched a
//!   parallelizable shape but one property didn't prove — carry a
//!   [`GuardPlan`] naming the residual checks. At each dynamic entry a
//!   run-time inspector evaluates exactly those checks against the live
//!   store and dispatches parallel or sequential *for that execution*.
//!
//! The inspection cost is then amortized with a [`ScheduleCache`]: the
//! interpreter's [`Store`] bumps a write-version counter per array, and
//! a cached verdict is reused as long as the guard's index arrays (and
//! the loop's evaluated bounds) are unchanged — re-inspection happens
//! per *mutation*, not per execution. [`Telemetry`] counts inspections,
//! cache hits/invalidations, and per-tier dispatches so the trade-off
//! stays measurable (see the `runtime-vs-compile-time` bench group and
//! `examples/hybrid_fallback.rs`).
//!
//! Parallel dispatches go through the exec crate's write-log executor:
//! each worker runs on a copy-on-write clone of the live store and
//! returns a write log, merged in `O(total writes)` with positional
//! conflict detection; worker statement costs and loop statistics are
//! aggregated back into the dispatched interpreter, so a hybrid run's
//! [`ExecOutcome`] stats match the sequential run's.

pub mod cache;
pub mod telemetry;

pub use cache::{CacheProbe, ScheduleCache, ScheduleKey};
pub use telemetry::Telemetry;

use irr_driver::{
    CompilationReport, DispatchTier, GuardPlan, ReductionOp, ResidualCheck, StrategyFacts,
};
use irr_exec::{
    inspect_injective, inspect_injective_parallel, inspect_offset_length, ExecError, ExecOutcome,
    ExecutionStrategy, FallbackReason, FaultKind, FaultPlan, Inspection, Interp, LoopDecision,
    LoopDispatcher, ParallelPlan, ReduceOp, Store,
};
use irr_frontend::{StmtId, VarId};
use std::collections::HashMap;

/// Configuration of the hybrid runtime.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Worker threads for parallel loop execution.
    pub threads: usize,
    /// Reuse inspection verdicts across executions via the versioned
    /// schedule cache (`false` re-inspects on every guarded entry, the
    /// pure inspector–executor model the paper argues against).
    pub cache_schedules: bool,
    /// After a parallel dispatch fails at runtime, how many subsequent
    /// entries of the same `(loop, key)` schedule are pinned sequential
    /// before the verdict is dropped and re-inspected. `0` retries
    /// immediately (the pre-quarantine behavior).
    pub quarantine_retries: u32,
    /// Maximum cached schedules across all loops (LRU-evicted).
    pub cache_capacity: usize,
    /// Maximum cached schedules per loop, so a loop alternating between
    /// a few bound shapes keeps them all (LRU-evicted within the loop).
    pub cache_keys_per_loop: usize,
    /// Per-worker wall-clock deadline for parallel dispatches, in
    /// milliseconds: a worker still running past it turns the dispatch
    /// into a timeout fallback. `None` (the default) disables the
    /// watchdog and keeps the worker hot path clock-free.
    pub worker_deadline_ms: Option<u64>,
    /// Use proof-directed execution strategies (in-place-disjoint,
    /// privatize-and-concat) for loops whose verdicts carry the facts.
    /// `false` forces every parallel dispatch through the write-log —
    /// the pre-strategy behavior, kept for A/B measurement.
    pub enable_strategies: bool,
    /// Minimum inspected section length before a guarded loop's
    /// injectivity inspector runs its chunked parallel variant; shorter
    /// sections stay on the sequential scan (thread spawn would cost
    /// more than it saves).
    pub parallel_inspect_threshold: usize,
    /// Use the compiled (bytecode) execution tier: sequential-tier leaf
    /// loops whose verdict carries a compiled plan dispatch as
    /// [`LoopDecision::Compiled`], and parallel plans request bytecode
    /// worker bodies. `false` keeps every loop on the tree-walk — the
    /// A/B baseline for the `compiled` bench group.
    pub enable_compiled: bool,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            threads: 4,
            cache_schedules: true,
            quarantine_retries: 2,
            cache_capacity: 128,
            cache_keys_per_loop: 4,
            worker_deadline_ms: None,
            enable_strategies: true,
            parallel_inspect_threshold: 2048,
            enable_compiled: true,
        }
    }
}

/// Everything the dispatcher needs to know about one compiled loop.
/// A loop verdict's parallel-plan attribution: the privatized variables
/// and the reduction assignments (see [`HybridDispatcher::loop_attribution`]).
pub type LoopAttribution<'a> = (&'a [VarId], &'a [(VarId, ReduceOp)]);

#[derive(Clone, Debug)]
struct LoopEntry {
    tier: DispatchTier,
    privatized: Vec<VarId>,
    reductions: Vec<(VarId, ReduceOp)>,
    /// Strategy requested from the verdict's proven facts. The executor
    /// re-derives the facts itself on every dispatch, so a wrong entry
    /// here (or a forged verdict) downgrades safely to the write-log.
    strategy: ExecutionStrategy,
    /// Residual checks the value-evolution analysis discharged at
    /// compile time: inspections this loop entry never pays for.
    retired: u64,
    /// The discharge crossed a procedure boundary (summary-carried
    /// facts): promotions to attribute to interprocedural analysis.
    interproc: bool,
    /// The verdict carries an advisory compiled-tier plan. Purely a
    /// request: the executor re-lowers from the AST at dispatch and
    /// falls back (reason-coded) when the plan was wrong.
    compiled_plan: bool,
    /// The nest contains no inner `do` loop. Only such leaves take the
    /// sequential compiled tier — an inner `do` must keep consulting
    /// this dispatcher (it may itself be parallel), and the bytecode
    /// executor never dispatches. Inner `while` loops are fine: the
    /// tree-walk never routes those through the dispatcher either.
    leaf_do: bool,
}

/// The hybrid dispatcher: consulted by the interpreter at every dynamic
/// `do`-loop entry (with evaluated bounds); decides the tier, runs
/// inspectors for guarded loops, and maintains the schedule cache.
pub struct HybridDispatcher {
    loops: HashMap<StmtId, LoopEntry>,
    config: HybridConfig,
    cache: ScheduleCache,
    /// Injected fault schedule for chaos testing; `None` (the default)
    /// keeps every dispatch on the ordinary path at the cost of a
    /// single `Option` check.
    fault: Option<FaultPlan>,
    /// The `(loop, key)` of the most recent parallel decision, kept so
    /// a runtime failure can quarantine exactly the schedule that
    /// failed.
    last_parallel: Option<(StmtId, ScheduleKey)>,
    /// Counters for this dispatcher's lifetime.
    pub telemetry: Telemetry,
}

impl HybridDispatcher {
    /// Builds a dispatcher from a compilation report's verdicts.
    pub fn new(report: &CompilationReport, config: HybridConfig) -> HybridDispatcher {
        let mut loops = HashMap::new();
        for v in &report.verdicts {
            let privatized: Vec<VarId> = v
                .privatized_scalars
                .iter()
                .copied()
                .chain(v.privatized_arrays.iter().map(|(a, _)| *a))
                .collect();
            let reductions: Vec<(VarId, ReduceOp)> = v
                .reductions
                .iter()
                .filter_map(|(var, op)| {
                    let op = match op {
                        ReductionOp::Sum => ReduceOp::Sum,
                        ReductionOp::Min => ReduceOp::Min,
                        ReductionOp::Max => ReduceOp::Max,
                        // Tiering already forced Sequential for products.
                        ReductionOp::Product => return None,
                    };
                    Some((*var, op))
                })
                .collect();
            let strategy = match &v.strategy_facts {
                StrategyFacts::DisjointAffine { .. } => ExecutionStrategy::InPlaceDisjoint,
                StrategyFacts::ConsecutiveAppend { .. } => ExecutionStrategy::PrivatizeAndConcat,
                StrategyFacts::None => ExecutionStrategy::WriteLog,
            };
            let leaf_do = match &report.program.stmt(v.loop_stmt).kind {
                irr_frontend::StmtKind::Do { body, .. } => {
                    report.program.stmts_in(body).iter().all(|s| {
                        !matches!(
                            report.program.stmt(*s).kind,
                            irr_frontend::StmtKind::Do { .. }
                        )
                    })
                }
                _ => false,
            };
            loops.insert(
                v.loop_stmt,
                LoopEntry {
                    tier: v.tier.clone(),
                    privatized,
                    reductions,
                    strategy,
                    retired: v.retired_checks.len() as u64,
                    interproc: v.promoted_interproc,
                    compiled_plan: v.compiled.is_some(),
                    leaf_do,
                },
            );
        }
        HybridDispatcher {
            loops,
            config,
            cache: ScheduleCache::with_limits(config.cache_capacity, config.cache_keys_per_loop),
            fault: None,
            last_parallel: None,
            telemetry: Telemetry::default(),
        }
    }

    /// Attaches a fault-injection schedule for chaos testing. Every
    /// parallel dispatch attempt with at least one iteration consumes
    /// one site of the plan; decided faults that go live are recorded
    /// in it (retrieve with [`HybridDispatcher::take_fault_plan`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Detaches the fault plan (with its fired-fault record), if any.
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// The schedule cache (for inspection in tests and examples).
    pub fn cache(&self) -> &ScheduleCache {
        &self.cache
    }

    /// Per-array attribution for `loop_stmt`'s verdict: the privatized
    /// variables and the reduction assignments the dispatcher would hand
    /// to a parallel plan. The dependence sanitizer uses these to decide
    /// which observed dependences a parallel verdict already explains.
    pub fn loop_attribution(&self, loop_stmt: StmtId) -> Option<LoopAttribution<'_>> {
        self.loops
            .get(&loop_stmt)
            .map(|e| (e.privatized.as_slice(), e.reductions.as_slice()))
    }

    fn plan_for(&mut self, entry: &LoopEntry, fault: Option<FaultKind>) -> ParallelPlan {
        // A request, not a promise: the master re-lowers before
        // spawning and workers silently tree-walk when it fails.
        let compiled = self.config.enable_compiled && entry.compiled_plan;
        if compiled {
            self.telemetry.compiled_worker_dispatches += 1;
        }
        ParallelPlan {
            threads: self.config.threads.max(1),
            privatized: entry.privatized.clone(),
            reductions: entry.reductions.clone(),
            deadline_ms: self.config.worker_deadline_ms,
            fault,
            strategy: if self.config.enable_strategies {
                entry.strategy
            } else {
                ExecutionStrategy::WriteLog
            },
            compiled,
        }
    }

    /// Draws the injected fault (if any) for the next parallel dispatch
    /// site. Zero-trip dispatches never call this: no workers spawn, so
    /// no fault could fire and the site numbering stays aligned with
    /// dispatches where injection is observable.
    fn decide_fault(&mut self) -> Option<FaultKind> {
        let threads = self.config.threads.max(1);
        self.fault.as_mut()?.decide(threads)
    }

    /// Stamps a decided executor-level fault (conflict forge, worker
    /// panic/stall) into a plan that is definitely dispatching, and
    /// records it as fired. [`FaultKind::LieInspector`] is handled at
    /// decision time and never reaches here.
    fn arm_fault(&mut self, kind: Option<FaultKind>) -> Option<FaultKind> {
        let kind = kind?;
        if let Some(plan) = self.fault.as_mut() {
            plan.record_fired(kind);
        }
        Some(kind)
    }

    /// Evaluates the guard against the live store: every group must be
    /// cleared, and a group is cleared when *any one* of its checks
    /// passes (each check would alone establish that array's
    /// independence — the tester's symmetric candidates include checks
    /// that legitimately fail while a sibling passes).
    fn inspect(&mut self, store: &Store, guard: &GuardPlan, lo: i64, hi: i64) -> bool {
        'groups: for group in &guard.groups {
            for check in group {
                self.telemetry.inspections_run += 1;
                let verdict = match check {
                    ResidualCheck::Injective { array } => {
                        // Long sections amortize thread spawn: the chunked
                        // parallel inspector marks per-chunk bitmaps and
                        // merges them at chunk granularity.
                        if hi.saturating_sub(lo) + 1
                            >= self.config.parallel_inspect_threshold as i64
                        {
                            inspect_injective_parallel(
                                store,
                                *array,
                                lo,
                                hi,
                                self.config.threads.max(1),
                            )
                        } else {
                            inspect_injective(store, *array, lo, hi)
                        }
                    }
                    ResidualCheck::OffsetLength { ptr, len } => {
                        inspect_offset_length(store, *ptr, *len, lo, hi)
                    }
                };
                if verdict == Inspection::ParallelOk {
                    continue 'groups;
                }
            }
            return false;
        }
        true
    }
}

/// Arrays a guard's inspectors read, for version keying.
fn guard_arrays(guard: &GuardPlan) -> Vec<VarId> {
    let mut out = Vec::new();
    for check in guard.all_checks() {
        match check {
            ResidualCheck::Injective { array } => out.push(*array),
            ResidualCheck::OffsetLength { ptr, len } => {
                out.push(*ptr);
                out.push(*len);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

impl LoopDispatcher for HybridDispatcher {
    fn dispatch(
        &mut self,
        store: &Store,
        loop_stmt: StmtId,
        lo: i64,
        hi: i64,
        step: i64,
    ) -> LoopDecision {
        let Some(entry) = self.loops.get(&loop_stmt).cloned() else {
            self.telemetry.sequential_unknown_loop += 1;
            return LoopDecision::Sequential;
        };
        // The chunked executor only handles unit-step loops.
        if step != 1 {
            self.telemetry.sequential_non_unit_step += 1;
            return LoopDecision::Sequential;
        }
        match &entry.tier {
            DispatchTier::Sequential => {
                // A sequential-tier loop whose verdict proved the
                // consecutive-append shape is *promoted* to parallel
                // dispatch under the privatize-and-concat strategy: the
                // pointer dependence that forced the sequential verdict
                // is exactly what the strategy removes. The executor
                // re-validates the shape per dispatch and the append
                // discipline dynamically; a failed dispatch falls back
                // and quarantines like any other schedule.
                if self.config.enable_strategies
                    && entry.strategy == ExecutionStrategy::PrivatizeAndConcat
                {
                    let key = ScheduleKey::new((lo, hi), Vec::new());
                    if self.cache.consume_quarantine(loop_stmt, &key) {
                        self.telemetry.quarantined += 1;
                        return LoopDecision::Sequential;
                    }
                    let fault = if lo <= hi { self.decide_fault() } else { None };
                    let fault = self.arm_fault(fault.filter(|k| *k != FaultKind::LieInspector));
                    self.telemetry.concat_parallel += 1;
                    self.last_parallel = Some((loop_stmt, key));
                    return LoopDecision::Parallel(self.plan_for(&entry, fault));
                }
                self.telemetry.sequential_proven += 1;
                // The compiled tier changes the engine, not the
                // decision: the entry is still a proven-sequential
                // dispatch (counted above), executed on bytecode. Only
                // leaf nests qualify — an inner `do` loop must keep
                // consulting this dispatcher.
                if self.config.enable_compiled && entry.compiled_plan && entry.leaf_do {
                    return LoopDecision::Compiled;
                }
                LoopDecision::Sequential
            }
            DispatchTier::CompileTimeParallel => {
                // Compile-time verdicts carry no inspected arrays, so
                // the schedule key is bounds-only — enough for the
                // quarantine to pin the shape that failed.
                let key = ScheduleKey::new((lo, hi), Vec::new());
                if self.cache.consume_quarantine(loop_stmt, &key) {
                    self.telemetry.quarantined += 1;
                    return LoopDecision::Sequential;
                }
                // A lie fault is meaningless without an inspector;
                // worker/merge faults are armed into the plan.
                let fault = if lo <= hi { self.decide_fault() } else { None };
                let fault = self.arm_fault(fault.filter(|k| *k != FaultKind::LieInspector));
                self.telemetry.compile_time_parallel += 1;
                if entry.retired > 0 {
                    // This entry reached the unguarded tier on
                    // evolution facts: count the inspections a
                    // pre-evolution runtime would have run here.
                    self.telemetry.promoted_by_evolution += 1;
                    self.telemetry.inspections_retired += entry.retired;
                    if entry.interproc {
                        self.telemetry.promoted_interproc += 1;
                    }
                }
                self.last_parallel = Some((loop_stmt, key));
                LoopDecision::Parallel(self.plan_for(&entry, fault))
            }
            DispatchTier::RuntimeGuarded(guard) => {
                let key = ScheduleKey::new(
                    (lo, hi),
                    guard_arrays(guard)
                        .into_iter()
                        .map(|a| (a, store.array_version(a)))
                        .collect(),
                );
                if self.cache.consume_quarantine(loop_stmt, &key) {
                    self.telemetry.quarantined += 1;
                    return LoopDecision::Sequential;
                }
                // A loop can stay guarded with a *shorter* plan when
                // evolution discharged only some of its arrays; those
                // checks are still inspections this entry skips.
                self.telemetry.inspections_retired += entry.retired;
                let fault = if lo <= hi { self.decide_fault() } else { None };
                let lie = fault == Some(FaultKind::LieInspector);
                let parallel_ok = if lie {
                    // The inspector "passes" a guard it never ran. The
                    // forged verdict is deliberately not cached: the
                    // lie corrupts one dispatch, not the cache.
                    if let Some(plan) = self.fault.as_mut() {
                        plan.record_fired(FaultKind::LieInspector);
                    }
                    true
                } else if self.config.cache_schedules {
                    match self.cache.probe(loop_stmt, &key) {
                        CacheProbe::Hit(v) => {
                            self.telemetry.cache_hits += 1;
                            v
                        }
                        probe => {
                            if probe == CacheProbe::Stale {
                                self.telemetry.cache_invalidations += 1;
                            }
                            let v = self.inspect(store, guard, lo, hi);
                            self.cache.insert(loop_stmt, key.clone(), v);
                            self.telemetry.cache_evictions = self.cache.evictions();
                            v
                        }
                    }
                } else {
                    self.inspect(store, guard, lo, hi)
                };
                if parallel_ok {
                    // Executor-level faults go live only on a dispatch
                    // that actually happens; a fault decided for a
                    // guard that honestly failed is silently dropped.
                    let fault = self.arm_fault(if lie { None } else { fault });
                    self.telemetry.guarded_parallel += 1;
                    self.last_parallel = Some((loop_stmt, key));
                    LoopDecision::Parallel(self.plan_for(&entry, fault))
                } else {
                    self.telemetry.guarded_sequential += 1;
                    LoopDecision::Sequential
                }
            }
        }
    }

    fn parallel_committed(&mut self, _loop_stmt: StmtId, strategy: ExecutionStrategy) {
        match strategy {
            ExecutionStrategy::WriteLog => self.telemetry.strategy_write_log += 1,
            ExecutionStrategy::InPlaceDisjoint => self.telemetry.strategy_in_place += 1,
            ExecutionStrategy::PrivatizeAndConcat => self.telemetry.strategy_concat += 1,
        }
    }

    fn compiled_committed(&mut self, _loop_stmt: StmtId) {
        self.telemetry.compiled_loops += 1;
    }

    fn compiled_fallback(&mut self, _loop_stmt: StmtId, reason: FallbackReason) {
        self.telemetry.record_compiled_fallback(reason);
    }

    fn parallel_failed(&mut self, loop_stmt: StmtId, reason: FallbackReason) {
        self.telemetry.record_fallback(reason);
        // Quarantine exactly the schedule that failed: pinned
        // sequential for `quarantine_retries` entries, then dropped so
        // the loop re-inspects from scratch. With a zero budget the
        // poisoning still drops any cached parallel verdict for the
        // key, so a failed schedule is never answered from cache again.
        if let Some((stmt, key)) = self.last_parallel.take() {
            if stmt == loop_stmt {
                self.cache.poison(stmt, key, self.config.quarantine_retries);
                self.telemetry.quarantine_poisonings += 1;
                self.telemetry.cache_evictions = self.cache.evictions();
            }
        }
    }
}

/// Outcome of a hybrid execution.
#[derive(Clone, Debug)]
pub struct HybridOutcome {
    /// The interpreter outcome (printed output, final store, stats).
    pub outcome: ExecOutcome,
    /// What the runtime did to get there.
    pub telemetry: Telemetry,
}

impl HybridOutcome {
    /// Committed parallel dispatches per execution strategy, as
    /// `(strategy name, count)` — ready for bench annotations.
    pub fn strategy_counts(&self) -> [(&'static str, u64); 3] {
        self.telemetry.strategy_counts()
    }
}

/// Compiles-and-runs glue: executes a compiled program under the hybrid
/// dispatcher and returns the outcome together with the telemetry.
///
/// Parallel dispatch is transactional: a dispatch that fails at runtime
/// (conflict, panic, shape mismatch, timeout) re-executes sequentially
/// on the untouched master store, is counted under a reason-coded
/// fallback counter in [`Telemetry`], and quarantines the failing
/// schedule — it never surfaces as an error.
///
/// # Errors
///
/// Propagates genuine interpreter errors (out-of-bounds access, fuel
/// exhaustion, …), whether they occur sequentially or inside a parallel
/// worker.
pub fn run_hybrid(
    report: &CompilationReport,
    config: HybridConfig,
) -> Result<HybridOutcome, ExecError> {
    run_hybrid_seeded(report, config, &[])
}

/// [`run_hybrid`] with preset arrays installed before execution — the
/// entry point for generated sparse workloads, whose index and value
/// arrays are injected rather than initialized by interpreted loops.
/// Presets are pinned: the interpreter never re-materializes an
/// already-materialized array.
///
/// # Errors
///
/// Propagates genuine interpreter errors, exactly as [`run_hybrid`].
pub fn run_hybrid_seeded(
    report: &CompilationReport,
    config: HybridConfig,
    presets: &[(VarId, irr_exec::ArrayData)],
) -> Result<HybridOutcome, ExecError> {
    let mut dispatcher = HybridDispatcher::new(report, config);
    let mut interp = Interp::new(&report.program);
    for (var, data) in presets {
        interp.preset_array(*var, data.clone());
    }
    let outcome = interp.run_dispatched(&mut dispatcher)?;
    dispatcher.telemetry.cache_evictions = dispatcher.cache.evictions();
    Ok(HybridOutcome {
        outcome,
        telemetry: dispatcher.telemetry,
    })
}

/// Runs a compiled program under the hybrid dispatcher with an injected
/// fault schedule (chaos testing). Returns the outcome together with
/// the consumed [`FaultPlan`], whose [`fired`](FaultPlan::fired) record
/// says exactly which faults went live at which dispatch sites — the
/// chaos suite checks it against the telemetry's fallback counters.
///
/// # Errors
///
/// Propagates genuine interpreter errors, exactly as [`run_hybrid`]:
/// injected faults are recoverable by construction and never error.
pub fn run_hybrid_with_faults(
    report: &CompilationReport,
    config: HybridConfig,
    fault: FaultPlan,
) -> Result<(HybridOutcome, FaultPlan), ExecError> {
    let mut dispatcher = HybridDispatcher::new(report, config);
    dispatcher.set_fault_plan(fault);
    let outcome = Interp::new(&report.program).run_dispatched(&mut dispatcher)?;
    dispatcher.telemetry.cache_evictions = dispatcher.cache.evictions();
    let fault = dispatcher
        .take_fault_plan()
        .expect("fault plan attached above");
    Ok((
        HybridOutcome {
            outcome,
            telemetry: dispatcher.telemetry,
        },
        fault,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_driver::{compile_source, DriverOptions};

    /// `p(i) = mod(i*3, n) + 1` is a permutation of `1..=n` whenever
    /// `gcd(3, n) = 1` — true at run time for n = 8, but not provable by
    /// the compile-time injectivity checkers (which only recognize
    /// identity and gather shapes).
    const GUARDED_SRC: &str = "program t
         integer i, n, p(8)
         real z(8), x(8)
         n = 8
         do i = 1, n
           p(i) = mod(i * 3, n) + 1
           x(i) = i * 1.0
         enddo
         do 20 i = 1, n
           z(p(i)) = x(i) * 2.0
 20      continue
         print z(1), z(8)
         end";

    #[test]
    fn guarded_loop_parallelizes_at_runtime() {
        let rep = compile_source(GUARDED_SRC, DriverOptions::with_iaa()).unwrap();
        let v = rep.verdict("T/do20").expect("verdict for do20");
        assert!(!v.parallel, "solver must not prove mod-permutation: {v:?}");
        assert!(
            matches!(v.tier, DispatchTier::RuntimeGuarded(_)),
            "expected guarded tier: {v:?}"
        );
        let seq = Interp::new(&rep.program).run().unwrap();
        let hybrid = run_hybrid(&rep, HybridConfig::default()).unwrap();
        assert_eq!(hybrid.outcome.output, seq.output);
        assert_eq!(hybrid.telemetry.guarded_parallel, 1);
        assert_eq!(hybrid.telemetry.inspections_run, 1);
    }

    #[test]
    fn non_injective_index_falls_back_sequential() {
        // p(i) = mod(i, 4) + 1 collides for n = 8: inspection must fail
        // and the loop must still produce sequential semantics.
        let src = "program t
             integer i, n, p(8)
             real z(8), x(8)
             n = 8
             do i = 1, n
               p(i) = mod(i, 4) + 1
               x(i) = i * 1.0
             enddo
             do 20 i = 1, n
               z(p(i)) = x(i) * 2.0
 20          continue
             print z(1), z(4)
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let v = rep.verdict("T/do20").unwrap();
        assert!(matches!(v.tier, DispatchTier::RuntimeGuarded(_)), "{v:?}");
        let seq = Interp::new(&rep.program).run().unwrap();
        let hybrid = run_hybrid(&rep, HybridConfig::default()).unwrap();
        assert_eq!(hybrid.outcome.output, seq.output);
        assert_eq!(hybrid.telemetry.guarded_sequential, 1);
        assert_eq!(hybrid.telemetry.guarded_parallel, 0);
    }

    #[test]
    fn compile_time_parallel_skips_inspection() {
        let src = "program t
             integer i, n
             real x(100), y(100)
             n = 100
             do i = 1, n
               y(i) = 1.0
             enddo
             do i = 1, n
               x(i) = y(i) * 2.0
             enddo
             print x(1)
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let hybrid = run_hybrid(&rep, HybridConfig::default()).unwrap();
        assert!(hybrid.telemetry.compile_time_parallel >= 1);
        assert_eq!(hybrid.telemetry.inspections_run, 0);
        assert_eq!(hybrid.telemetry.guarded_dispatches(), 0);
    }

    /// The write-log executor aggregates worker costs and loop stats
    /// into the dispatching interpreter, so a hybrid run's statistics
    /// are identical to the sequential run's — parallel-dispatched
    /// loops no longer drop their workers' accounting.
    #[test]
    fn parallel_dispatch_aggregates_worker_stats() {
        let rep = compile_source(GUARDED_SRC, DriverOptions::with_iaa()).unwrap();
        let v = rep.verdict("T/do20").expect("verdict for do20");
        let seq = Interp::new(&rep.program).run().unwrap();
        let hybrid = run_hybrid(&rep, HybridConfig::default()).unwrap();
        assert_eq!(hybrid.telemetry.guarded_parallel, 1);
        let par_stats = &hybrid.outcome.stats.loops[&v.loop_stmt];
        let seq_stats = &seq.stats.loops[&v.loop_stmt];
        assert_eq!(par_stats.invocations, seq_stats.invocations);
        assert_eq!(par_stats.total_cost, seq_stats.total_cost);
        assert_eq!(hybrid.outcome.stats.total_cost, seq.stats.total_cost);
    }

    #[test]
    fn compile_time_loops_commit_in_place() {
        let src = "program t
             integer i, n
             real x(100), y(100)
             n = 100
             do i = 1, n
               y(i) = 1.0
             enddo
             do i = 1, n
               x(i) = y(i) * 2.0
             enddo
             print x(1)
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let seq = Interp::new(&rep.program).run().unwrap();
        let hybrid = run_hybrid(&rep, HybridConfig::default()).unwrap();
        assert_eq!(hybrid.outcome.output, seq.output);
        // Both loops are proven disjoint-affine: the whole run commits
        // without a single write-log merge.
        assert_eq!(
            hybrid.telemetry.strategy_in_place, 2,
            "{:?}",
            hybrid.telemetry
        );
        assert_eq!(hybrid.telemetry.strategy_write_log, 0);
        assert_eq!(hybrid.telemetry.fallbacks(), 0);
        // Disabling strategies reverts every dispatch to the write-log
        // with an identical result.
        let off = run_hybrid(
            &rep,
            HybridConfig {
                enable_strategies: false,
                ..HybridConfig::default()
            },
        )
        .unwrap();
        assert_eq!(off.outcome.output, seq.output);
        assert_eq!(off.telemetry.strategy_in_place, 0);
        assert_eq!(off.telemetry.strategy_write_log, 2);
    }

    #[test]
    fn sequential_gather_promotes_to_concat() {
        // A FIG1B-style gather: the pointer dependence proves the loop
        // sequential, but the consecutive-append facts promote it to a
        // privatize-and-concat parallel dispatch.
        let src = "program t
             integer i, q, x(64), ind(64)
             do i = 1, 64
               x(i) = mod(i, 3)
             enddo
             do i = 1, 64
               if (x(i) > 0) then
                 q = q + 1
                 ind(q) = i
               endif
             enddo
             print ind(1), q
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let seq = Interp::new(&rep.program).run().unwrap();
        let hybrid = run_hybrid(&rep, HybridConfig::default()).unwrap();
        assert_eq!(hybrid.outcome.output, seq.output);
        assert!(
            hybrid.telemetry.concat_parallel >= 1,
            "{:?}",
            hybrid.telemetry
        );
        assert!(hybrid.telemetry.strategy_concat >= 1);
        assert_eq!(hybrid.telemetry.fallbacks(), 0);
        let q = rep.program.symbols.lookup("q").unwrap();
        let ind = rep.program.symbols.lookup("ind").unwrap();
        assert_eq!(hybrid.outcome.store.scalar(q), seq.store.scalar(q));
        assert_eq!(
            hybrid.outcome.store.array_as_reals(ind),
            seq.store.array_as_reals(ind)
        );
        // With strategies off the loop stays sequential, as the tier
        // says.
        let off = run_hybrid(
            &rep,
            HybridConfig {
                enable_strategies: false,
                ..HybridConfig::default()
            },
        )
        .unwrap();
        assert_eq!(off.outcome.output, seq.output);
        assert_eq!(off.telemetry.concat_parallel, 0);
        assert_eq!(off.telemetry.strategy_concat, 0);
    }

    #[test]
    fn sequential_tier_leaf_loops_run_on_the_compiled_tier() {
        // A scalar-dependence loop: proven sequential, leaf nest,
        // lowerable — the canonical compiled-tier customer.
        let src = "program t
             integer i, n
             real s, x(100)
             n = 100
             s = 0
             do i = 1, n
               x(i) = s
               s = s * 2 + 1
             enddo
             print x(3)
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let v = &rep.verdicts[0];
        assert!(matches!(v.tier, DispatchTier::Sequential), "{v:?}");
        assert!(v.compiled.is_some(), "{v:?}");
        let seq = Interp::new(&rep.program).run().unwrap();
        let hybrid = run_hybrid(&rep, HybridConfig::default()).unwrap();
        assert_eq!(hybrid.outcome.output, seq.output);
        assert_eq!(hybrid.outcome.stats.total_cost, seq.stats.total_cost);
        let t = &hybrid.telemetry;
        assert_eq!(t.compiled_loops, 1, "{t:?}");
        assert_eq!(t.compiled_fallbacks(), 0, "{t:?}");
        // The decision is still a proven-sequential dispatch.
        assert_eq!(t.sequential_proven, 1, "{t:?}");
        // A/B switch: same semantics, zero compiled dispatches.
        let off = run_hybrid(
            &rep,
            HybridConfig {
                enable_compiled: false,
                ..HybridConfig::default()
            },
        )
        .unwrap();
        assert_eq!(off.outcome.output, seq.output);
        assert_eq!(off.outcome.stats.total_cost, seq.stats.total_cost);
        assert_eq!(off.telemetry.compiled_loops, 0);
        assert_eq!(off.telemetry.sequential_proven, 1);
    }

    #[test]
    fn sequential_nests_with_inner_do_loops_stay_on_the_tree_walk() {
        // The inner do must keep consulting the dispatcher, so the
        // outer sequential loop is not a compiled-tier leaf.
        let src = "program t
             integer i, j, n
             real s, x(10)
             n = 10
             s = 0
             do i = 1, n
               s = s + 1
               do j = 1, n
                 x(j) = x(j) + s
               enddo
               s = s * 2
             enddo
             print x(1), s
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let outer = &rep.verdicts[0];
        assert!(matches!(outer.tier, DispatchTier::Sequential), "{outer:?}");
        let seq = Interp::new(&rep.program).run().unwrap();
        let hybrid = run_hybrid(&rep, HybridConfig::default()).unwrap();
        assert_eq!(hybrid.outcome.output, seq.output);
        assert_eq!(hybrid.telemetry.compiled_loops, 0, "{:?}", hybrid.telemetry);
    }

    #[test]
    fn disabling_cache_reinspects_every_entry() {
        let src = "program t
             integer i, r, n, p(8)
             real z(8), x(8)
             n = 8
             do i = 1, n
               p(i) = mod(i * 3, n) + 1
               x(i) = i * 1.0
             enddo
             do r = 1, 3
               do 20 i = 1, n
                 z(p(i)) = x(i) + r
 20            continue
             enddo
             print z(1)
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let cached = run_hybrid(&rep, HybridConfig::default()).unwrap();
        assert_eq!(
            cached.telemetry.inspections_run, 1,
            "{:?}",
            cached.telemetry
        );
        assert_eq!(cached.telemetry.cache_hits, 2);
        let uncached = run_hybrid(
            &rep,
            HybridConfig {
                cache_schedules: false,
                ..HybridConfig::default()
            },
        )
        .unwrap();
        assert_eq!(uncached.telemetry.inspections_run, 3);
        assert_eq!(uncached.telemetry.cache_hits, 0);
    }

    #[test]
    fn mutating_a_preset_index_array_forces_reinspection() {
        // Stale-schedule soundness: `p` arrives as a *preset* (no
        // in-program producer), passes injectivity on the first guarded
        // entry, then the program corrupts one element. The second
        // entry must see a stale cache key (the preset array's write
        // version moved), re-inspect, and fall back sequential — a
        // cache hit here would dispatch parallel on a duplicate target.
        let src = "program t
             integer i, r, n, p(8)
             real z(8), x(8)
             n = 8
             do i = 1, n
               x(i) = i * 1.0
             enddo
             do r = 1, 2
               do 20 i = 1, n
                 z(p(i)) = x(i) + r
 20            continue
               p(2) = p(1)
             enddo
             print z(1), z(8)
             end";
        let rep = compile_source(src, DriverOptions::with_iaa()).unwrap();
        let v = rep.verdict("T/do20").unwrap();
        assert!(matches!(v.tier, DispatchTier::RuntimeGuarded(_)), "{v:?}");
        let p_var = rep.program.symbols.lookup("p").unwrap();
        let perm: Vec<i64> = (1..=8).rev().collect();
        let presets = [(
            p_var,
            irr_exec::ArrayData::Int {
                data: perm,
                dims: vec![8],
            },
        )];
        let hybrid = run_hybrid_seeded(&rep, HybridConfig::default(), &presets).unwrap();
        let t = &hybrid.telemetry;
        assert_eq!(t.guarded_parallel, 1, "{t:?}");
        assert_eq!(t.guarded_sequential, 1, "{t:?}");
        assert_eq!(t.inspections_run, 2, "{t:?}");
        assert_eq!(t.cache_invalidations, 1, "{t:?}");
        assert_eq!(t.cache_hits, 0, "{t:?}");
        let mut seq = Interp::new(&rep.program);
        for (var, data) in &presets {
            seq.preset_array(*var, data.clone());
        }
        let seq = seq.run().unwrap();
        assert_eq!(hybrid.outcome.output, seq.output);
    }
}
