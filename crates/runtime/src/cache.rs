//! The versioned schedule cache.
//!
//! A guarded loop's inspection result is a function of (a) the values of
//! the index arrays the guard reads and (b) the loop's evaluated bounds.
//! The interpreter's [`Store`](irr_exec::Store) bumps a per-array write
//! version on every mutation, so "(a) unchanged" reduces to comparing a
//! few `u64`s instead of re-scanning the arrays. The cache therefore
//! turns the paper's per-execution `O(section)` inspector cost into
//! `O(section)`-per-*mutation*: re-entering an unmutated loop costs a
//! handful of integer compares.

use irr_frontend::{StmtId, VarId};
use std::collections::HashMap;

/// What must be unchanged for a cached schedule to be reusable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScheduleKey {
    /// The loop's evaluated `(lo, hi)` bounds at inspection time.
    pub bounds: (i64, i64),
    /// Write-version of every array the guard's inspectors read,
    /// in a canonical (sorted, deduplicated) order.
    pub versions: Vec<(VarId, u64)>,
}

impl ScheduleKey {
    /// Builds a key, canonicalizing the version list.
    pub fn new(bounds: (i64, i64), mut versions: Vec<(VarId, u64)>) -> ScheduleKey {
        versions.sort_unstable_by_key(|(v, _)| *v);
        versions.dedup();
        ScheduleKey { bounds, versions }
    }
}

/// Outcome of a cache probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheProbe {
    /// A schedule for this loop exists and its key matches: reuse the
    /// stored verdict.
    Hit(bool),
    /// A schedule exists but an index array was written (or the bounds
    /// changed) since it was inspected.
    Stale,
    /// No schedule cached for this loop yet.
    Miss,
}

/// Per-loop cache of inspection verdicts keyed by store versions.
#[derive(Clone, Debug, Default)]
pub struct ScheduleCache {
    entries: HashMap<StmtId, (ScheduleKey, bool)>,
}

impl ScheduleCache {
    /// An empty cache.
    pub fn new() -> ScheduleCache {
        ScheduleCache::default()
    }

    /// Probes for a reusable schedule for `loop_stmt` under `key`.
    pub fn probe(&self, loop_stmt: StmtId, key: &ScheduleKey) -> CacheProbe {
        match self.entries.get(&loop_stmt) {
            None => CacheProbe::Miss,
            Some((cached, verdict)) if cached == key => CacheProbe::Hit(*verdict),
            Some(_) => CacheProbe::Stale,
        }
    }

    /// Stores (or replaces) the schedule for `loop_stmt`.
    pub fn insert(&mut self, loop_stmt: StmtId, key: ScheduleKey, parallel_ok: bool) {
        self.entries.insert(loop_stmt, (key, parallel_ok));
    }

    /// Number of loops with a cached schedule.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_distinguishes_hit_stale_miss() {
        let mut c = ScheduleCache::new();
        let s = StmtId(7);
        let k1 = ScheduleKey::new((1, 8), vec![(VarId(2), 3)]);
        assert_eq!(c.probe(s, &k1), CacheProbe::Miss);
        c.insert(s, k1.clone(), true);
        assert_eq!(c.probe(s, &k1), CacheProbe::Hit(true));
        // Same arrays, newer version: stale.
        let k2 = ScheduleKey::new((1, 8), vec![(VarId(2), 4)]);
        assert_eq!(c.probe(s, &k2), CacheProbe::Stale);
        // Same versions, different bounds: also stale.
        let k3 = ScheduleKey::new((1, 9), vec![(VarId(2), 3)]);
        assert_eq!(c.probe(s, &k3), CacheProbe::Stale);
    }

    #[test]
    fn key_canonicalizes_version_order() {
        let a = ScheduleKey::new((1, 4), vec![(VarId(5), 1), (VarId(2), 9)]);
        let b = ScheduleKey::new((1, 4), vec![(VarId(2), 9), (VarId(5), 1)]);
        assert_eq!(a, b);
    }
}
