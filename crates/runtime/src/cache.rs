//! The versioned schedule cache, with quarantine.
//!
//! A guarded loop's inspection result is a function of (a) the values of
//! the index arrays the guard reads and (b) the loop's evaluated bounds.
//! The interpreter's [`Store`](irr_exec::Store) bumps a per-array write
//! version on every mutation, so "(a) unchanged" reduces to comparing a
//! few `u64`s instead of re-scanning the arrays. The cache therefore
//! turns the paper's per-execution `O(section)` inspector cost into
//! `O(section)`-per-*mutation*: re-entering an unmutated loop costs a
//! handful of integer compares.
//!
//! Each loop keeps a small **set** of keyed schedules (not a single
//! slot), so a loop whose bounds alternate between a few shapes — the
//! inner loops of TRFD's triangular sweeps, or a solver that ping-pongs
//! between two partitions — does not re-inspect on every entry. The
//! per-loop set and the whole cache are capacity-bounded with LRU
//! eviction, so a pathological program cannot grow the cache without
//! bound.
//!
//! **Quarantine.** A schedule that *failed at runtime* (write conflict,
//! worker panic, timeout — see
//! [`FallbackReason`](irr_exec::FallbackReason)) is poisoned: the
//! `(loop, key)` pair is pinned sequential for a configurable number of
//! subsequent entries (the retry budget), so one bad schedule cannot
//! repeatedly pay parallel setup plus conflict-detection cost. When the
//! budget is exhausted the entry is dropped entirely and the next entry
//! re-inspects from scratch.

use irr_frontend::{StmtId, VarId};
use std::collections::HashMap;

/// What must be unchanged for a cached schedule to be reusable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScheduleKey {
    /// The loop's evaluated `(lo, hi)` bounds at inspection time.
    pub bounds: (i64, i64),
    /// Write-version of every array the guard's inspectors read,
    /// in a canonical (sorted, deduplicated) order.
    pub versions: Vec<(VarId, u64)>,
}

impl ScheduleKey {
    /// Builds a key, canonicalizing the version list.
    pub fn new(bounds: (i64, i64), mut versions: Vec<(VarId, u64)>) -> ScheduleKey {
        versions.sort_unstable_by_key(|(v, _)| *v);
        versions.dedup();
        ScheduleKey { bounds, versions }
    }
}

/// Outcome of a cache probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheProbe {
    /// A schedule for this loop exists and its key matches: reuse the
    /// stored verdict.
    Hit(bool),
    /// Schedules exist for this loop but none match the key — an index
    /// array was written (or the bounds changed) since inspection.
    Stale,
    /// No schedule cached for this loop yet.
    Miss,
}

/// One cached schedule: a key, its verdict, and quarantine state.
#[derive(Clone, Debug)]
struct Slot {
    key: ScheduleKey,
    parallel_ok: bool,
    /// Remaining entries this schedule is pinned sequential for; 0
    /// means not quarantined.
    quarantined: u32,
    /// LRU tick of the last probe hit / insert / quarantine touch.
    last_used: u64,
}

/// Per-loop cache of inspection verdicts keyed by store versions, with
/// capacity bounds and failure quarantine.
#[derive(Clone, Debug)]
pub struct ScheduleCache {
    entries: HashMap<StmtId, Vec<Slot>>,
    /// Maximum keyed schedules per loop.
    keys_per_loop: usize,
    /// Maximum keyed schedules across all loops.
    capacity: usize,
    tick: u64,
    evictions: u64,
}

impl Default for ScheduleCache {
    fn default() -> Self {
        ScheduleCache::with_limits(128, 4)
    }
}

impl ScheduleCache {
    /// An empty cache with the default limits.
    pub fn new() -> ScheduleCache {
        ScheduleCache::default()
    }

    /// An empty cache holding at most `capacity` schedules in total and
    /// `keys_per_loop` per loop (both clamped to at least 1).
    pub fn with_limits(capacity: usize, keys_per_loop: usize) -> ScheduleCache {
        ScheduleCache {
            entries: HashMap::new(),
            keys_per_loop: keys_per_loop.max(1),
            capacity: capacity.max(1),
            tick: 0,
            evictions: 0,
        }
    }

    /// Probes for a reusable schedule for `loop_stmt` under `key`.
    /// A hit refreshes the slot's LRU position.
    pub fn probe(&mut self, loop_stmt: StmtId, key: &ScheduleKey) -> CacheProbe {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&loop_stmt) {
            None => CacheProbe::Miss,
            Some(slots) => match slots.iter_mut().find(|s| s.key == *key) {
                Some(slot) => {
                    slot.last_used = tick;
                    CacheProbe::Hit(slot.parallel_ok)
                }
                None => CacheProbe::Stale,
            },
        }
    }

    /// Stores (or refreshes) the schedule for `(loop_stmt, key)`,
    /// evicting the least-recently-used schedule when the per-loop or
    /// global bound is exceeded.
    pub fn insert(&mut self, loop_stmt: StmtId, key: ScheduleKey, parallel_ok: bool) {
        self.tick += 1;
        let tick = self.tick;
        let slots = self.entries.entry(loop_stmt).or_default();
        if let Some(slot) = slots.iter_mut().find(|s| s.key == key) {
            slot.parallel_ok = parallel_ok;
            slot.quarantined = 0;
            slot.last_used = tick;
            return;
        }
        slots.push(Slot {
            key,
            parallel_ok,
            quarantined: 0,
            last_used: tick,
        });
        if slots.len() > self.keys_per_loop {
            evict_lru(slots);
            self.evictions += 1;
        }
        if self.len() > self.capacity {
            self.evict_global_lru();
            self.evictions += 1;
        }
    }

    /// Pins `(loop_stmt, key)` sequential for the next `budget` entries
    /// after a runtime failure. A zero budget drops any cached verdict
    /// for the key immediately (retry on next entry).
    pub fn poison(&mut self, loop_stmt: StmtId, key: ScheduleKey, budget: u32) {
        self.tick += 1;
        let tick = self.tick;
        let slots = self.entries.entry(loop_stmt).or_default();
        if let Some(pos) = slots.iter().position(|s| s.key == key) {
            if budget == 0 {
                slots.remove(pos);
                if slots.is_empty() {
                    self.entries.remove(&loop_stmt);
                }
                return;
            }
            let slot = &mut slots[pos];
            slot.parallel_ok = false;
            slot.quarantined = budget;
            slot.last_used = tick;
            return;
        }
        if budget == 0 {
            if slots.is_empty() {
                self.entries.remove(&loop_stmt);
            }
            return;
        }
        slots.push(Slot {
            key,
            parallel_ok: false,
            quarantined: budget,
            last_used: tick,
        });
        if slots.len() > self.keys_per_loop {
            evict_lru(slots);
            self.evictions += 1;
        }
        if self.len() > self.capacity {
            self.evict_global_lru();
            self.evictions += 1;
        }
    }

    /// If `(loop_stmt, key)` is quarantined, consumes one unit of its
    /// retry budget and returns `true` (the caller must dispatch
    /// sequentially). The entry is dropped when the budget reaches
    /// zero, so the dispatch after the quarantine window re-inspects
    /// from scratch.
    pub fn consume_quarantine(&mut self, loop_stmt: StmtId, key: &ScheduleKey) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let Some(slots) = self.entries.get_mut(&loop_stmt) else {
            return false;
        };
        let Some(pos) = slots
            .iter()
            .position(|s| s.key == *key && s.quarantined > 0)
        else {
            return false;
        };
        let slot = &mut slots[pos];
        slot.quarantined -= 1;
        slot.last_used = tick;
        if slot.quarantined == 0 {
            slots.remove(pos);
            if slots.is_empty() {
                self.entries.remove(&loop_stmt);
            }
        }
        true
    }

    /// Total number of cached schedules, over all loops.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Schedules evicted by the capacity bounds so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn evict_global_lru(&mut self) {
        let Some((&stmt, _)) = self
            .entries
            .iter()
            .filter(|(_, slots)| !slots.is_empty())
            .min_by_key(|(_, slots)| slots.iter().map(|s| s.last_used).min().unwrap_or(u64::MAX))
        else {
            return;
        };
        let slots = self.entries.get_mut(&stmt).expect("chosen loop exists");
        evict_lru(slots);
        if slots.is_empty() {
            self.entries.remove(&stmt);
        }
    }
}

/// Removes the least-recently-used slot from one loop's set.
fn evict_lru(slots: &mut Vec<Slot>) {
    if let Some(pos) = slots
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.last_used)
        .map(|(i, _)| i)
    {
        slots.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_distinguishes_hit_stale_miss() {
        let mut c = ScheduleCache::new();
        let s = StmtId(7);
        let k1 = ScheduleKey::new((1, 8), vec![(VarId(2), 3)]);
        assert_eq!(c.probe(s, &k1), CacheProbe::Miss);
        c.insert(s, k1.clone(), true);
        assert_eq!(c.probe(s, &k1), CacheProbe::Hit(true));
        // Same arrays, newer version: stale.
        let k2 = ScheduleKey::new((1, 8), vec![(VarId(2), 4)]);
        assert_eq!(c.probe(s, &k2), CacheProbe::Stale);
        // Same versions, different bounds: also stale.
        let k3 = ScheduleKey::new((1, 9), vec![(VarId(2), 3)]);
        assert_eq!(c.probe(s, &k3), CacheProbe::Stale);
    }

    #[test]
    fn key_canonicalizes_version_order() {
        let a = ScheduleKey::new((1, 4), vec![(VarId(5), 1), (VarId(2), 9)]);
        let b = ScheduleKey::new((1, 4), vec![(VarId(2), 9), (VarId(5), 1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn per_loop_set_survives_alternating_bounds() {
        let mut c = ScheduleCache::new();
        let s = StmtId(3);
        let ka = ScheduleKey::new((1, 8), vec![(VarId(1), 1)]);
        let kb = ScheduleKey::new((1, 16), vec![(VarId(1), 1)]);
        c.insert(s, ka.clone(), true);
        c.insert(s, kb.clone(), false);
        // Both keys answer without re-inspection, in either order.
        assert_eq!(c.probe(s, &ka), CacheProbe::Hit(true));
        assert_eq!(c.probe(s, &kb), CacheProbe::Hit(false));
        assert_eq!(c.probe(s, &ka), CacheProbe::Hit(true));
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn per_loop_limit_evicts_lru_key() {
        let mut c = ScheduleCache::with_limits(64, 2);
        let s = StmtId(3);
        let keys: Vec<ScheduleKey> = (0..3)
            .map(|i| ScheduleKey::new((1, i), vec![(VarId(1), 1)]))
            .collect();
        c.insert(s, keys[0].clone(), true);
        c.insert(s, keys[1].clone(), true);
        let _ = c.probe(s, &keys[0]); // refresh key 0; key 1 is now LRU
        c.insert(s, keys[2].clone(), true);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.probe(s, &keys[0]), CacheProbe::Hit(true));
        assert_eq!(c.probe(s, &keys[1]), CacheProbe::Stale, "LRU key evicted");
        assert_eq!(c.probe(s, &keys[2]), CacheProbe::Hit(true));
    }

    #[test]
    fn global_capacity_bound_evicts_coldest_loop() {
        let mut c = ScheduleCache::with_limits(2, 4);
        let k = |n| ScheduleKey::new((1, n), vec![(VarId(1), 1)]);
        c.insert(StmtId(1), k(1), true);
        c.insert(StmtId(2), k(2), true);
        assert_eq!(c.len(), 2);
        c.insert(StmtId(3), k(3), true);
        assert_eq!(c.len(), 2, "capacity bound holds");
        assert_eq!(c.evictions(), 1);
        assert_eq!(
            c.probe(StmtId(1), &k(1)),
            CacheProbe::Miss,
            "coldest loop evicted"
        );
        assert_eq!(c.probe(StmtId(3), &k(3)), CacheProbe::Hit(true));
    }

    #[test]
    fn quarantine_pins_then_expires() {
        let mut c = ScheduleCache::new();
        let s = StmtId(5);
        let k = ScheduleKey::new((1, 8), vec![(VarId(2), 3)]);
        c.insert(s, k.clone(), true);
        c.poison(s, k.clone(), 2);
        // Pinned for exactly the budget...
        assert!(c.consume_quarantine(s, &k));
        assert!(c.consume_quarantine(s, &k));
        // ...then dropped entirely: the next entry re-inspects.
        assert!(!c.consume_quarantine(s, &k));
        assert_eq!(c.probe(s, &k), CacheProbe::Miss);
    }

    #[test]
    fn poison_without_prior_entry_still_quarantines() {
        let mut c = ScheduleCache::new();
        let s = StmtId(5);
        let k = ScheduleKey::new((1, 8), vec![]);
        c.poison(s, k.clone(), 1);
        assert!(c.consume_quarantine(s, &k));
        assert!(!c.consume_quarantine(s, &k));
    }

    #[test]
    fn quarantine_is_key_specific() {
        let mut c = ScheduleCache::new();
        let s = StmtId(5);
        let bad = ScheduleKey::new((1, 8), vec![(VarId(2), 3)]);
        let good = ScheduleKey::new((1, 8), vec![(VarId(2), 4)]);
        c.insert(s, good.clone(), true);
        c.poison(s, bad, 3);
        assert!(!c.consume_quarantine(s, &good), "other keys unaffected");
        assert_eq!(c.probe(s, &good), CacheProbe::Hit(true));
    }
}
