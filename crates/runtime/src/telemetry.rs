//! Counters describing what the hybrid runtime actually did: how often
//! inspectors ran, how often the versioned schedule cache saved a
//! re-inspection, and which tier every dynamic loop entry dispatched
//! through. The `runtime-vs-compile-time` bench group and the
//! `hybrid_fallback` example read these to quantify the §1 trade-off.

/// Counters accumulated over one hybrid execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Telemetry {
    /// Inspector executions: one per residual check actually evaluated
    /// against the live store (cache hits do not inspect).
    pub inspections_run: u64,
    /// Guarded loop entries answered from the schedule cache without
    /// re-inspection.
    pub cache_hits: u64,
    /// Cached schedules discarded because an index array's version (or
    /// the loop's bounds) changed since the inspection.
    pub cache_invalidations: u64,
    /// Loop entries dispatched parallel on compile-time evidence alone.
    pub compile_time_parallel: u64,
    /// Guarded loop entries whose inspection (or cached verdict) cleared
    /// parallel execution.
    pub guarded_parallel: u64,
    /// Guarded loop entries whose inspection (or cached verdict) forced
    /// the sequential fallback.
    pub guarded_sequential: u64,
    /// Loop entries dispatched sequential without any guard (proven
    /// sequential, unknown loop, or non-unit step).
    pub sequential: u64,
    /// Dynamic loop executions analyzed under shadow-memory tracing by
    /// the dependence sanitizer.
    pub traced_executions: u64,
    /// Loop verdicts cross-checked against observed dependences.
    pub verdicts_audited: u64,
    /// Verdicts contradicted by an observed loop-carried dependence
    /// (parallel claim with an unexplained dependence).
    pub audit_violations: u64,
    /// Sequential verdicts that never exhibited a dependence on any
    /// audited input (possible precision loss, not an error).
    pub audit_precision_gaps: u64,
}

impl Telemetry {
    /// Total loop entries dispatched parallel.
    pub fn parallel_dispatches(&self) -> u64 {
        self.compile_time_parallel + self.guarded_parallel
    }

    /// Total loop entries dispatched sequential.
    pub fn sequential_dispatches(&self) -> u64 {
        self.guarded_sequential + self.sequential
    }

    /// Total guarded loop entries (inspected or cache-answered).
    pub fn guarded_dispatches(&self) -> u64 {
        self.guarded_parallel + self.guarded_sequential
    }

    /// Total sanitizer findings (violations plus precision gaps).
    pub fn audit_findings(&self) -> u64 {
        self.audit_violations + self.audit_precision_gaps
    }
}
