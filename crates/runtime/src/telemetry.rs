//! Counters describing what the hybrid runtime actually did: how often
//! inspectors ran, how often the versioned schedule cache saved a
//! re-inspection, which tier every dynamic loop entry dispatched
//! through, and — since the dispatch became transactional — why any
//! parallel attempt was abandoned for sequential re-execution. The
//! `runtime-vs-compile-time` bench group, the `hybrid_fallback`
//! example, and the chaos suite read these to quantify the §1
//! trade-off and to attribute every injected fault.

use irr_exec::FallbackReason;

/// Counters accumulated over one hybrid execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Telemetry {
    /// Inspector executions: one per residual check actually evaluated
    /// against the live store (cache hits do not inspect).
    pub inspections_run: u64,
    /// Guarded loop entries answered from the schedule cache without
    /// re-inspection.
    pub cache_hits: u64,
    /// Cached schedules discarded because an index array's version (or
    /// the loop's bounds) changed since the inspection.
    pub cache_invalidations: u64,
    /// Cached schedules evicted by the cache's capacity bound (global
    /// LRU) or the per-loop key limit.
    pub cache_evictions: u64,
    /// Loop entries dispatched parallel on compile-time evidence alone.
    pub compile_time_parallel: u64,
    /// Compile-time-parallel loop entries that owe their tier to the
    /// value-evolution analysis (the verdict retired at least one
    /// residual check a pre-evolution compiler would have inspected).
    pub promoted_by_evolution: u64,
    /// Runtime inspections *not* run because value evolution discharged
    /// the residual check at compile time: one per retired check per
    /// dynamic loop entry — directly comparable to `inspections_run`.
    pub inspections_retired: u64,
    /// The subset of `promoted_by_evolution` entries whose discharging
    /// fact crossed a `call` via the interprocedural summaries: the
    /// promotions only summary-based propagation can deliver.
    pub promoted_interproc: u64,
    /// Guarded loop entries whose inspection (or cached verdict) cleared
    /// parallel execution.
    pub guarded_parallel: u64,
    /// Guarded loop entries whose inspection (or cached verdict) forced
    /// the sequential fallback.
    pub guarded_sequential: u64,
    /// Loop entries dispatched sequential because the driver proved the
    /// loop sequential at compile time.
    pub sequential_proven: u64,
    /// Sequential-tier loop entries *promoted* to parallel dispatch by
    /// the privatize-and-concat strategy (the loop carries a pointer
    /// dependence, but its appends concatenate).
    pub concat_parallel: u64,
    /// Committed parallel dispatches whose results reached the master
    /// through the transactional write-log merge (including silent
    /// strategy downgrades).
    pub strategy_write_log: u64,
    /// Committed parallel dispatches that wrote the master buffers in
    /// place under a re-proven disjointness fact — no clone, no log,
    /// no merge.
    pub strategy_in_place: u64,
    /// Committed parallel dispatches that concatenated per-worker
    /// append buffers positionally.
    pub strategy_concat: u64,
    /// Loop entries dispatched sequential because the loop is unknown
    /// to the driver's verdict table.
    pub sequential_unknown_loop: u64,
    /// Loop entries dispatched sequential because of a non-unit step,
    /// which the chunked executor does not support.
    pub sequential_non_unit_step: u64,
    /// Loop entries pinned sequential by schedule quarantine (a prior
    /// runtime failure of the same `(loop, key)` schedule).
    pub quarantined: u64,
    /// Schedules poisoned after a runtime failure (one per fallback
    /// that had a cacheable schedule key to blame).
    pub quarantine_poisonings: u64,
    /// Parallel dispatches abandoned for a write-write conflict found
    /// at merge time; the loop re-executed sequentially.
    pub fallback_conflict: u64,
    /// Parallel dispatches abandoned because a worker panicked.
    pub fallback_panic: u64,
    /// Parallel dispatches abandoned for an array shape disagreement.
    pub fallback_shape: u64,
    /// Parallel dispatches abandoned because the executor cannot run
    /// the loop's shape (non-unit step, not a `do` loop).
    pub fallback_unsupported: u64,
    /// Parallel dispatches abandoned because a worker overran the
    /// per-worker deadline (watchdog).
    pub fallback_timeout: u64,
    /// Parallel dispatches abandoned because an execution strategy's
    /// dynamic self-check failed (in-place write outside its proven
    /// window, broken append discipline).
    pub fallback_strategy: u64,
    /// Sequential-tier loop entries executed on the compiled (bytecode)
    /// tier instead of the tree-walk. Always also counted under
    /// `sequential_proven`: the compiled tier changes the engine, not
    /// the dispatch decision.
    pub compiled_loops: u64,
    /// Parallel dispatches whose plan requested bytecode workers (the
    /// compiled tier inside the parallel path). A request, not a
    /// promise — the master re-lowers before spawning and workers
    /// silently tree-walk when that fails.
    pub compiled_worker_dispatches: u64,
    /// Compiled-tier dispatches that fell back to the tree-walk because
    /// the executor's own re-lowering rejected the nest (the verdict's
    /// advisory plan diverged from the authoritative lowering).
    pub compiled_fallback_unsupported: u64,
    /// Compiled-tier dispatches that fell back because instrumentation
    /// (access tracing or per-loop recording) was attached — the
    /// bytecode path carries no tracer hooks.
    pub compiled_fallback_traced: u64,
    /// Dynamic loop executions analyzed under shadow-memory tracing by
    /// the dependence sanitizer.
    pub traced_executions: u64,
    /// Loop verdicts cross-checked against observed dependences.
    pub verdicts_audited: u64,
    /// Verdicts contradicted by an observed loop-carried dependence
    /// (parallel claim with an unexplained dependence).
    pub audit_violations: u64,
    /// Sequential verdicts that never exhibited a dependence on any
    /// audited input (possible precision loss, not an error).
    pub audit_precision_gaps: u64,
}

impl Telemetry {
    /// Total loop entries dispatched parallel.
    pub fn parallel_dispatches(&self) -> u64 {
        self.compile_time_parallel + self.guarded_parallel + self.concat_parallel
    }

    /// Committed parallel dispatches per execution strategy, as
    /// `(strategy name, count)` — the names match
    /// [`irr_exec::ExecutionStrategy::name`].
    pub fn strategy_counts(&self) -> [(&'static str, u64); 3] {
        [
            ("write-log", self.strategy_write_log),
            ("in-place-disjoint", self.strategy_in_place),
            ("privatize-concat", self.strategy_concat),
        ]
    }

    /// Total loop entries dispatched sequential (for any reason,
    /// including quarantine pins; fallbacks re-execute a *parallel*
    /// dispatch and are counted separately).
    pub fn sequential_dispatches(&self) -> u64 {
        self.guarded_sequential + self.sequential_unguarded() + self.quarantined
    }

    /// Loop entries dispatched sequential without any guard: proven
    /// sequential, unknown loop, or non-unit step.
    pub fn sequential_unguarded(&self) -> u64 {
        self.sequential_proven + self.sequential_unknown_loop + self.sequential_non_unit_step
    }

    /// Total guarded loop entries (inspected or cache-answered).
    pub fn guarded_dispatches(&self) -> u64 {
        self.guarded_parallel + self.guarded_sequential
    }

    /// Total parallel dispatches abandoned at runtime and re-executed
    /// sequentially, over all reason codes.
    pub fn fallbacks(&self) -> u64 {
        self.fallback_conflict
            + self.fallback_panic
            + self.fallback_shape
            + self.fallback_unsupported
            + self.fallback_timeout
            + self.fallback_strategy
    }

    /// Records one abandoned parallel dispatch under its reason code.
    pub fn record_fallback(&mut self, reason: FallbackReason) {
        match reason {
            FallbackReason::Conflict => self.fallback_conflict += 1,
            FallbackReason::Panic => self.fallback_panic += 1,
            FallbackReason::Shape => self.fallback_shape += 1,
            FallbackReason::Unsupported => self.fallback_unsupported += 1,
            FallbackReason::Timeout => self.fallback_timeout += 1,
            FallbackReason::Strategy => self.fallback_strategy += 1,
            // A traced fallback is a compiled-tier reason; route it to
            // that family even if it arrives through this entry point.
            FallbackReason::Traced => self.compiled_fallback_traced += 1,
        }
    }

    /// Records one compiled-tier dispatch that fell back to the
    /// tree-walk, under its reason code.
    pub fn record_compiled_fallback(&mut self, reason: FallbackReason) {
        match reason {
            FallbackReason::Traced => self.compiled_fallback_traced += 1,
            _ => self.compiled_fallback_unsupported += 1,
        }
    }

    /// Total compiled-tier dispatches that fell back to the tree-walk,
    /// over all reason codes.
    pub fn compiled_fallbacks(&self) -> u64 {
        self.compiled_fallback_unsupported + self.compiled_fallback_traced
    }

    /// The fallback counter for one reason code.
    pub fn fallback_count(&self, reason: FallbackReason) -> u64 {
        match reason {
            FallbackReason::Conflict => self.fallback_conflict,
            FallbackReason::Panic => self.fallback_panic,
            FallbackReason::Shape => self.fallback_shape,
            FallbackReason::Unsupported => self.fallback_unsupported,
            FallbackReason::Timeout => self.fallback_timeout,
            FallbackReason::Strategy => self.fallback_strategy,
            FallbackReason::Traced => self.compiled_fallback_traced,
        }
    }

    /// Total sanitizer findings (violations plus precision gaps).
    pub fn audit_findings(&self) -> u64 {
        self.audit_violations + self.audit_precision_gaps
    }
}
