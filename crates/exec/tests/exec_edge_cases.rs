//! Interpreter and machine-model edge cases beyond the unit tests.

use irr_exec::{simulate_speedup, Interp, LoopProfile, MachineModel, ProgramProfile, SplitMix64};
use irr_frontend::parse_program;
use std::collections::HashMap;

fn run(src: &str) -> irr_exec::ExecOutcome {
    let p = parse_program(src).unwrap();
    Interp::new(&p).run().unwrap()
}

#[test]
fn intrinsics_evaluate() {
    let out = run("program t
         real a, b
         a = sqrt(9.0) + abs(0.0 - 2.5) + exp(0.0) + log(1.0)
         b = sin(0.0) + cos(0.0) + max(1.5, 2.5) + min(1, 2) + real(3) + int(4.7)
         print a, b
         end");
    assert_eq!(out.output, vec!["6.5 11.5"]);
}

#[test]
fn negative_step_loops() {
    let out = run("program t
         integer i, total
         total = 0
         do i = 10, 1, 0 - 2
           total = total + i
         enddo
         print total, i
         end");
    // 10 + 8 + 6 + 4 + 2 = 30; i ends at 0.
    assert_eq!(out.output, vec!["30 0"]);
}

#[test]
fn deep_call_chains() {
    let out = run("program t
         integer k
         call a
         print k
         end
         subroutine a
         k = k + 1
         call b
         end
         subroutine b
         k = k + 10
         call c
         end
         subroutine c
         k = k + 100
         end");
    assert_eq!(out.output, vec!["111"]);
}

#[test]
fn logical_value_in_numeric_position() {
    let out = run("program t
         integer a, b
         a = (3 > 2)
         b = (2 > 3)
         print a, b, (1 < 2) + (4 < 3)
         end");
    assert_eq!(out.output, vec!["1 0 1"]);
}

#[test]
fn symbolic_array_extents() {
    // Extents referencing scalars are evaluated at first touch.
    let out = run("program t
         integer n, i
         real x(n)
         n = 5
         do i = 1, 5
           x(i) = i
         enddo
         print x(5)
         end");
    assert_eq!(out.output, vec!["5"]);
}

#[test]
fn bad_extent_is_reported() {
    let p = parse_program(
        "program t
         integer n
         real x(n)
         x(1) = 1
         end",
    )
    .unwrap();
    // n is 0 at the first touch.
    let err = Interp::new(&p).run().unwrap_err();
    assert!(matches!(err, irr_exec::ExecError::BadExtent { .. }));
}

/// The machine model is sane: speedup at P=1 is exactly 1, parallel
/// time is at least the critical chunk, and speedup never exceeds P
/// (no superlinear artifacts). Cases drawn from a deterministic
/// SplitMix64 stream.
#[test]
fn machine_model_sanity() {
    let mut rng = SplitMix64::new(0x8001);
    for _ in 0..128 {
        let iters = rng.range_usize(1, 399);
        let cost = rng.range_i64(1, 49) as u64;
        let invocations = rng.range_usize(1, 4);
        let serial_extra = rng.range_i64(0, 9_999) as u64;
        let p = rng.range_usize(1, 39);
        let inv: Vec<Vec<u64>> = (0..invocations).map(|_| vec![cost; iters]).collect();
        let loop_total = (iters as u64) * cost * invocations as u64;
        let mut loops = HashMap::new();
        loops.insert(
            irr_frontend::StmtId(0),
            LoopProfile {
                total_cost: loop_total,
                invocations: inv,
            },
        );
        let profile = ProgramProfile {
            total_cost: loop_total + serial_extra,
            parallel_loops: loops,
        };
        let m = MachineModel::origin2000();
        let s1 = simulate_speedup(&profile, 1, &m);
        assert!((s1 - 1.0).abs() < 1e-9, "s1 = {s1}");
        let sp = simulate_speedup(&profile, p, &m);
        assert!(sp > 0.0);
        assert!(sp <= p as f64 + 1e-9, "superlinear: {sp} at P={p}");
    }
}
