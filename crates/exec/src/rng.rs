//! A tiny deterministic pseudo-random number generator (SplitMix64).
//!
//! The repository builds in network-isolated environments, so external
//! crates such as `rand` are unavailable; every randomized test, bench
//! input generator, and example uses this in-tree generator instead.
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) passes BigCrush, needs
//! eight lines of code, and — most importantly here — is *stable across
//! platforms and releases*, so generated test programs are reproducible
//! from their seed alone.

/// A SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `[0, n)`. `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded generation (Lemire); bias is < 2^-64 *
        // n, irrelevant for test generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform `i64` in `[lo, hi]` (inclusive). Requires `lo <= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let width = (hi - lo) as u64 + 1;
        lo + self.below(width) as i64
    }

    /// A uniform `usize` in `[lo, hi]` (inclusive). Requires `lo <= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// A uniform element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn known_reference_values() {
        // Reference sequence for seed 1234567 (from the published
        // SplitMix64 algorithm).
        let mut r = SplitMix64::new(1234567);
        let first = r.next_u64();
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(first, r2.next_u64());
        assert_ne!(first, r2.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.range_i64(-5, 9);
            assert!((-5..=9).contains(&v));
            let u = r.range_usize(3, 3);
            assert_eq!(u, 3);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = SplitMix64::new(99);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[(*r.choose(&items) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
