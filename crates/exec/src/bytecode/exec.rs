//! The bytecode dispatch loop.
//!
//! Executes [`CompiledBody`] blocks against the interpreter's own
//! store, stats, and fuel — the compiled tier shares every piece of
//! observable state with the tree-walk, so the two tiers are
//! interchangeable mid-run. See the module docs for the parity
//! contract; every arm below cites the interpreter behavior it
//! replicates.

use super::{CompiledBody, Op, Opnd};
use crate::interp::{apply_bin, apply_intrinsic, ArrayData, ExecError, Interp, Value};
use irr_frontend::{BinOp, StmtId, VarId};

/// Raw view of one array pinned for the duration of a fast-path
/// compiled loop: materialized, uniquely owned (`Arc::make_mut` at pin
/// time, exactly the clone a first tree-walk write would take), its
/// payload addressed directly. Writes are counted locally and land on
/// the store's version counter at flush, so the version arithmetic is
/// identical to per-write bumps without paying them per element.
///
/// # Safety
///
/// The raw pointer stays valid for the whole loop because nothing in a
/// compiled body can move the payload: element writes never resize,
/// `Ensure`/pinning of *other* arrays touches other store slots, and
/// compiled bodies contain no calls, prints, or dispatcher re-entry.
/// Pins never outlive one `exec_do_compiled` call.
struct Pin {
    ints: *mut i64,
    reals: *mut f64,
    is_int: bool,
    len: usize,
    dims: Vec<usize>,
    writes: u64,
}

impl Pin {
    #[inline]
    fn read(&self, idx: usize) -> Value {
        assert!(idx < self.len, "pinned read out of range");
        unsafe {
            if self.is_int {
                Value::Int(*self.ints.add(idx))
            } else {
                Value::Real(*self.reals.add(idx))
            }
        }
    }

    #[inline]
    fn write(&mut self, idx: usize, val: Value) {
        assert!(idx < self.len, "pinned write out of range");
        self.writes += 1;
        unsafe {
            if self.is_int {
                *self.ints.add(idx) = val.as_int();
            } else {
                *self.reals.add(idx) = val.as_real();
            }
        }
    }

    /// Bounds-checks a 1-based first-dimension subscript; `None` maps
    /// to the interpreter's `OutOfBounds` at the call site.
    #[inline]
    fn check1(&self, v: i64) -> Option<usize> {
        if v < 1 || v as usize > self.dims[0] {
            None
        } else {
            Some(v as usize - 1)
        }
    }
}

/// Per-call state of the fast path: lazily pinned arrays plus local
/// fuel/cost accounting flushed back to the interpreter on every exit
/// (success or error), so observable state is indistinguishable from
/// the per-op slow path.
struct FastCtx {
    pins: Vec<Option<Pin>>,
    fuel: u64,
    spent: u64,
}

impl FastCtx {
    /// Mirrors `Interp::charge` against the local counters: cost is
    /// counted before the fuel check, and an exhausted run leaves the
    /// failing charge undeducted — byte-identical exhaustion state.
    #[inline]
    fn charge(&mut self, n: u64) -> Result<(), ExecError> {
        self.spent += n;
        if self.fuel < n {
            return Err(ExecError::OutOfFuel);
        }
        self.fuel -= n;
        Ok(())
    }
}

impl<'p> Interp<'p> {
    /// Reads an operand. Scalar slots read the live store — deferred
    /// reads are safe because expressions cannot write scalars.
    #[inline]
    fn rd(&self, temps: &[Value], o: Opnd) -> Value {
        match o {
            Opnd::T(t) => temps[t as usize],
            Opnd::S(v) => self.store.scalar(v),
            Opnd::I(v) => Value::Int(v),
            Opnd::R(v) => Value::Real(v),
        }
    }

    /// Reads one element of a materialized array.
    #[inline]
    fn bc_read(&self, a: VarId, idx: usize) -> Value {
        match self.store.array_ref(a).expect("ensured") {
            ArrayData::Int { data, .. } => Value::Int(data[idx]),
            ArrayData::Real { data, .. } => Value::Real(data[idx]),
        }
    }

    /// Bounds-checks a 1-based first-dimension subscript of a
    /// materialized array; returns the 0-based flat offset. Identical
    /// to the interpreter's `flat_index` for a single subscript
    /// (including the error's array-name identity).
    #[inline]
    fn bc_index1(&self, a: VarId, v: i64) -> Result<usize, ExecError> {
        let extent = self.store.array_ref(a).expect("ensured").dims()[0];
        if v < 1 || v as usize > extent {
            return Err(ExecError::OutOfBounds {
                array: self.program().symbols.name(a).to_string(),
                index: v,
                extent,
            });
        }
        Ok(v as usize - 1)
    }

    /// Executes the compiled outermost `do` loop, mirroring the
    /// interpreter's sequential `Do` arm: entry counted before the
    /// first iteration, per-iteration logged induction write, one
    /// bookkeeping charge per iteration, the Fortran final induction
    /// value, and the nest's cost attributed on success only.
    pub(crate) fn exec_do_compiled(
        &mut self,
        s: StmtId,
        cb: &CompiledBody,
        lo: i64,
        hi: i64,
        step: i64,
    ) -> Result<(), ExecError> {
        // The pinned fast paths require that element writes are not
        // observed beyond the payload (no write log, no strategy
        // overlay) and that no per-opcode profile is being collected;
        // otherwise fall back to the per-op slow path, which shares
        // every code path with the tree-walk.
        let fast_ok = self.compiled_profile.is_none() && !self.store.writes_observed();
        let fb = if fast_ok {
            self.fast_body_for(s, cb)
        } else {
            None
        };
        if let Some(fb) = &fb {
            // Best tier first: the typed specialization (split
            // register planes, promoted scalars, pre-pinned arrays),
            // eligible once every referenced array is materialized.
            // Otherwise the untyped tier below runs the early
            // iterations (materializing lazily in interpreter order)
            // and hands over mid-loop once the precondition holds.
            if self.fast_ready(fb) {
                return self.run_fast_body(s, fb, lo, hi, step);
            }
        }
        // Reuse one register file across loop entries; registers are
        // write-before-read by construction, so no per-entry clearing
        // beyond sizing is needed.
        let mut temps = std::mem::take(&mut self.ctemps);
        temps.clear();
        temps.resize(cb.n_temps as usize, Value::Int(0));
        let res = if fast_ok {
            self.run_compiled_loop_fast(s, cb, fb.as_deref(), lo, hi, step, &mut temps)
        } else {
            self.run_compiled_loop(s, cb, lo, hi, step, &mut temps)
        };
        self.ctemps = temps;
        res
    }

    /// Pinned-array variant of [`Interp::run_compiled_loop`]: same
    /// observable semantics, with array payloads addressed raw and
    /// fuel/cost/version accounting batched per loop entry.
    ///
    /// When a typed specialization exists (`fb`) but was not eligible
    /// at entry — some referenced array not yet materialized — each
    /// iteration boundary re-checks the precondition and hands the
    /// remaining iterations to the typed tier as soon as it holds
    /// (typically after the first iteration materializes the outputs).
    #[allow(clippy::too_many_arguments)]
    fn run_compiled_loop_fast(
        &mut self,
        s: StmtId,
        cb: &CompiledBody,
        fb: Option<&super::FastBody>,
        lo: i64,
        hi: i64,
        step: i64,
        temps: &mut [Value],
    ) -> Result<(), ExecError> {
        let mut ctx = FastCtx {
            pins: std::iter::repeat_with(|| None)
                .take(self.program().symbols.len())
                .collect(),
            fuel: self.fuel,
            spent: 0,
        };
        let entry = self.stats.loops.entry(s).or_default();
        entry.invocations += 1;
        let cost_at_entry = self.stats.total_cost;
        let (var, ty) = (cb.root_var, cb.root_ty);
        let mut i = lo;
        let res = loop {
            if !((step > 0 && i <= hi) || (step < 0 && i >= hi)) {
                break Ok(());
            }
            if let Some(fb) = fb {
                if self.fast_ready(fb) {
                    // Flush this tier's ledger at the iteration
                    // boundary, then continue typed; entry bookkeeping
                    // (invocation count, cost baseline) already done.
                    self.stats.total_cost += ctx.spent;
                    self.fuel = ctx.fuel;
                    for (k, pin) in ctx.pins.iter().enumerate() {
                        if let Some(p) = pin {
                            if p.writes > 0 {
                                self.store.bump_version_by(VarId::from_index(k), p.writes);
                            }
                        }
                    }
                    return self.run_fast_iters(s, fb, i, hi, step, cost_at_entry);
                }
            }
            self.store.set_scalar(var, ty, Value::Int(i));
            if let Err(e) = self.run_block_fast(cb, cb.root, temps, &mut ctx) {
                break Err(e);
            }
            if let Err(e) = ctx.charge(1) {
                break Err(e); // loop bookkeeping
            }
            i += step;
        };
        // Flush local accounting on every exit so errors surface with
        // exactly the state the slow path would have left behind.
        self.stats.total_cost += ctx.spent;
        self.fuel = ctx.fuel;
        for (k, pin) in ctx.pins.iter().enumerate() {
            if let Some(p) = pin {
                if p.writes > 0 {
                    self.store.bump_version_by(VarId::from_index(k), p.writes);
                }
            }
        }
        res?;
        // Fortran leaves the induction variable at the first
        // out-of-range value.
        self.store.set_scalar(var, ty, Value::Int(i));
        let total = self.stats.total_cost - cost_at_entry;
        self.stats.loops.entry(s).or_default().total_cost += total;
        Ok(())
    }

    /// Lazily pins `a`: first touch materializes (exactly where the
    /// slow path's `Ensure` would) and takes unique ownership of the
    /// payload.
    #[inline]
    fn pinned<'c>(&mut self, ctx: &'c mut FastCtx, a: VarId) -> Result<&'c mut Pin, ExecError> {
        if ctx.pins[a.index()].is_none() {
            self.ensure_materialized(a)?;
            let data = self.store.array_make_mut(a);
            let dims = data.dims().to_vec();
            let (ints, reals, is_int, len) = match data {
                ArrayData::Int { data, .. } => {
                    (data.as_mut_ptr(), std::ptr::null_mut(), true, data.len())
                }
                ArrayData::Real { data, .. } => {
                    (std::ptr::null_mut(), data.as_mut_ptr(), false, data.len())
                }
            };
            ctx.pins[a.index()] = Some(Pin {
                ints,
                reals,
                is_int,
                len,
                dims,
                writes: 0,
            });
        }
        Ok(ctx.pins[a.index()].as_mut().expect("just pinned"))
    }

    #[cold]
    fn oob(&self, a: VarId, index: i64, extent: usize) -> ExecError {
        ExecError::OutOfBounds {
            array: self.program().symbols.name(a).to_string(),
            index,
            extent,
        }
    }

    fn run_block_fast(
        &mut self,
        cb: &CompiledBody,
        b: u16,
        temps: &mut [Value],
        ctx: &mut FastCtx,
    ) -> Result<(), ExecError> {
        let ops = &cb.blocks[b as usize];
        let mut pc = 0usize;
        while pc < ops.len() {
            match &ops[pc] {
                Op::Charge(n) => ctx.charge(*n)?,
                Op::Mov { dst, src } => temps[*dst as usize] = self.rd(temps, *src),
                Op::Bin { op, dst, a, b } => {
                    let x = self.rd(temps, *a);
                    let y = self.rd(temps, *b);
                    temps[*dst as usize] = apply_bin(*op, x, y)?;
                }
                Op::Neg { dst, src } => {
                    temps[*dst as usize] = match self.rd(temps, *src) {
                        Value::Int(v) => Value::Int(-v),
                        Value::Real(v) => Value::Real(-v),
                    };
                }
                Op::Cmp { op, dst, a, b } => {
                    let x = self.rd(temps, *a);
                    let y = self.rd(temps, *b);
                    let ord = match (x, y) {
                        (Value::Int(p), Value::Int(q)) => p.cmp(&q),
                        _ => x
                            .as_real()
                            .partial_cmp(&y.as_real())
                            .unwrap_or(std::cmp::Ordering::Equal),
                    };
                    let res = match op {
                        BinOp::Eq => ord == std::cmp::Ordering::Equal,
                        BinOp::Ne => ord != std::cmp::Ordering::Equal,
                        BinOp::Lt => ord == std::cmp::Ordering::Less,
                        BinOp::Le => ord != std::cmp::Ordering::Greater,
                        BinOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinOp::Ge => ord != std::cmp::Ordering::Less,
                        _ => unreachable!("comparison"),
                    };
                    temps[*dst as usize] = Value::Int(res as i64);
                }
                Op::Truthy { dst, src } => {
                    let v = self.rd(temps, *src);
                    temps[*dst as usize] = Value::Int((v.as_real() != 0.0) as i64);
                }
                Op::Not { t } => {
                    let v = temps[*t as usize].as_int();
                    temps[*t as usize] = Value::Int((v == 0) as i64);
                }
                Op::Intr1 { f, dst, a } => {
                    let x = self.rd(temps, *a);
                    temps[*dst as usize] = apply_intrinsic(*f, &[x])?;
                }
                Op::Intr2 { f, dst, a, b } => {
                    let x = self.rd(temps, *a);
                    let y = self.rd(temps, *b);
                    temps[*dst as usize] = apply_intrinsic(*f, &[x, y])?;
                }
                Op::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
                Op::JumpIfZero { src, target } => {
                    if temps[*src as usize].as_int() == 0 {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::JumpIfNonZero { src, target } => {
                    if temps[*src as usize].as_int() != 0 {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::Ensure { arr } => {
                    self.pinned(ctx, *arr)?;
                }
                Op::IndexN { arr, base, n, dst } => {
                    let mut idx: usize = 0;
                    let mut stride: usize = 1;
                    for k in 0..*n as usize {
                        let v = temps[*base as usize + k].as_int();
                        let extent = ctx.pins[arr.index()].as_ref().expect("ensured").dims[k];
                        if v < 1 || v as usize > extent {
                            return Err(self.oob(*arr, v, extent));
                        }
                        idx += (v as usize - 1) * stride;
                        stride *= extent;
                    }
                    temps[*dst as usize] = Value::Int(idx as i64);
                }
                Op::LoadAt { arr, idx, dst } => {
                    let k = temps[*idx as usize].as_int() as usize;
                    temps[*dst as usize] = ctx.pins[arr.index()].as_ref().expect("ensured").read(k);
                }
                Op::StoreAt { arr, idx, src } => {
                    let k = temps[*idx as usize].as_int() as usize;
                    let val = self.rd(temps, *src);
                    ctx.pins[arr.index()]
                        .as_mut()
                        .expect("ensured")
                        .write(k, val);
                }
                Op::LoadElem1 { arr, sub, dst } => {
                    let v = self.rd(temps, *sub).as_int();
                    let p = self.pinned(ctx, *arr)?;
                    match p.check1(v) {
                        Some(k) => temps[*dst as usize] = p.read(k),
                        None => {
                            let extent = p.dims[0];
                            return Err(self.oob(*arr, v, extent));
                        }
                    }
                }
                Op::StoreElem1 { arr, sub, src } => {
                    let v = self.rd(temps, *sub).as_int();
                    let val = self.rd(temps, *src);
                    let p = self.pinned(ctx, *arr)?;
                    match p.check1(v) {
                        Some(k) => p.write(k, val),
                        None => {
                            let extent = p.dims[0];
                            return Err(self.oob(*arr, v, extent));
                        }
                    }
                }
                Op::LoadAffine {
                    arr,
                    base,
                    off,
                    dst,
                } => {
                    let v = self.store.scalar(*base).as_int().wrapping_add(*off);
                    let p = self.pinned(ctx, *arr)?;
                    match p.check1(v) {
                        Some(k) => temps[*dst as usize] = p.read(k),
                        None => {
                            let extent = p.dims[0];
                            return Err(self.oob(*arr, v, extent));
                        }
                    }
                }
                Op::StoreAffine {
                    arr,
                    base,
                    off,
                    src,
                } => {
                    let v = self.store.scalar(*base).as_int().wrapping_add(*off);
                    let val = self.rd(temps, *src);
                    let p = self.pinned(ctx, *arr)?;
                    match p.check1(v) {
                        Some(k) => p.write(k, val),
                        None => {
                            let extent = p.dims[0];
                            return Err(self.oob(*arr, v, extent));
                        }
                    }
                }
                Op::Gather {
                    arr,
                    idx_arr,
                    sub,
                    dst,
                } => {
                    // flat_index order: the outer array is ensured
                    // before its subscript (the index-array access) is
                    // evaluated.
                    self.pinned(ctx, *arr)?;
                    let s = self.rd(temps, *sub).as_int();
                    let v = {
                        let ip = self.pinned(ctx, *idx_arr)?;
                        match ip.check1(s) {
                            Some(j) => ip.read(j).as_int(),
                            None => {
                                let extent = ip.dims[0];
                                return Err(self.oob(*idx_arr, s, extent));
                            }
                        }
                    };
                    let p = ctx.pins[arr.index()].as_mut().expect("pinned");
                    match p.check1(v) {
                        Some(k) => temps[*dst as usize] = p.read(k),
                        None => {
                            let extent = p.dims[0];
                            return Err(self.oob(*arr, v, extent));
                        }
                    }
                }
                Op::Scatter {
                    arr,
                    idx_arr,
                    sub,
                    src,
                } => {
                    self.pinned(ctx, *arr)?;
                    let s = self.rd(temps, *sub).as_int();
                    let v = {
                        let ip = self.pinned(ctx, *idx_arr)?;
                        match ip.check1(s) {
                            Some(j) => ip.read(j).as_int(),
                            None => {
                                let extent = ip.dims[0];
                                return Err(self.oob(*idx_arr, s, extent));
                            }
                        }
                    };
                    let val = self.rd(temps, *src);
                    let p = ctx.pins[arr.index()].as_mut().expect("pinned");
                    match p.check1(v) {
                        Some(k) => p.write(k, val),
                        None => {
                            let extent = p.dims[0];
                            return Err(self.oob(*arr, v, extent));
                        }
                    }
                }
                Op::SetScalar { var, ty, src } => {
                    let val = self.rd(temps, *src);
                    self.store.set_scalar(*var, *ty, val);
                }
                Op::Accum {
                    var,
                    ty,
                    op,
                    rev,
                    src,
                } => {
                    let cur = self.store.scalar(*var);
                    let v = self.rd(temps, *src);
                    let res = if *rev {
                        apply_bin(*op, v, cur)?
                    } else {
                        apply_bin(*op, cur, v)?
                    };
                    self.store.set_scalar(*var, *ty, res);
                }
                Op::Append { arr, ptr, ty, src } => {
                    let cur = self.store.scalar(*ptr).as_int();
                    let val = self.rd(temps, *src);
                    let p = self.pinned(ctx, *arr)?;
                    match p.check1(cur) {
                        Some(k) => p.write(k, val),
                        None => {
                            let extent = p.dims[0];
                            return Err(self.oob(*arr, cur, extent));
                        }
                    }
                    // The fused increment statement's charge sits
                    // between the write and the pointer bump, exactly
                    // where the interpreter would run out of fuel.
                    ctx.charge(1)?;
                    self.store
                        .set_scalar(*ptr, *ty, Value::Int(cur.wrapping_add(1)));
                }
                Op::DoLoop {
                    var,
                    ty,
                    stmt,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    let lo = self.rd(temps, *lo).as_int();
                    let hi = self.rd(temps, *hi).as_int();
                    let stp = self.rd(temps, *step).as_int();
                    if stp == 0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    let entry = self.stats.loops.entry(*stmt).or_default();
                    entry.invocations += 1;
                    let cost_at_entry = self.stats.total_cost + ctx.spent;
                    let mut i = lo;
                    while (stp > 0 && i <= hi) || (stp < 0 && i >= hi) {
                        self.store.set_scalar(*var, *ty, Value::Int(i));
                        self.run_block_fast(cb, *body, temps, ctx)?;
                        ctx.charge(1)?; // loop bookkeeping
                        i += stp;
                    }
                    self.store.set_scalar(*var, *ty, Value::Int(i));
                    let total = self.stats.total_cost + ctx.spent - cost_at_entry;
                    self.stats.loops.entry(*stmt).or_default().total_cost += total;
                }
                Op::WhileLoop {
                    stmt,
                    cond,
                    cond_temp,
                    body,
                } => {
                    let entry = self.stats.loops.entry(*stmt).or_default();
                    entry.invocations += 1;
                    let cost_at_entry = self.stats.total_cost + ctx.spent;
                    loop {
                        self.run_block_fast(cb, *cond, temps, ctx)?;
                        if temps[*cond_temp as usize].as_int() == 0 {
                            break;
                        }
                        ctx.charge(1)?;
                        self.run_block_fast(cb, *body, temps, ctx)?;
                    }
                    let total = self.stats.total_cost + ctx.spent - cost_at_entry;
                    self.stats.loops.entry(*stmt).or_default().total_cost += total;
                }
            }
            pc += 1;
        }
        Ok(())
    }

    fn run_compiled_loop(
        &mut self,
        s: StmtId,
        cb: &CompiledBody,
        lo: i64,
        hi: i64,
        step: i64,
        temps: &mut [Value],
    ) -> Result<(), ExecError> {
        let entry = self.stats.loops.entry(s).or_default();
        entry.invocations += 1;
        let cost_at_entry = self.stats.total_cost;
        let (var, ty) = (cb.root_var, cb.root_ty);
        let mut i = lo;
        while (step > 0 && i <= hi) || (step < 0 && i >= hi) {
            self.store.set_scalar(var, ty, Value::Int(i));
            self.run_block(cb, cb.root, temps)?;
            self.charge(1)?; // loop bookkeeping
            i += step;
        }
        // Fortran leaves the induction variable at the first
        // out-of-range value.
        self.store.set_scalar(var, ty, Value::Int(i));
        let total = self.stats.total_cost - cost_at_entry;
        self.stats.loops.entry(s).or_default().total_cost += total;
        Ok(())
    }

    /// Runs one iteration's worth of the root block — the parallel
    /// workers' chunk body (the worker loop drives the induction
    /// variable, deadline, and per-iteration charge itself, exactly as
    /// it does around `exec_body`).
    pub(crate) fn run_compiled_body_block(
        &mut self,
        cb: &CompiledBody,
        temps: &mut [Value],
    ) -> Result<(), ExecError> {
        self.run_block(cb, cb.root, temps)
    }

    fn run_block(
        &mut self,
        cb: &CompiledBody,
        b: u16,
        temps: &mut [Value],
    ) -> Result<(), ExecError> {
        let ops = &cb.blocks[b as usize];
        let mut pc = 0usize;
        while pc < ops.len() {
            let op = &ops[pc];
            if let Some(p) = self.compiled_profile.as_deref_mut() {
                p.counts[op.tag()] += 1;
            }
            match op {
                Op::Charge(n) => self.charge(*n)?,
                Op::Mov { dst, src } => temps[*dst as usize] = self.rd(temps, *src),
                Op::Bin { op, dst, a, b } => {
                    let x = self.rd(temps, *a);
                    let y = self.rd(temps, *b);
                    temps[*dst as usize] = apply_bin(*op, x, y)?;
                }
                Op::Neg { dst, src } => {
                    temps[*dst as usize] = match self.rd(temps, *src) {
                        Value::Int(v) => Value::Int(-v),
                        Value::Real(v) => Value::Real(-v),
                    };
                }
                Op::Cmp { op, dst, a, b } => {
                    let x = self.rd(temps, *a);
                    let y = self.rd(temps, *b);
                    // eval_cond's comparison: exact integer compare,
                    // otherwise real compare with NaN ordering Equal.
                    let ord = match (x, y) {
                        (Value::Int(p), Value::Int(q)) => p.cmp(&q),
                        _ => x
                            .as_real()
                            .partial_cmp(&y.as_real())
                            .unwrap_or(std::cmp::Ordering::Equal),
                    };
                    let res = match op {
                        BinOp::Eq => ord == std::cmp::Ordering::Equal,
                        BinOp::Ne => ord != std::cmp::Ordering::Equal,
                        BinOp::Lt => ord == std::cmp::Ordering::Less,
                        BinOp::Le => ord != std::cmp::Ordering::Greater,
                        BinOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinOp::Ge => ord != std::cmp::Ordering::Less,
                        _ => unreachable!("comparison"),
                    };
                    temps[*dst as usize] = Value::Int(res as i64);
                }
                Op::Truthy { dst, src } => {
                    let v = self.rd(temps, *src);
                    temps[*dst as usize] = Value::Int((v.as_real() != 0.0) as i64);
                }
                Op::Not { t } => {
                    let v = temps[*t as usize].as_int();
                    temps[*t as usize] = Value::Int((v == 0) as i64);
                }
                Op::Intr1 { f, dst, a } => {
                    let x = self.rd(temps, *a);
                    temps[*dst as usize] = apply_intrinsic(*f, &[x])?;
                }
                Op::Intr2 { f, dst, a, b } => {
                    let x = self.rd(temps, *a);
                    let y = self.rd(temps, *b);
                    temps[*dst as usize] = apply_intrinsic(*f, &[x, y])?;
                }
                Op::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
                Op::JumpIfZero { src, target } => {
                    if temps[*src as usize].as_int() == 0 {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::JumpIfNonZero { src, target } => {
                    if temps[*src as usize].as_int() != 0 {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::Ensure { arr } => self.ensure_materialized(*arr)?,
                Op::IndexN { arr, base, n, dst } => {
                    // flat_index's column-major walk with per-dimension
                    // bounds checks, over subscripts already evaluated
                    // into consecutive temps.
                    let mut idx: usize = 0;
                    let mut stride: usize = 1;
                    for k in 0..*n as usize {
                        let v = temps[*base as usize + k].as_int();
                        let extent = self.store.array_ref(*arr).expect("ensured").dims()[k];
                        if v < 1 || v as usize > extent {
                            return Err(ExecError::OutOfBounds {
                                array: self.program().symbols.name(*arr).to_string(),
                                index: v,
                                extent,
                            });
                        }
                        idx += (v as usize - 1) * stride;
                        stride *= extent;
                    }
                    temps[*dst as usize] = Value::Int(idx as i64);
                }
                Op::LoadAt { arr, idx, dst } => {
                    let k = temps[*idx as usize].as_int() as usize;
                    temps[*dst as usize] = self.bc_read(*arr, k);
                }
                Op::StoreAt { arr, idx, src } => {
                    let k = temps[*idx as usize].as_int() as usize;
                    let val = self.rd(temps, *src);
                    self.store.write_element(*arr, k, val);
                }
                Op::LoadElem1 { arr, sub, dst } => {
                    self.ensure_materialized(*arr)?;
                    let v = self.rd(temps, *sub).as_int();
                    let k = self.bc_index1(*arr, v)?;
                    temps[*dst as usize] = self.bc_read(*arr, k);
                }
                Op::StoreElem1 { arr, sub, src } => {
                    self.ensure_materialized(*arr)?;
                    let v = self.rd(temps, *sub).as_int();
                    let k = self.bc_index1(*arr, v)?;
                    let val = self.rd(temps, *src);
                    self.store.write_element(*arr, k, val);
                }
                Op::LoadAffine {
                    arr,
                    base,
                    off,
                    dst,
                } => {
                    self.ensure_materialized(*arr)?;
                    // `base` is integer-typed, so the wrapping add is
                    // exactly apply_bin's integer Add/Sub.
                    let v = self.store.scalar(*base).as_int().wrapping_add(*off);
                    let k = self.bc_index1(*arr, v)?;
                    temps[*dst as usize] = self.bc_read(*arr, k);
                }
                Op::StoreAffine {
                    arr,
                    base,
                    off,
                    src,
                } => {
                    self.ensure_materialized(*arr)?;
                    let v = self.store.scalar(*base).as_int().wrapping_add(*off);
                    let k = self.bc_index1(*arr, v)?;
                    let val = self.rd(temps, *src);
                    self.store.write_element(*arr, k, val);
                }
                Op::Gather {
                    arr,
                    idx_arr,
                    sub,
                    dst,
                } => {
                    // flat_index order: the outer array is ensured
                    // before its subscript (the index-array access) is
                    // evaluated.
                    self.ensure_materialized(*arr)?;
                    self.ensure_materialized(*idx_arr)?;
                    let s = self.rd(temps, *sub).as_int();
                    let j = self.bc_index1(*idx_arr, s)?;
                    let v = self.bc_read(*idx_arr, j).as_int();
                    let k = self.bc_index1(*arr, v)?;
                    temps[*dst as usize] = self.bc_read(*arr, k);
                }
                Op::Scatter {
                    arr,
                    idx_arr,
                    sub,
                    src,
                } => {
                    self.ensure_materialized(*arr)?;
                    self.ensure_materialized(*idx_arr)?;
                    let s = self.rd(temps, *sub).as_int();
                    let j = self.bc_index1(*idx_arr, s)?;
                    let v = self.bc_read(*idx_arr, j).as_int();
                    let k = self.bc_index1(*arr, v)?;
                    let val = self.rd(temps, *src);
                    self.store.write_element(*arr, k, val);
                }
                Op::SetScalar { var, ty, src } => {
                    let val = self.rd(temps, *src);
                    self.store.set_scalar(*var, *ty, val);
                }
                Op::Accum {
                    var,
                    ty,
                    op,
                    rev,
                    src,
                } => {
                    let cur = self.store.scalar(*var);
                    let v = self.rd(temps, *src);
                    let res = if *rev {
                        apply_bin(*op, v, cur)?
                    } else {
                        apply_bin(*op, cur, v)?
                    };
                    self.store.set_scalar(*var, *ty, res);
                }
                Op::Append { arr, ptr, ty, src } => {
                    self.ensure_materialized(*arr)?;
                    let cur = self.store.scalar(*ptr).as_int();
                    let k = self.bc_index1(*arr, cur)?;
                    let val = self.rd(temps, *src);
                    self.store.write_element(*arr, k, val);
                    // The fused increment statement's charge sits
                    // between the write and the pointer bump, exactly
                    // where the interpreter would run out of fuel.
                    self.charge(1)?;
                    self.store
                        .set_scalar(*ptr, *ty, Value::Int(cur.wrapping_add(1)));
                }
                Op::DoLoop {
                    var,
                    ty,
                    stmt,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    let lo = self.rd(temps, *lo).as_int();
                    let hi = self.rd(temps, *hi).as_int();
                    let stp = self.rd(temps, *step).as_int();
                    if stp == 0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    let entry = self.stats.loops.entry(*stmt).or_default();
                    entry.invocations += 1;
                    let cost_at_entry = self.stats.total_cost;
                    let mut i = lo;
                    while (stp > 0 && i <= hi) || (stp < 0 && i >= hi) {
                        self.store.set_scalar(*var, *ty, Value::Int(i));
                        self.run_block(cb, *body, temps)?;
                        self.charge(1)?; // loop bookkeeping
                        i += stp;
                    }
                    self.store.set_scalar(*var, *ty, Value::Int(i));
                    let total = self.stats.total_cost - cost_at_entry;
                    self.stats.loops.entry(*stmt).or_default().total_cost += total;
                }
                Op::WhileLoop {
                    stmt,
                    cond,
                    cond_temp,
                    body,
                } => {
                    let entry = self.stats.loops.entry(*stmt).or_default();
                    entry.invocations += 1;
                    let cost_at_entry = self.stats.total_cost;
                    loop {
                        self.run_block(cb, *cond, temps)?;
                        if temps[*cond_temp as usize].as_int() == 0 {
                            break;
                        }
                        self.charge(1)?;
                        self.run_block(cb, *body, temps)?;
                    }
                    let total = self.stats.total_cost - cost_at_entry;
                    self.stats.loops.entry(*stmt).or_default().total_cost += total;
                }
            }
            pc += 1;
        }
        Ok(())
    }
}
