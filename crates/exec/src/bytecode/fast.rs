//! Typed specialization of a [`CompiledBody`]: the second-stage
//! compile that turns the untyped register program into split `i64` /
//! `f64` register planes executed without any [`Value`] boxing.
//!
//! The untyped bytecode still pays the tree-walk's dynamic-type tax on
//! every operand: a `Value` enum match per read, `apply_bin`'s
//! type-dispatch per arithmetic op, and a store round-trip per scalar
//! access. All of those types are statically known — scalar and array
//! element types are declared, and every arithmetic op's result type
//! follows `apply_bin`'s promotion rule (`Int op Int → Int`, anything
//! else `→ Real`). `specialize` runs that inference once per loop nest
//! and emits a [`FastBody`]:
//!
//! - **Split register planes.** Every temp and every referenced scalar
//!   gets a slot in an `i64` or `f64` plane; `Int → Real` widening and
//!   Fortran-`INT` truncation become explicit operand forms
//!   ([`IOpnd::FReg`] / [`FOpnd::IReg`]), compiled in exactly where
//!   `Value::as_real` / `Value::as_int` would have run.
//! - **Promoted scalars.** Referenced scalars (induction variables
//!   included) load into registers at loop entry and write back
//!   through [`Store::set_scalar`] on *every* exit — success or error
//!   — so the store is byte-identical to per-access traffic at every
//!   observable point.
//! - **Pre-pinned arrays.** Eligibility requires every referenced
//!   array to be materialized already (otherwise the entry falls back
//!   to the untyped tier, which materializes lazily in interpreter
//!   order); the specialized run then pins all payloads up front and
//!   `Ensure` ops compile away.
//! - **Local value numbering.** Duplicate pure ops (subscript
//!   arithmetic, loads) within a straight-line region are eliminated —
//!   safe because compute ops never charge fuel, so the cost ledger is
//!   untouched.
//!
//! A nest the inference cannot type soundly — a register written both
//! `Int` and `Real` across branches — returns `None` and the loop
//! stays on the untyped tier. Parity remains the contract: same fuel
//! ledger positions, same error identities, same store at exit.

use super::{CompiledBody, Op, Opnd};
use crate::interp::{ArrayData, ExecError, Interp, Value};
use irr_frontend::{BinOp, Intrinsic, Program, ScalarType, StmtId, VarId};
use std::collections::HashMap;

/// Integer-plane operand: a register, an immediate, or a float
/// register read through Fortran-`INT` truncation (`Value::as_int`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum IOpnd {
    Reg(u16),
    Const(i64),
    FReg(u16),
}

/// Float-plane operand: a register, an immediate, or an integer
/// register widened (`Value::as_real`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) enum FOpnd {
    Reg(u16),
    Const(f64),
    IReg(u16),
}

/// One typed instruction. Variants mirror [`Op`], split per plane;
/// `slot` fields index the pinned-array table, not the symbol table.
#[derive(Clone, Debug)]
pub(crate) enum FOp {
    Charge(u64),
    MovI {
        dst: u16,
        src: IOpnd,
    },
    MovF {
        dst: u16,
        src: FOpnd,
    },
    BinI {
        op: BinOp,
        dst: u16,
        a: IOpnd,
        b: IOpnd,
    },
    BinF {
        op: BinOp,
        dst: u16,
        a: FOpnd,
        b: FOpnd,
    },
    NegI {
        dst: u16,
        src: IOpnd,
    },
    NegF {
        dst: u16,
        src: FOpnd,
    },
    CmpI {
        op: BinOp,
        dst: u16,
        a: IOpnd,
        b: IOpnd,
    },
    CmpF {
        op: BinOp,
        dst: u16,
        a: FOpnd,
        b: FOpnd,
    },
    TruthyI {
        dst: u16,
        src: IOpnd,
    },
    TruthyF {
        dst: u16,
        src: FOpnd,
    },
    Not {
        t: u16,
    },
    MinMaxI {
        max: bool,
        dst: u16,
        a: IOpnd,
        b: IOpnd,
    },
    MinMaxF {
        max: bool,
        dst: u16,
        a: FOpnd,
        b: FOpnd,
    },
    AbsI {
        dst: u16,
        src: IOpnd,
    },
    AbsF {
        dst: u16,
        src: FOpnd,
    },
    Real1 {
        f: Intrinsic,
        dst: u16,
        src: FOpnd,
    },
    Jump {
        target: u32,
    },
    JumpIfZero {
        src: u16,
        target: u32,
    },
    JumpIfNonZero {
        src: u16,
        target: u32,
    },
    IndexN {
        slot: u16,
        subs: Box<[IOpnd]>,
        dst: u16,
    },
    LoadAtI {
        slot: u16,
        idx: u16,
        dst: u16,
    },
    LoadAtF {
        slot: u16,
        idx: u16,
        dst: u16,
    },
    StoreAtI {
        slot: u16,
        idx: u16,
        src: IOpnd,
    },
    StoreAtF {
        slot: u16,
        idx: u16,
        src: FOpnd,
    },
    LoadElemI {
        slot: u16,
        sub: IOpnd,
        dst: u16,
    },
    LoadElemF {
        slot: u16,
        sub: IOpnd,
        dst: u16,
    },
    StoreElemI {
        slot: u16,
        sub: IOpnd,
        src: IOpnd,
    },
    StoreElemF {
        slot: u16,
        sub: IOpnd,
        src: FOpnd,
    },
    LoadAffI {
        slot: u16,
        base: u16,
        off: i64,
        dst: u16,
    },
    LoadAffF {
        slot: u16,
        base: u16,
        off: i64,
        dst: u16,
    },
    StoreAffI {
        slot: u16,
        base: u16,
        off: i64,
        src: IOpnd,
    },
    StoreAffF {
        slot: u16,
        base: u16,
        off: i64,
        src: FOpnd,
    },
    GatherI {
        slot: u16,
        idx_slot: u16,
        sub: IOpnd,
        dst: u16,
    },
    GatherF {
        slot: u16,
        idx_slot: u16,
        sub: IOpnd,
        dst: u16,
    },
    ScatterI {
        slot: u16,
        idx_slot: u16,
        sub: IOpnd,
        src: IOpnd,
    },
    ScatterF {
        slot: u16,
        idx_slot: u16,
        sub: IOpnd,
        src: FOpnd,
    },
    AppendI {
        slot: u16,
        ptr: u16,
        src: IOpnd,
    },
    AppendF {
        slot: u16,
        ptr: u16,
        src: FOpnd,
    },
    /// Peephole-fused subscript arithmetic: `dst = a + b + off`, all
    /// wrapping (an add feeding a single add/sub-immediate).
    LeaI {
        dst: u16,
        a: IOpnd,
        b: IOpnd,
        off: i64,
    },
    /// Peephole-fused multiply–add: `dst = a + b * c` with the two
    /// roundings the separate ops performed (never an actual FMA).
    MulAddF {
        dst: u16,
        a: FOpnd,
        b: FOpnd,
        c: FOpnd,
    },
    DoLoop {
        var: u16,
        var_real: bool,
        lidx: u16,
        lo: IOpnd,
        hi: IOpnd,
        step: IOpnd,
        body: u16,
    },
    WhileLoop {
        lidx: u16,
        cond: u16,
        cond_temp: u16,
        body: u16,
    },
}

/// The typed program: plain data (`Send + Sync`), cached per loop
/// statement and shared via `Arc`.
#[derive(Debug)]
pub(crate) struct FastBody {
    pub(crate) blocks: Vec<Vec<FOp>>,
    pub(crate) root: u16,
    pub(crate) n_iregs: u16,
    pub(crate) n_fregs: u16,
    /// Int-declared scalars promoted to the `i64` plane.
    pub(crate) iscalars: Vec<(VarId, u16)>,
    /// Real-declared scalars promoted to the `f64` plane.
    pub(crate) fscalars: Vec<(VarId, u16)>,
    /// Referenced arrays in pin-slot order.
    pub(crate) arrays: Vec<VarId>,
    /// Inner loop statements in dense `lidx` order: per-loop stats
    /// accumulate in flat counters during the run and flush into the
    /// `stats.loops` map once per entry, keeping the hash map off the
    /// hot path.
    pub(crate) loop_stmts: Vec<StmtId>,
    pub(crate) root_reg: u16,
    pub(crate) root_real: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ty {
    I,
    F,
}

/// Builds the typed program, or `None` when the nest cannot be typed
/// statically (the untyped tier remains correct for it).
pub(crate) fn specialize(program: &Program, cb: &CompiledBody) -> Option<FastBody> {
    Builder::new(program, cb).build()
}

struct Builder<'a> {
    program: &'a Program,
    cb: &'a CompiledBody,
    /// Inferred type per untyped temp.
    tt: Vec<Option<Ty>>,
    /// Writes per untyped temp (for value-numbering eligibility).
    temp_writes: Vec<u32>,
    /// Temp → typed register.
    tmap: Vec<Option<u16>>,
    /// Scalar → (plane, register).
    smap: HashMap<VarId, (Ty, u16)>,
    /// Array → pin slot.
    amap: HashMap<VarId, u16>,
    arrays: Vec<VarId>,
    loop_stmts: Vec<StmtId>,
    n_iregs: u16,
    n_fregs: u16,
    /// Registers holding an eliminated temp's value (per plane).
    subst_i: HashMap<u16, u16>,
    subst_f: HashMap<u16, u16>,
}

/// Value-numbering key for a pure op (dst stripped; float immediates
/// keyed by bit pattern).
#[derive(Clone, PartialEq, Eq, Hash)]
enum VnKey {
    BinI(BinOp, IOpnd, IOpnd),
    BinF(BinOp, FBits, FBits),
    LoadAff(u16, u16, i64),
    LoadElem(u16, IOpnd),
    Gather(u16, u16, IOpnd),
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum FBits {
    Reg(u16),
    Const(u64),
    IReg(u16),
}

fn fbits(o: FOpnd) -> FBits {
    match o {
        FOpnd::Reg(r) => FBits::Reg(r),
        FOpnd::Const(c) => FBits::Const(c.to_bits()),
        FOpnd::IReg(r) => FBits::IReg(r),
    }
}

impl<'a> Builder<'a> {
    fn new(program: &'a Program, cb: &'a CompiledBody) -> Builder<'a> {
        Builder {
            program,
            cb,
            tt: vec![None; cb.n_temps as usize],
            temp_writes: vec![0; cb.n_temps as usize],
            tmap: vec![None; cb.n_temps as usize],
            smap: HashMap::new(),
            amap: HashMap::new(),
            arrays: Vec::new(),
            loop_stmts: Vec::new(),
            n_iregs: 0,
            n_fregs: 0,
            subst_i: HashMap::new(),
            subst_f: HashMap::new(),
        }
    }

    fn sty(&self, v: VarId) -> Ty {
        match self.program.symbols.var(v).ty {
            ScalarType::Int => Ty::I,
            ScalarType::Real => Ty::F,
        }
    }

    fn ety(&self, a: VarId) -> Ty {
        // Array element type is the declared scalar type.
        self.sty(a)
    }

    fn opnd_ty(&self, o: Opnd) -> Option<Ty> {
        match o {
            Opnd::T(t) => self.tt[t as usize],
            Opnd::S(v) => Some(self.sty(v)),
            Opnd::I(_) => Some(Ty::I),
            Opnd::R(_) => Some(Ty::F),
        }
    }

    /// `apply_bin` / min-max promotion: `Int op Int → Int`, else Real.
    fn join(&self, a: Opnd, b: Opnd) -> Option<Ty> {
        match (self.opnd_ty(a)?, self.opnd_ty(b)?) {
            (Ty::I, Ty::I) => Some(Ty::I),
            _ => Some(Ty::F),
        }
    }

    /// The type an op writes into its destination temp, if its
    /// operand types are known yet.
    fn write_ty(&self, op: &Op) -> Option<(u16, Option<Ty>)> {
        Some(match op {
            Op::Mov { dst, src } => (*dst, self.opnd_ty(*src)),
            Op::Bin { dst, a, b, .. } => (*dst, self.join(*a, *b)),
            Op::Neg { dst, src } => (*dst, self.opnd_ty(*src)),
            Op::Cmp { dst, .. } | Op::Truthy { dst, .. } => (*dst, Some(Ty::I)),
            Op::Not { t } => (*t, Some(Ty::I)),
            Op::Intr1 { f, dst, a } => match f {
                Intrinsic::Abs => (*dst, self.opnd_ty(*a)),
                Intrinsic::Int => (*dst, Some(Ty::I)),
                Intrinsic::Real
                | Intrinsic::Sqrt
                | Intrinsic::Sin
                | Intrinsic::Cos
                | Intrinsic::Exp
                | Intrinsic::Log => (*dst, Some(Ty::F)),
                // Two-argument intrinsics never lower to Intr1.
                _ => (*dst, None),
            },
            Op::Intr2 { f, dst, a, b } => match f {
                Intrinsic::Min | Intrinsic::Max | Intrinsic::Mod => (*dst, self.join(*a, *b)),
                _ => (*dst, None),
            },
            Op::IndexN { dst, .. } => (*dst, Some(Ty::I)),
            Op::LoadAt { arr, dst, .. }
            | Op::LoadElem1 { arr, dst, .. }
            | Op::LoadAffine { arr, dst, .. }
            | Op::Gather { arr, dst, .. } => (*dst, Some(self.ety(*arr))),
            _ => return None,
        })
    }

    /// Fixed-point type inference over all temps; `None` on a
    /// conflicting (path-dependent) register type.
    fn infer(&mut self) -> Option<()> {
        for block in &self.cb.blocks {
            for op in block {
                if let Some((d, _)) = self.write_ty(op) {
                    self.temp_writes[d as usize] += 1;
                }
            }
        }
        loop {
            let mut changed = false;
            for block in &self.cb.blocks {
                for op in block {
                    let Some((d, Some(ty))) = self.write_ty(op) else {
                        continue;
                    };
                    match self.tt[d as usize] {
                        None => {
                            self.tt[d as usize] = Some(ty);
                            changed = true;
                        }
                        Some(prev) if prev != ty => return None,
                        Some(_) => {}
                    }
                }
            }
            if !changed {
                return Some(());
            }
        }
    }

    fn alloc(&mut self, ty: Ty) -> Option<u16> {
        let n = match ty {
            Ty::I => &mut self.n_iregs,
            Ty::F => &mut self.n_fregs,
        };
        let r = *n;
        *n = n.checked_add(1)?;
        Some(r)
    }

    fn temp_reg(&mut self, t: u16) -> Option<(Ty, u16)> {
        let ty = self.tt[t as usize]?;
        if self.tmap[t as usize].is_none() {
            let r = self.alloc(ty)?;
            self.tmap[t as usize] = Some(r);
        }
        Some((ty, self.tmap[t as usize].expect("just mapped")))
    }

    fn scalar_reg(&mut self, v: VarId) -> Option<(Ty, u16)> {
        if let Some(&e) = self.smap.get(&v) {
            return Some(e);
        }
        let ty = self.sty(v);
        let r = self.alloc(ty)?;
        self.smap.insert(v, (ty, r));
        Some((ty, r))
    }

    fn slot(&mut self, a: VarId) -> Option<u16> {
        if let Some(&s) = self.amap.get(&a) {
            return Some(s);
        }
        let s = u16::try_from(self.arrays.len()).ok()?;
        self.amap.insert(a, s);
        self.arrays.push(a);
        Some(s)
    }

    /// Dense counter slot for an inner loop statement. Each loop op
    /// appears once in the bytecode, so slots are allocated at
    /// translation sites rather than interned.
    fn loop_idx(&mut self, stmt: StmtId) -> Option<u16> {
        let lidx = u16::try_from(self.loop_stmts.len()).ok()?;
        self.loop_stmts.push(stmt);
        Some(lidx)
    }

    /// Reads `t` as an already-assigned register, following the
    /// value-numbering substitution.
    fn read_temp(&mut self, t: u16) -> Option<(Ty, u16)> {
        let (ty, r) = self.temp_reg(t)?;
        let r = match ty {
            Ty::I => *self.subst_i.get(&r).unwrap_or(&r),
            Ty::F => *self.subst_f.get(&r).unwrap_or(&r),
        };
        Some((ty, r))
    }

    fn iopnd(&mut self, o: Opnd) -> Option<IOpnd> {
        Some(match o {
            Opnd::T(t) => match self.read_temp(t)? {
                (Ty::I, r) => IOpnd::Reg(r),
                (Ty::F, r) => IOpnd::FReg(r),
            },
            Opnd::S(v) => match self.scalar_reg(v)? {
                (Ty::I, r) => IOpnd::Reg(r),
                (Ty::F, r) => IOpnd::FReg(r),
            },
            Opnd::I(c) => IOpnd::Const(c),
            // `Value::as_int` truncation, folded at compile time.
            Opnd::R(c) => IOpnd::Const(c as i64),
        })
    }

    fn fopnd(&mut self, o: Opnd) -> Option<FOpnd> {
        Some(match o {
            Opnd::T(t) => match self.read_temp(t)? {
                (Ty::I, r) => FOpnd::IReg(r),
                (Ty::F, r) => FOpnd::Reg(r),
            },
            Opnd::S(v) => match self.scalar_reg(v)? {
                (Ty::I, r) => FOpnd::IReg(r),
                (Ty::F, r) => FOpnd::Reg(r),
            },
            Opnd::I(c) => FOpnd::Const(c as f64),
            Opnd::R(c) => FOpnd::Const(c),
        })
    }

    /// An integer-plane register read (jump conditions, append
    /// pointers); `None` if the value lives in the float plane.
    fn ireg(&mut self, t: u16) -> Option<u16> {
        match self.read_temp(t)? {
            (Ty::I, r) => Some(r),
            (Ty::F, _) => None,
        }
    }

    fn build(mut self) -> Option<FastBody> {
        self.infer()?;
        let cb = self.cb;
        let (root_ty, root_reg) = self.scalar_reg(cb.root_var)?;
        let mut blocks = Vec::with_capacity(cb.blocks.len());
        for b in 0..cb.blocks.len() {
            blocks.push(self.build_block(b)?);
        }
        let mut iscalars = Vec::new();
        let mut fscalars = Vec::new();
        let mut entries: Vec<(VarId, (Ty, u16))> =
            self.smap.iter().map(|(v, e)| (*v, *e)).collect();
        entries.sort_by_key(|(v, _)| v.index());
        for (v, (ty, r)) in entries {
            match ty {
                Ty::I => iscalars.push((v, r)),
                Ty::F => fscalars.push((v, r)),
            }
        }
        let mut fb = FastBody {
            blocks,
            root: cb.root,
            n_iregs: self.n_iregs,
            n_fregs: self.n_fregs,
            iscalars,
            fscalars,
            arrays: self.arrays,
            loop_stmts: self.loop_stmts,
            root_reg,
            root_real: root_ty == Ty::F,
        };
        peephole(&mut fb);
        Some(fb)
    }

    /// Translates one block, remapping jump targets and running local
    /// value numbering over the pure ops.
    fn build_block(&mut self, b: usize) -> Option<Vec<FOp>> {
        let ops = &self.cb.blocks[b];
        // Join points: value availability must not cross a label.
        let mut labels = vec![false; ops.len() + 1];
        for op in ops {
            if let Op::Jump { target }
            | Op::JumpIfZero { target, .. }
            | Op::JumpIfNonZero { target, .. } = op
            {
                labels[*target as usize] = true;
            }
        }
        let mut out: Vec<FOp> = Vec::with_capacity(ops.len());
        // New position of each original op (plus one-past-the-end).
        let mut pos = vec![0u32; ops.len() + 1];
        let mut avail: HashMap<VnKey, (Ty, u16)> = HashMap::new();
        for (k, op) in ops.iter().enumerate() {
            pos[k] = out.len() as u32;
            if labels[k] {
                avail.clear();
            }
            self.translate(op, &mut out, &mut avail)?;
        }
        pos[ops.len()] = out.len() as u32;
        for fop in &mut out {
            match fop {
                FOp::Jump { target }
                | FOp::JumpIfZero { target, .. }
                | FOp::JumpIfNonZero { target, .. } => *target = pos[*target as usize],
                _ => {}
            }
        }
        Some(out)
    }

    /// Drops value-numbering entries invalidated by a write to
    /// register `r` of plane `ty`.
    fn kill_reg(avail: &mut HashMap<VnKey, (Ty, u16)>, ty: Ty, r: u16) {
        let uses_i = |o: &IOpnd| match (ty, o) {
            (Ty::I, IOpnd::Reg(x)) | (Ty::F, IOpnd::FReg(x)) => *x == r,
            _ => false,
        };
        let uses_f = |o: &FBits| match (ty, o) {
            (Ty::F, FBits::Reg(x)) | (Ty::I, FBits::IReg(x)) => *x == r,
            _ => false,
        };
        avail.retain(|k, v| {
            if *v == (ty, r) {
                return false;
            }
            !match k {
                VnKey::BinI(_, a, b) => uses_i(a) || uses_i(b),
                VnKey::BinF(_, a, b) => uses_f(a) || uses_f(b),
                VnKey::LoadAff(_, base, _) => ty == Ty::I && *base == r,
                VnKey::LoadElem(_, s) | VnKey::Gather(_, _, s) => uses_i(s),
            }
        });
    }

    /// Drops value-numbering entries that load from array `slot`.
    fn kill_slot(avail: &mut HashMap<VnKey, (Ty, u16)>, slot: u16) {
        avail.retain(|k, _| match k {
            VnKey::LoadAff(s, ..) | VnKey::LoadElem(s, _) => *s != slot,
            VnKey::Gather(s, is, _) => *s != slot && *is != slot,
            _ => true,
        });
    }

    /// Emits a pure op unless an identical value is already available;
    /// either way the result register is recorded for reuse.
    #[allow(clippy::too_many_arguments)]
    fn emit_vn(
        &mut self,
        out: &mut Vec<FOp>,
        avail: &mut HashMap<VnKey, (Ty, u16)>,
        key: VnKey,
        dst_temp: u16,
        ty: Ty,
        dst: u16,
        fop: FOp,
    ) {
        if self.temp_writes[dst_temp as usize] == 1 {
            if let Some(&(pty, prev)) = avail.get(&key) {
                if pty == ty {
                    match ty {
                        Ty::I => self.subst_i.insert(dst, prev),
                        Ty::F => self.subst_f.insert(dst, prev),
                    };
                    return;
                }
            }
            avail.insert(key, (ty, dst));
        } else {
            Self::kill_reg(avail, ty, dst);
        }
        out.push(fop);
    }

    fn translate(
        &mut self,
        op: &Op,
        out: &mut Vec<FOp>,
        avail: &mut HashMap<VnKey, (Ty, u16)>,
    ) -> Option<()> {
        match op {
            Op::Charge(n) => out.push(FOp::Charge(*n)),
            Op::Mov { dst, src } => {
                let (ty, d) = self.temp_reg(*dst)?;
                Self::kill_reg(avail, ty, d);
                match ty {
                    Ty::I => {
                        let s = self.iopnd(*src)?;
                        out.push(FOp::MovI { dst: d, src: s });
                    }
                    Ty::F => {
                        let s = self.fopnd(*src)?;
                        out.push(FOp::MovF { dst: d, src: s });
                    }
                }
            }
            Op::Bin { op, dst, a, b } => {
                let (ty, d) = self.temp_reg(*dst)?;
                match ty {
                    Ty::I => {
                        let (x, y) = (self.iopnd(*a)?, self.iopnd(*b)?);
                        self.emit_vn(
                            out,
                            avail,
                            VnKey::BinI(*op, x, y),
                            *dst,
                            ty,
                            d,
                            FOp::BinI {
                                op: *op,
                                dst: d,
                                a: x,
                                b: y,
                            },
                        );
                    }
                    Ty::F => {
                        let (x, y) = (self.fopnd(*a)?, self.fopnd(*b)?);
                        self.emit_vn(
                            out,
                            avail,
                            VnKey::BinF(*op, fbits(x), fbits(y)),
                            *dst,
                            ty,
                            d,
                            FOp::BinF {
                                op: *op,
                                dst: d,
                                a: x,
                                b: y,
                            },
                        );
                    }
                }
            }
            Op::Neg { dst, src } => {
                let (ty, d) = self.temp_reg(*dst)?;
                Self::kill_reg(avail, ty, d);
                match ty {
                    Ty::I => {
                        let s = self.iopnd(*src)?;
                        out.push(FOp::NegI { dst: d, src: s });
                    }
                    Ty::F => {
                        let s = self.fopnd(*src)?;
                        out.push(FOp::NegF { dst: d, src: s });
                    }
                }
            }
            Op::Cmp { op, dst, a, b } => {
                let (_, d) = self.temp_reg(*dst)?;
                Self::kill_reg(avail, Ty::I, d);
                // eval_cond: exact integer compare only when both
                // sides are integers.
                if self.join(*a, *b)? == Ty::I {
                    let (x, y) = (self.iopnd(*a)?, self.iopnd(*b)?);
                    out.push(FOp::CmpI {
                        op: *op,
                        dst: d,
                        a: x,
                        b: y,
                    });
                } else {
                    let (x, y) = (self.fopnd(*a)?, self.fopnd(*b)?);
                    out.push(FOp::CmpF {
                        op: *op,
                        dst: d,
                        a: x,
                        b: y,
                    });
                }
            }
            Op::Truthy { dst, src } => {
                let (_, d) = self.temp_reg(*dst)?;
                Self::kill_reg(avail, Ty::I, d);
                match self.opnd_ty(*src)? {
                    Ty::I => {
                        let s = self.iopnd(*src)?;
                        out.push(FOp::TruthyI { dst: d, src: s });
                    }
                    Ty::F => {
                        let s = self.fopnd(*src)?;
                        out.push(FOp::TruthyF { dst: d, src: s });
                    }
                }
            }
            Op::Not { t } => {
                let r = self.ireg(*t)?;
                Self::kill_reg(avail, Ty::I, r);
                out.push(FOp::Not { t: r });
            }
            Op::Intr1 { f, dst, a } => {
                let (ty, d) = self.temp_reg(*dst)?;
                Self::kill_reg(avail, ty, d);
                match f {
                    Intrinsic::Abs => match ty {
                        Ty::I => {
                            let s = self.iopnd(*a)?;
                            out.push(FOp::AbsI { dst: d, src: s });
                        }
                        Ty::F => {
                            let s = self.fopnd(*a)?;
                            out.push(FOp::AbsF { dst: d, src: s });
                        }
                    },
                    Intrinsic::Int => {
                        let s = self.iopnd(*a)?;
                        out.push(FOp::MovI { dst: d, src: s });
                    }
                    Intrinsic::Real => {
                        let s = self.fopnd(*a)?;
                        out.push(FOp::MovF { dst: d, src: s });
                    }
                    Intrinsic::Sqrt
                    | Intrinsic::Sin
                    | Intrinsic::Cos
                    | Intrinsic::Exp
                    | Intrinsic::Log => {
                        let s = self.fopnd(*a)?;
                        out.push(FOp::Real1 {
                            f: *f,
                            dst: d,
                            src: s,
                        });
                    }
                    _ => return None,
                }
            }
            Op::Intr2 { f, dst, a, b } => {
                let (ty, d) = self.temp_reg(*dst)?;
                Self::kill_reg(avail, ty, d);
                match f {
                    Intrinsic::Min | Intrinsic::Max => {
                        let max = matches!(f, Intrinsic::Max);
                        match ty {
                            Ty::I => {
                                let (x, y) = (self.iopnd(*a)?, self.iopnd(*b)?);
                                out.push(FOp::MinMaxI {
                                    max,
                                    dst: d,
                                    a: x,
                                    b: y,
                                });
                            }
                            Ty::F => {
                                let (x, y) = (self.fopnd(*a)?, self.fopnd(*b)?);
                                out.push(FOp::MinMaxF {
                                    max,
                                    dst: d,
                                    a: x,
                                    b: y,
                                });
                            }
                        }
                    }
                    Intrinsic::Mod => match ty {
                        Ty::I => {
                            let (x, y) = (self.iopnd(*a)?, self.iopnd(*b)?);
                            self.emit_vn(
                                out,
                                avail,
                                VnKey::BinI(BinOp::Mod, x, y),
                                *dst,
                                ty,
                                d,
                                FOp::BinI {
                                    op: BinOp::Mod,
                                    dst: d,
                                    a: x,
                                    b: y,
                                },
                            );
                        }
                        Ty::F => {
                            let (x, y) = (self.fopnd(*a)?, self.fopnd(*b)?);
                            out.push(FOp::BinF {
                                op: BinOp::Mod,
                                dst: d,
                                a: x,
                                b: y,
                            });
                        }
                    },
                    _ => return None,
                }
            }
            Op::Jump { target } => out.push(FOp::Jump { target: *target }),
            Op::JumpIfZero { src, target } => {
                let r = self.ireg(*src)?;
                out.push(FOp::JumpIfZero {
                    src: r,
                    target: *target,
                });
            }
            Op::JumpIfNonZero { src, target } => {
                let r = self.ireg(*src)?;
                out.push(FOp::JumpIfNonZero {
                    src: r,
                    target: *target,
                });
            }
            // Every referenced array is materialized before entry (the
            // eligibility check), so ensures compile away entirely.
            Op::Ensure { arr } => {
                self.slot(*arr)?;
            }
            Op::IndexN { arr, base, n, dst } => {
                let slot = self.slot(*arr)?;
                let (_, d) = self.temp_reg(*dst)?;
                Self::kill_reg(avail, Ty::I, d);
                let mut subs = Vec::with_capacity(*n as usize);
                for k in 0..*n as usize {
                    subs.push(self.iopnd(Opnd::T(*base + k as u16))?);
                }
                out.push(FOp::IndexN {
                    slot,
                    subs: subs.into_boxed_slice(),
                    dst: d,
                });
            }
            Op::LoadAt { arr, idx, dst } => {
                let slot = self.slot(*arr)?;
                let i = self.ireg(*idx)?;
                let (ty, d) = self.temp_reg(*dst)?;
                Self::kill_reg(avail, ty, d);
                out.push(match ty {
                    Ty::I => FOp::LoadAtI {
                        slot,
                        idx: i,
                        dst: d,
                    },
                    Ty::F => FOp::LoadAtF {
                        slot,
                        idx: i,
                        dst: d,
                    },
                });
            }
            Op::StoreAt { arr, idx, src } => {
                let slot = self.slot(*arr)?;
                let i = self.ireg(*idx)?;
                Self::kill_slot(avail, slot);
                out.push(match self.ety(*arr) {
                    Ty::I => FOp::StoreAtI {
                        slot,
                        idx: i,
                        src: self.iopnd(*src)?,
                    },
                    Ty::F => FOp::StoreAtF {
                        slot,
                        idx: i,
                        src: self.fopnd(*src)?,
                    },
                });
            }
            Op::LoadElem1 { arr, sub, dst } => {
                let slot = self.slot(*arr)?;
                let s = self.iopnd(*sub)?;
                let (ty, d) = self.temp_reg(*dst)?;
                let fop = match ty {
                    Ty::I => FOp::LoadElemI {
                        slot,
                        sub: s,
                        dst: d,
                    },
                    Ty::F => FOp::LoadElemF {
                        slot,
                        sub: s,
                        dst: d,
                    },
                };
                self.emit_vn(out, avail, VnKey::LoadElem(slot, s), *dst, ty, d, fop);
            }
            Op::StoreElem1 { arr, sub, src } => {
                let slot = self.slot(*arr)?;
                let s = self.iopnd(*sub)?;
                Self::kill_slot(avail, slot);
                out.push(match self.ety(*arr) {
                    Ty::I => FOp::StoreElemI {
                        slot,
                        sub: s,
                        src: self.iopnd(*src)?,
                    },
                    Ty::F => FOp::StoreElemF {
                        slot,
                        sub: s,
                        src: self.fopnd(*src)?,
                    },
                });
            }
            Op::LoadAffine {
                arr,
                base,
                off,
                dst,
            } => {
                let slot = self.slot(*arr)?;
                // The fused base is an int-declared scalar by
                // construction.
                let (bty, br) = self.scalar_reg(*base)?;
                if bty != Ty::I {
                    return None;
                }
                let (ty, d) = self.temp_reg(*dst)?;
                let fop = match ty {
                    Ty::I => FOp::LoadAffI {
                        slot,
                        base: br,
                        off: *off,
                        dst: d,
                    },
                    Ty::F => FOp::LoadAffF {
                        slot,
                        base: br,
                        off: *off,
                        dst: d,
                    },
                };
                self.emit_vn(out, avail, VnKey::LoadAff(slot, br, *off), *dst, ty, d, fop);
            }
            Op::StoreAffine {
                arr,
                base,
                off,
                src,
            } => {
                let slot = self.slot(*arr)?;
                let (bty, br) = self.scalar_reg(*base)?;
                if bty != Ty::I {
                    return None;
                }
                Self::kill_slot(avail, slot);
                out.push(match self.ety(*arr) {
                    Ty::I => FOp::StoreAffI {
                        slot,
                        base: br,
                        off: *off,
                        src: self.iopnd(*src)?,
                    },
                    Ty::F => FOp::StoreAffF {
                        slot,
                        base: br,
                        off: *off,
                        src: self.fopnd(*src)?,
                    },
                });
            }
            Op::Gather {
                arr,
                idx_arr,
                sub,
                dst,
            } => {
                let slot = self.slot(*arr)?;
                let idx_slot = self.slot(*idx_arr)?;
                let s = self.iopnd(*sub)?;
                let (ty, d) = self.temp_reg(*dst)?;
                let fop = match ty {
                    Ty::I => FOp::GatherI {
                        slot,
                        idx_slot,
                        sub: s,
                        dst: d,
                    },
                    Ty::F => FOp::GatherF {
                        slot,
                        idx_slot,
                        sub: s,
                        dst: d,
                    },
                };
                self.emit_vn(
                    out,
                    avail,
                    VnKey::Gather(slot, idx_slot, s),
                    *dst,
                    ty,
                    d,
                    fop,
                );
            }
            Op::Scatter {
                arr,
                idx_arr,
                sub,
                src,
            } => {
                let slot = self.slot(*arr)?;
                let idx_slot = self.slot(*idx_arr)?;
                let s = self.iopnd(*sub)?;
                Self::kill_slot(avail, slot);
                out.push(match self.ety(*arr) {
                    Ty::I => FOp::ScatterI {
                        slot,
                        idx_slot,
                        sub: s,
                        src: self.iopnd(*src)?,
                    },
                    Ty::F => FOp::ScatterF {
                        slot,
                        idx_slot,
                        sub: s,
                        src: self.fopnd(*src)?,
                    },
                });
            }
            Op::SetScalar { var, src, .. } => {
                let (ty, r) = self.scalar_reg(*var)?;
                Self::kill_reg(avail, ty, r);
                // set_scalar's declared-type coercion is the operand
                // conversion.
                out.push(match ty {
                    Ty::I => FOp::MovI {
                        dst: r,
                        src: self.iopnd(*src)?,
                    },
                    Ty::F => FOp::MovF {
                        dst: r,
                        src: self.fopnd(*src)?,
                    },
                });
            }
            Op::Accum {
                var, op, rev, src, ..
            } => {
                let (ty, r) = self.scalar_reg(*var)?;
                Self::kill_reg(avail, ty, r);
                let src_ty = self.opnd_ty(*src)?;
                match (ty, src_ty) {
                    (Ty::I, Ty::I) => {
                        let s = self.iopnd(*src)?;
                        let (a, b) = if *rev {
                            (s, IOpnd::Reg(r))
                        } else {
                            (IOpnd::Reg(r), s)
                        };
                        out.push(FOp::BinI {
                            op: *op,
                            dst: r,
                            a,
                            b,
                        });
                    }
                    (Ty::I, Ty::F) => {
                        // Mixed accumulate into an integer scalar:
                        // real-promoted arithmetic, then the
                        // set_scalar truncation.
                        let s = self.fopnd(*src)?;
                        let t = self.alloc(Ty::F)?;
                        let (a, b) = if *rev {
                            (s, FOpnd::IReg(r))
                        } else {
                            (FOpnd::IReg(r), s)
                        };
                        out.push(FOp::BinF {
                            op: *op,
                            dst: t,
                            a,
                            b,
                        });
                        out.push(FOp::MovI {
                            dst: r,
                            src: IOpnd::FReg(t),
                        });
                    }
                    (Ty::F, _) => {
                        let s = self.fopnd(*src)?;
                        let (a, b) = if *rev {
                            (s, FOpnd::Reg(r))
                        } else {
                            (FOpnd::Reg(r), s)
                        };
                        out.push(FOp::BinF {
                            op: *op,
                            dst: r,
                            a,
                            b,
                        });
                    }
                }
            }
            Op::Append { arr, ptr, src, .. } => {
                let slot = self.slot(*arr)?;
                // The fused pointer is int-declared by construction.
                let (pty, pr) = self.scalar_reg(*ptr)?;
                if pty != Ty::I {
                    return None;
                }
                Self::kill_slot(avail, slot);
                Self::kill_reg(avail, Ty::I, pr);
                out.push(match self.ety(*arr) {
                    Ty::I => FOp::AppendI {
                        slot,
                        ptr: pr,
                        src: self.iopnd(*src)?,
                    },
                    Ty::F => FOp::AppendF {
                        slot,
                        ptr: pr,
                        src: self.fopnd(*src)?,
                    },
                });
            }
            Op::DoLoop {
                var,
                stmt,
                lo,
                hi,
                step,
                body,
                ..
            } => {
                let (vty, vr) = self.scalar_reg(*var)?;
                let (lo, hi, step) = (self.iopnd(*lo)?, self.iopnd(*hi)?, self.iopnd(*step)?);
                let lidx = self.loop_idx(*stmt)?;
                avail.clear();
                out.push(FOp::DoLoop {
                    var: vr,
                    var_real: vty == Ty::F,
                    lidx,
                    lo,
                    hi,
                    step,
                    body: *body,
                });
            }
            Op::WhileLoop {
                stmt,
                cond,
                cond_temp,
                body,
            } => {
                let ct = self.ireg(*cond_temp)?;
                let lidx = self.loop_idx(*stmt)?;
                avail.clear();
                out.push(FOp::WhileLoop {
                    lidx,
                    cond: *cond,
                    cond_temp: ct,
                    body: *body,
                });
            }
        }
        Some(())
    }
}

/// Per-plane register read/write counts plus the registers whose
/// values are observable outside the bytecode (promoted scalars are
/// written back at exit; the root induction register is driven by the
/// outer loop). Fusion may only erase a register that is written once,
/// read once, and not externally observable.
struct RegUse {
    ird: Vec<u32>,
    iwr: Vec<u32>,
    frd: Vec<u32>,
    fwr: Vec<u32>,
    ipin: Vec<bool>,
    fpin: Vec<bool>,
}

impl RegUse {
    fn scan(fb: &FastBody) -> RegUse {
        let mut u = RegUse {
            ird: vec![0; fb.n_iregs as usize],
            iwr: vec![0; fb.n_iregs as usize],
            frd: vec![0; fb.n_fregs as usize],
            fwr: vec![0; fb.n_fregs as usize],
            ipin: vec![false; fb.n_iregs as usize],
            fpin: vec![false; fb.n_fregs as usize],
        };
        for &(_, r) in &fb.iscalars {
            u.ipin[r as usize] = true;
        }
        for &(_, r) in &fb.fscalars {
            u.fpin[r as usize] = true;
        }
        if fb.root_real {
            u.fpin[fb.root_reg as usize] = true;
        } else {
            u.ipin[fb.root_reg as usize] = true;
        }
        for b in &fb.blocks {
            for op in b {
                u.count(op);
            }
        }
        u
    }

    fn rd_i(&mut self, o: IOpnd) {
        match o {
            IOpnd::Reg(r) => self.ird[r as usize] += 1,
            IOpnd::FReg(r) => self.frd[r as usize] += 1,
            IOpnd::Const(_) => {}
        }
    }

    fn rd_f(&mut self, o: FOpnd) {
        match o {
            FOpnd::Reg(r) => self.frd[r as usize] += 1,
            FOpnd::IReg(r) => self.ird[r as usize] += 1,
            FOpnd::Const(_) => {}
        }
    }

    fn count(&mut self, op: &FOp) {
        match op {
            FOp::Charge(_) | FOp::Jump { .. } => {}
            FOp::MovI { dst, src } => {
                self.rd_i(*src);
                self.iwr[*dst as usize] += 1;
            }
            FOp::MovF { dst, src } => {
                self.rd_f(*src);
                self.fwr[*dst as usize] += 1;
            }
            FOp::BinI { dst, a, b, .. } | FOp::CmpI { dst, a, b, .. } => {
                self.rd_i(*a);
                self.rd_i(*b);
                self.iwr[*dst as usize] += 1;
            }
            FOp::MinMaxI { dst, a, b, .. } => {
                self.rd_i(*a);
                self.rd_i(*b);
                self.iwr[*dst as usize] += 1;
            }
            FOp::BinF { dst, a, b, .. } | FOp::MinMaxF { dst, a, b, .. } => {
                self.rd_f(*a);
                self.rd_f(*b);
                self.fwr[*dst as usize] += 1;
            }
            FOp::CmpF { dst, a, b, .. } => {
                self.rd_f(*a);
                self.rd_f(*b);
                self.iwr[*dst as usize] += 1;
            }
            FOp::NegI { dst, src } | FOp::AbsI { dst, src } => {
                self.rd_i(*src);
                self.iwr[*dst as usize] += 1;
            }
            FOp::NegF { dst, src } | FOp::AbsF { dst, src } => {
                self.rd_f(*src);
                self.fwr[*dst as usize] += 1;
            }
            FOp::TruthyI { dst, src } => {
                self.rd_i(*src);
                self.iwr[*dst as usize] += 1;
            }
            FOp::TruthyF { dst, src } => {
                self.rd_f(*src);
                self.iwr[*dst as usize] += 1;
            }
            FOp::Not { t } => {
                self.ird[*t as usize] += 1;
                self.iwr[*t as usize] += 1;
            }
            FOp::Real1 { dst, src, .. } => {
                self.rd_f(*src);
                self.fwr[*dst as usize] += 1;
            }
            FOp::JumpIfZero { src, .. } | FOp::JumpIfNonZero { src, .. } => {
                self.ird[*src as usize] += 1;
            }
            FOp::IndexN { subs, dst, .. } => {
                for &s in subs.iter() {
                    self.rd_i(s);
                }
                self.iwr[*dst as usize] += 1;
            }
            FOp::LoadAtI { idx, dst, .. } => {
                self.ird[*idx as usize] += 1;
                self.iwr[*dst as usize] += 1;
            }
            FOp::LoadAtF { idx, dst, .. } => {
                self.ird[*idx as usize] += 1;
                self.fwr[*dst as usize] += 1;
            }
            FOp::StoreAtI { idx, src, .. } => {
                self.ird[*idx as usize] += 1;
                self.rd_i(*src);
            }
            FOp::StoreAtF { idx, src, .. } => {
                self.ird[*idx as usize] += 1;
                self.rd_f(*src);
            }
            FOp::LoadElemI { sub, dst, .. } | FOp::GatherI { sub, dst, .. } => {
                self.rd_i(*sub);
                self.iwr[*dst as usize] += 1;
            }
            FOp::LoadElemF { sub, dst, .. } | FOp::GatherF { sub, dst, .. } => {
                self.rd_i(*sub);
                self.fwr[*dst as usize] += 1;
            }
            FOp::StoreElemI { sub, src, .. } | FOp::ScatterI { sub, src, .. } => {
                self.rd_i(*sub);
                self.rd_i(*src);
            }
            FOp::StoreElemF { sub, src, .. } | FOp::ScatterF { sub, src, .. } => {
                self.rd_i(*sub);
                self.rd_f(*src);
            }
            FOp::LoadAffI { base, dst, .. } => {
                self.ird[*base as usize] += 1;
                self.iwr[*dst as usize] += 1;
            }
            FOp::LoadAffF { base, dst, .. } => {
                self.ird[*base as usize] += 1;
                self.fwr[*dst as usize] += 1;
            }
            FOp::StoreAffI { base, src, .. } => {
                self.ird[*base as usize] += 1;
                self.rd_i(*src);
            }
            FOp::StoreAffF { base, src, .. } => {
                self.ird[*base as usize] += 1;
                self.rd_f(*src);
            }
            FOp::AppendI { ptr, src, .. } => {
                self.ird[*ptr as usize] += 1;
                self.iwr[*ptr as usize] += 1;
                self.rd_i(*src);
            }
            FOp::AppendF { ptr, src, .. } => {
                self.ird[*ptr as usize] += 1;
                self.iwr[*ptr as usize] += 1;
                self.rd_f(*src);
            }
            FOp::LeaI { dst, a, b, .. } => {
                self.rd_i(*a);
                self.rd_i(*b);
                self.iwr[*dst as usize] += 1;
            }
            FOp::MulAddF { dst, a, b, c } => {
                self.rd_f(*a);
                self.rd_f(*b);
                self.rd_f(*c);
                self.fwr[*dst as usize] += 1;
            }
            FOp::DoLoop {
                var,
                var_real,
                lo,
                hi,
                step,
                ..
            } => {
                self.rd_i(*lo);
                self.rd_i(*hi);
                self.rd_i(*step);
                if *var_real {
                    self.fwr[*var as usize] += 1;
                } else {
                    self.iwr[*var as usize] += 1;
                }
            }
            FOp::WhileLoop { cond_temp, .. } => {
                self.ird[*cond_temp as usize] += 1;
            }
        }
    }

    /// A one-shot int-plane temp: safe to erase under fusion.
    fn ionce(&self, r: u16) -> bool {
        !self.ipin[r as usize] && self.iwr[r as usize] == 1 && self.ird[r as usize] == 1
    }

    /// A one-shot float-plane temp.
    fn fonce(&self, r: u16) -> bool {
        !self.fpin[r as usize] && self.fwr[r as usize] == 1 && self.frd[r as usize] == 1
    }
}

/// Fuses `first; second` into one op when `second` consumes a one-shot
/// temp that `first` defines. Every pattern pairs two ops whose fused
/// form charges nothing, errors at the same points with the same
/// identities, and rounds identically — so parity is preserved
/// op-for-op.
fn fuse_pair(first: &FOp, second: &FOp, u: &RegUse) -> Option<FOp> {
    match (first, second) {
        // add + add/sub-immediate → one three-term address computation
        // (all wrapping, so folding the immediate is exact mod 2^64).
        (
            FOp::BinI {
                op: BinOp::Add,
                dst: t,
                a,
                b,
            },
            FOp::BinI {
                op,
                dst,
                a: x,
                b: y,
            },
        ) if matches!(op, BinOp::Add | BinOp::Sub) && u.ionce(*t) => {
            let off = match (op, x, y) {
                (BinOp::Add, IOpnd::Reg(r), IOpnd::Const(c)) if r == t => *c,
                (BinOp::Add, IOpnd::Const(c), IOpnd::Reg(r)) if r == t => *c,
                (BinOp::Sub, IOpnd::Reg(r), IOpnd::Const(c)) if r == t => 0i64.wrapping_sub(*c),
                _ => return None,
            };
            Some(FOp::LeaI {
                dst: *dst,
                a: *a,
                b: *b,
                off,
            })
        }
        // indirection chain → gather: the fused op performs the same
        // two bounds checks in the same order with the same slots.
        (
            FOp::LoadElemI {
                slot: s1,
                sub,
                dst: t,
            },
            FOp::LoadElemI {
                slot: s2,
                sub: IOpnd::Reg(r),
                dst,
            },
        ) if r == t && u.ionce(*t) => Some(FOp::GatherI {
            slot: *s2,
            idx_slot: *s1,
            sub: *sub,
            dst: *dst,
        }),
        (
            FOp::LoadElemI {
                slot: s1,
                sub,
                dst: t,
            },
            FOp::LoadElemF {
                slot: s2,
                sub: IOpnd::Reg(r),
                dst,
            },
        ) if r == t && u.ionce(*t) => Some(FOp::GatherF {
            slot: *s2,
            idx_slot: *s1,
            sub: *sub,
            dst: *dst,
        }),
        // mul feeding the second operand of an add (operand order is
        // preserved — float add is not commuted, keeping NaN payloads
        // and signed zeros bit-exact).
        (
            FOp::BinF {
                op: BinOp::Mul,
                dst: t,
                a: mb,
                b: mc,
            },
            FOp::BinF {
                op: BinOp::Add,
                dst,
                a,
                b: FOpnd::Reg(r),
            },
        ) if r == t && u.fonce(*t) => Some(FOp::MulAddF {
            dst: *dst,
            a: *a,
            b: *mb,
            c: *mc,
        }),
        _ => None,
    }
}

/// Pairwise superinstruction fusion over a built [`FastBody`]. Runs
/// after value numbering, with global register-use counts, so a fused
/// temp is guaranteed dead; jump targets are remapped and no fusion
/// spans a jump target.
fn peephole(fb: &mut FastBody) {
    let u = RegUse::scan(fb);
    for ops in &mut fb.blocks {
        let mut is_target = vec![false; ops.len() + 1];
        for op in ops.iter() {
            if let FOp::Jump { target }
            | FOp::JumpIfZero { target, .. }
            | FOp::JumpIfNonZero { target, .. } = op
            {
                is_target[*target as usize] = true;
            }
        }
        let mut out: Vec<FOp> = Vec::with_capacity(ops.len());
        let mut newpos = vec![0u32; ops.len() + 1];
        let mut k = 0usize;
        while k < ops.len() {
            newpos[k] = out.len() as u32;
            if k + 1 < ops.len() && !is_target[k + 1] {
                if let Some(f) = fuse_pair(&ops[k], &ops[k + 1], &u) {
                    newpos[k + 1] = out.len() as u32;
                    out.push(f);
                    k += 2;
                    continue;
                }
            }
            out.push(ops[k].clone());
            k += 1;
        }
        newpos[ops.len()] = out.len() as u32;
        for op in &mut out {
            if let FOp::Jump { target }
            | FOp::JumpIfZero { target, .. }
            | FOp::JumpIfNonZero { target, .. } = op
            {
                *target = newpos[*target as usize];
            }
        }
        *ops = out;
    }
}

/// Raw view of one pinned array payload (see the untyped tier's `Pin`
/// for the safety argument: nothing in a compiled body can move a
/// payload, and pins never outlive one loop entry).
struct RawPin {
    ip: *mut i64,
    fp: *mut f64,
    is_int: bool,
    len: usize,
    /// First-dimension extent, cached flat for the hot bounds check.
    dim0: u64,
    dims: Vec<usize>,
    writes: u64,
}

impl RawPin {
    #[inline]
    fn rd_i(&self, k: usize) -> i64 {
        debug_assert!(self.is_int && k < self.len);
        unsafe { *self.ip.add(k) }
    }

    #[inline]
    fn rd_f(&self, k: usize) -> f64 {
        debug_assert!(!self.is_int && k < self.len);
        unsafe { *self.fp.add(k) }
    }

    /// An index-array element as an integer (`Value::as_int`).
    #[inline]
    fn rd_int(&self, k: usize) -> i64 {
        if self.is_int {
            self.rd_i(k)
        } else {
            self.rd_f(k) as i64
        }
    }

    #[inline]
    fn wr_i(&mut self, k: usize, v: i64) {
        debug_assert!(self.is_int && k < self.len);
        self.writes += 1;
        unsafe { *self.ip.add(k) = v }
    }

    #[inline]
    fn wr_f(&mut self, k: usize, v: f64) {
        debug_assert!(!self.is_int && k < self.len);
        self.writes += 1;
        unsafe { *self.fp.add(k) = v }
    }

    /// Bounds-checks a 1-based first-dimension subscript. The wrap to
    /// unsigned folds the `< 1` and `> extent` tests into one compare
    /// (negative and zero subscripts both wrap past any extent).
    #[inline]
    fn chk(&self, v: i64) -> Option<usize> {
        let k = (v as u64).wrapping_sub(1);
        if k >= self.dim0 {
            None
        } else {
            Some(k as usize)
        }
    }
}

/// Per-entry run state: the typed register planes, pinned payloads,
/// and the local fuel/cost ledger flushed back on every exit.
struct FState {
    ir: Vec<i64>,
    fr: Vec<f64>,
    pins: Vec<RawPin>,
    fuel: u64,
    spent: u64,
    /// Inner-loop entry counts, indexed by `lidx` (entries count even
    /// when the body errors, matching the tree walk).
    linv: Vec<u64>,
    /// Inner-loop attributed cost, indexed by `lidx` (completed
    /// entries only, matching the tree walk's error semantics).
    lcost: Vec<u64>,
}

impl FState {
    /// Mirrors `Interp::charge`: cost counts before the fuel check,
    /// and exhaustion leaves the failing charge undeducted.
    #[inline]
    fn charge(&mut self, n: u64) -> Result<(), ExecError> {
        self.spent += n;
        if self.fuel < n {
            return Err(ExecError::OutOfFuel);
        }
        self.fuel -= n;
        Ok(())
    }

    // Register and pin accessors skip the slice bounds checks: every
    // `u16` register number is handed out by `Builder::alloc` below
    // the plane sizes `FState` is built with, and every slot by
    // `Builder::slot` below `arrays.len()`, for which `run_fast_iters`
    // pins one payload each. The debug asserts keep that invariant
    // audited in debug builds.

    #[inline(always)]
    fn irg(&self, r: u16) -> i64 {
        debug_assert!((r as usize) < self.ir.len());
        unsafe { *self.ir.get_unchecked(r as usize) }
    }

    #[inline(always)]
    fn irs(&mut self, r: u16, v: i64) {
        debug_assert!((r as usize) < self.ir.len());
        unsafe { *self.ir.get_unchecked_mut(r as usize) = v }
    }

    #[inline(always)]
    fn frg(&self, r: u16) -> f64 {
        debug_assert!((r as usize) < self.fr.len());
        unsafe { *self.fr.get_unchecked(r as usize) }
    }

    #[inline(always)]
    fn frs(&mut self, r: u16, v: f64) {
        debug_assert!((r as usize) < self.fr.len());
        unsafe { *self.fr.get_unchecked_mut(r as usize) = v }
    }

    #[inline(always)]
    fn pinr(&self, s: u16) -> &RawPin {
        debug_assert!((s as usize) < self.pins.len());
        unsafe { self.pins.get_unchecked(s as usize) }
    }

    #[inline(always)]
    fn pinw(&mut self, s: u16) -> &mut RawPin {
        debug_assert!((s as usize) < self.pins.len());
        unsafe { self.pins.get_unchecked_mut(s as usize) }
    }

    #[inline]
    fn ird(&self, o: IOpnd) -> i64 {
        match o {
            IOpnd::Reg(r) => self.irg(r),
            IOpnd::Const(c) => c,
            IOpnd::FReg(r) => self.frg(r) as i64,
        }
    }

    #[inline]
    fn frd(&self, o: FOpnd) -> f64 {
        match o {
            FOpnd::Reg(r) => self.frg(r),
            FOpnd::Const(c) => c,
            FOpnd::IReg(r) => self.irg(r) as f64,
        }
    }
}

#[inline]
fn bin_i(op: BinOp, x: i64, y: i64) -> Result<i64, ExecError> {
    Ok(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err(ExecError::DivisionByZero);
            }
            x.div_euclid(y)
        }
        BinOp::Mod => {
            if y == 0 {
                return Err(ExecError::DivisionByZero);
            }
            x.rem_euclid(y)
        }
        _ => unreachable!("handled in lowering"),
    })
}

#[inline]
fn bin_f(op: BinOp, x: f64, y: f64) -> Result<f64, ExecError> {
    Ok(match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => {
            if y == 0.0 {
                return Err(ExecError::DivisionByZero);
            }
            x / y
        }
        BinOp::Mod => x.rem_euclid(y),
        _ => unreachable!("handled in lowering"),
    })
}

#[inline]
fn cmp_res(op: BinOp, ord: std::cmp::Ordering) -> i64 {
    use std::cmp::Ordering;
    (match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!("comparison"),
    }) as i64
}

impl<'p> Interp<'p> {
    /// Whether every array the typed body references is materialized
    /// — the precondition for pre-pinning (otherwise this entry runs
    /// on the untyped tier, which materializes in interpreter order).
    pub(crate) fn fast_ready(&self, fb: &FastBody) -> bool {
        fb.arrays.iter().all(|a| self.store.array_ref(*a).is_some())
    }

    #[cold]
    fn fast_oob(&self, fb: &FastBody, st: &FState, slot: u16, index: i64) -> ExecError {
        ExecError::OutOfBounds {
            array: self
                .program()
                .symbols
                .name(fb.arrays[slot as usize])
                .to_string(),
            index,
            extent: st.pins[slot as usize].dims[0],
        }
    }

    /// Executes the typed outermost loop: same observable semantics as
    /// [`Interp::run_compiled_loop`], with scalars promoted to
    /// registers and every array payload pinned for the whole entry.
    pub(crate) fn run_fast_body(
        &mut self,
        s: StmtId,
        fb: &FastBody,
        lo: i64,
        hi: i64,
        step: i64,
    ) -> Result<(), ExecError> {
        let entry = self.stats.loops.entry(s).or_default();
        entry.invocations += 1;
        let cost_at_entry = self.stats.total_cost;
        self.run_fast_iters(s, fb, lo, hi, step, cost_at_entry)
    }

    /// The iteration engine behind [`Interp::run_fast_body`], also the
    /// continuation target when the untyped tier switches over
    /// mid-loop (entry bookkeeping — the invocation count and the cost
    /// baseline — belongs to the caller in that case).
    pub(crate) fn run_fast_iters(
        &mut self,
        s: StmtId,
        fb: &FastBody,
        lo: i64,
        hi: i64,
        step: i64,
        cost_at_entry: u64,
    ) -> Result<(), ExecError> {
        let mut st = FState {
            ir: vec![0; fb.n_iregs as usize],
            fr: vec![0.0; fb.n_fregs as usize],
            pins: Vec::with_capacity(fb.arrays.len()),
            fuel: self.fuel,
            spent: 0,
            linv: vec![0; fb.loop_stmts.len()],
            lcost: vec![0; fb.loop_stmts.len()],
        };
        for &a in &fb.arrays {
            // Unique ownership once per entry — the clone a first
            // tree-walk write would have taken.
            let data = self.store.array_make_mut(a);
            let dims = data.dims().to_vec();
            st.pins.push(match data {
                ArrayData::Int { data, .. } => RawPin {
                    ip: data.as_mut_ptr(),
                    fp: std::ptr::null_mut(),
                    is_int: true,
                    len: data.len(),
                    dim0: dims[0] as u64,
                    dims,
                    writes: 0,
                },
                ArrayData::Real { data, .. } => RawPin {
                    ip: std::ptr::null_mut(),
                    fp: data.as_mut_ptr(),
                    is_int: false,
                    len: data.len(),
                    dim0: dims[0] as u64,
                    dims,
                    writes: 0,
                },
            });
        }
        for &(v, r) in &fb.iscalars {
            st.ir[r as usize] = self.store.scalar(v).as_int();
        }
        for &(v, r) in &fb.fscalars {
            st.fr[r as usize] = self.store.scalar(v).as_real();
        }
        let mut i = lo;
        let res = loop {
            if !((step > 0 && i <= hi) || (step < 0 && i >= hi)) {
                break Ok(());
            }
            if fb.root_real {
                st.fr[fb.root_reg as usize] = i as f64;
            } else {
                st.ir[fb.root_reg as usize] = i;
            }
            if let Err(e) = self.run_fblock(fb, fb.root, &mut st) {
                break Err(e);
            }
            if let Err(e) = st.charge(1) {
                break Err(e); // loop bookkeeping
            }
            i += step;
        };
        if res.is_ok() {
            // Fortran leaves the induction variable at the first
            // out-of-range value.
            if fb.root_real {
                st.fr[fb.root_reg as usize] = i as f64;
            } else {
                st.ir[fb.root_reg as usize] = i;
            }
        }
        // Flush on every exit — success or error — so observable
        // state is indistinguishable from per-access traffic.
        self.stats.total_cost += st.spent;
        self.fuel = st.fuel;
        for (k, p) in st.pins.iter().enumerate() {
            if p.writes > 0 {
                self.store.bump_version_by(fb.arrays[k], p.writes);
            }
        }
        for &(v, r) in &fb.iscalars {
            self.store
                .set_scalar(v, ScalarType::Int, Value::Int(st.ir[r as usize]));
        }
        for &(v, r) in &fb.fscalars {
            self.store
                .set_scalar(v, ScalarType::Real, Value::Real(st.fr[r as usize]));
        }
        // Dense counters fold into the per-loop map once per entry;
        // untouched loops get no entry, exactly like the tree walk.
        for (k, &stmt) in fb.loop_stmts.iter().enumerate() {
            if st.linv[k] > 0 {
                let e = self.stats.loops.entry(stmt).or_default();
                e.invocations += st.linv[k];
                e.total_cost += st.lcost[k];
            }
        }
        res?;
        let total = self.stats.total_cost - cost_at_entry;
        self.stats.loops.entry(s).or_default().total_cost += total;
        Ok(())
    }

    fn run_fblock(&self, fb: &FastBody, b: u16, st: &mut FState) -> Result<(), ExecError> {
        let ops = &fb.blocks[b as usize];
        let mut pc = 0usize;
        while pc < ops.len() {
            match &ops[pc] {
                FOp::Charge(n) => st.charge(*n)?,
                FOp::MovI { dst, src } => st.irs(*dst, st.ird(*src)),
                FOp::MovF { dst, src } => st.frs(*dst, st.frd(*src)),
                FOp::BinI { op, dst, a, b } => {
                    st.irs(*dst, bin_i(*op, st.ird(*a), st.ird(*b))?);
                }
                FOp::BinF { op, dst, a, b } => {
                    st.frs(*dst, bin_f(*op, st.frd(*a), st.frd(*b))?);
                }
                FOp::NegI { dst, src } => st.irs(*dst, -st.ird(*src)),
                FOp::NegF { dst, src } => st.frs(*dst, -st.frd(*src)),
                FOp::CmpI { op, dst, a, b } => {
                    st.irs(*dst, cmp_res(*op, st.ird(*a).cmp(&st.ird(*b))));
                }
                FOp::CmpF { op, dst, a, b } => {
                    let ord = st
                        .frd(*a)
                        .partial_cmp(&st.frd(*b))
                        .unwrap_or(std::cmp::Ordering::Equal);
                    st.irs(*dst, cmp_res(*op, ord));
                }
                FOp::TruthyI { dst, src } => st.irs(*dst, (st.ird(*src) != 0) as i64),
                FOp::TruthyF { dst, src } => st.irs(*dst, (st.frd(*src) != 0.0) as i64),
                FOp::Not { t } => {
                    st.irs(*t, (st.irg(*t) == 0) as i64);
                }
                FOp::MinMaxI { max, dst, a, b } => {
                    let (x, y) = (st.ird(*a), st.ird(*b));
                    st.irs(*dst, if *max { x.max(y) } else { x.min(y) });
                }
                FOp::MinMaxF { max, dst, a, b } => {
                    let (x, y) = (st.frd(*a), st.frd(*b));
                    st.frs(*dst, if *max { x.max(y) } else { x.min(y) });
                }
                FOp::AbsI { dst, src } => st.irs(*dst, st.ird(*src).abs()),
                FOp::AbsF { dst, src } => st.frs(*dst, st.frd(*src).abs()),
                FOp::Real1 { f, dst, src } => {
                    let x = st.frd(*src);
                    let v = match f {
                        Intrinsic::Sqrt => x.sqrt(),
                        Intrinsic::Sin => x.sin(),
                        Intrinsic::Cos => x.cos(),
                        Intrinsic::Exp => x.exp(),
                        Intrinsic::Log => x.ln(),
                        _ => unreachable!("specialized"),
                    };
                    st.frs(*dst, v);
                }
                FOp::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
                FOp::JumpIfZero { src, target } => {
                    if st.irg(*src) == 0 {
                        pc = *target as usize;
                        continue;
                    }
                }
                FOp::JumpIfNonZero { src, target } => {
                    if st.irg(*src) != 0 {
                        pc = *target as usize;
                        continue;
                    }
                }
                FOp::IndexN { slot, subs, dst } => {
                    let p = st.pinr(*slot);
                    let mut idx: usize = 0;
                    let mut stride: usize = 1;
                    for (k, sub) in subs.iter().enumerate() {
                        let v = st.ird(*sub);
                        let extent = p.dims[k];
                        if v < 1 || v as usize > extent {
                            return Err(self.fast_oob_dim(fb, *slot, v, extent));
                        }
                        idx += (v as usize - 1) * stride;
                        stride *= extent;
                    }
                    st.irs(*dst, idx as i64);
                }
                FOp::LoadAtI { slot, idx, dst } => {
                    let k = st.irg(*idx) as usize;
                    st.irs(*dst, st.pinr(*slot).rd_i(k));
                }
                FOp::LoadAtF { slot, idx, dst } => {
                    let k = st.irg(*idx) as usize;
                    st.frs(*dst, st.pinr(*slot).rd_f(k));
                }
                FOp::StoreAtI { slot, idx, src } => {
                    let k = st.irg(*idx) as usize;
                    let v = st.ird(*src);
                    st.pinw(*slot).wr_i(k, v);
                }
                FOp::StoreAtF { slot, idx, src } => {
                    let k = st.irg(*idx) as usize;
                    let v = st.frd(*src);
                    st.pinw(*slot).wr_f(k, v);
                }
                FOp::LoadElemI { slot, sub, dst } => {
                    let v = st.ird(*sub);
                    match st.pinr(*slot).chk(v) {
                        Some(k) => st.irs(*dst, st.pinr(*slot).rd_i(k)),
                        None => return Err(self.fast_oob(fb, st, *slot, v)),
                    }
                }
                FOp::LoadElemF { slot, sub, dst } => {
                    let v = st.ird(*sub);
                    match st.pinr(*slot).chk(v) {
                        Some(k) => st.frs(*dst, st.pinr(*slot).rd_f(k)),
                        None => return Err(self.fast_oob(fb, st, *slot, v)),
                    }
                }
                FOp::StoreElemI { slot, sub, src } => {
                    let v = st.ird(*sub);
                    let val = st.ird(*src);
                    match st.pinr(*slot).chk(v) {
                        Some(k) => st.pinw(*slot).wr_i(k, val),
                        None => return Err(self.fast_oob(fb, st, *slot, v)),
                    }
                }
                FOp::StoreElemF { slot, sub, src } => {
                    let v = st.ird(*sub);
                    let val = st.frd(*src);
                    match st.pinr(*slot).chk(v) {
                        Some(k) => st.pinw(*slot).wr_f(k, val),
                        None => return Err(self.fast_oob(fb, st, *slot, v)),
                    }
                }
                FOp::LoadAffI {
                    slot,
                    base,
                    off,
                    dst,
                } => {
                    let v = st.irg(*base).wrapping_add(*off);
                    match st.pinr(*slot).chk(v) {
                        Some(k) => st.irs(*dst, st.pinr(*slot).rd_i(k)),
                        None => return Err(self.fast_oob(fb, st, *slot, v)),
                    }
                }
                FOp::LoadAffF {
                    slot,
                    base,
                    off,
                    dst,
                } => {
                    let v = st.irg(*base).wrapping_add(*off);
                    match st.pinr(*slot).chk(v) {
                        Some(k) => st.frs(*dst, st.pinr(*slot).rd_f(k)),
                        None => return Err(self.fast_oob(fb, st, *slot, v)),
                    }
                }
                FOp::StoreAffI {
                    slot,
                    base,
                    off,
                    src,
                } => {
                    let v = st.irg(*base).wrapping_add(*off);
                    let val = st.ird(*src);
                    match st.pinr(*slot).chk(v) {
                        Some(k) => st.pinw(*slot).wr_i(k, val),
                        None => return Err(self.fast_oob(fb, st, *slot, v)),
                    }
                }
                FOp::StoreAffF {
                    slot,
                    base,
                    off,
                    src,
                } => {
                    let v = st.irg(*base).wrapping_add(*off);
                    let val = st.frd(*src);
                    match st.pinr(*slot).chk(v) {
                        Some(k) => st.pinw(*slot).wr_f(k, val),
                        None => return Err(self.fast_oob(fb, st, *slot, v)),
                    }
                }
                FOp::GatherI {
                    slot,
                    idx_slot,
                    sub,
                    dst,
                } => {
                    let sv = st.ird(*sub);
                    let ip = st.pinr(*idx_slot);
                    let v = match ip.chk(sv) {
                        Some(j) => ip.rd_int(j),
                        None => return Err(self.fast_oob(fb, st, *idx_slot, sv)),
                    };
                    match st.pinr(*slot).chk(v) {
                        Some(k) => st.irs(*dst, st.pinr(*slot).rd_i(k)),
                        None => return Err(self.fast_oob(fb, st, *slot, v)),
                    }
                }
                FOp::GatherF {
                    slot,
                    idx_slot,
                    sub,
                    dst,
                } => {
                    let sv = st.ird(*sub);
                    let ip = st.pinr(*idx_slot);
                    let v = match ip.chk(sv) {
                        Some(j) => ip.rd_int(j),
                        None => return Err(self.fast_oob(fb, st, *idx_slot, sv)),
                    };
                    match st.pinr(*slot).chk(v) {
                        Some(k) => st.frs(*dst, st.pinr(*slot).rd_f(k)),
                        None => return Err(self.fast_oob(fb, st, *slot, v)),
                    }
                }
                FOp::ScatterI {
                    slot,
                    idx_slot,
                    sub,
                    src,
                } => {
                    let sv = st.ird(*sub);
                    let ip = st.pinr(*idx_slot);
                    let v = match ip.chk(sv) {
                        Some(j) => ip.rd_int(j),
                        None => return Err(self.fast_oob(fb, st, *idx_slot, sv)),
                    };
                    let val = st.ird(*src);
                    match st.pinr(*slot).chk(v) {
                        Some(k) => st.pinw(*slot).wr_i(k, val),
                        None => return Err(self.fast_oob(fb, st, *slot, v)),
                    }
                }
                FOp::ScatterF {
                    slot,
                    idx_slot,
                    sub,
                    src,
                } => {
                    let sv = st.ird(*sub);
                    let ip = st.pinr(*idx_slot);
                    let v = match ip.chk(sv) {
                        Some(j) => ip.rd_int(j),
                        None => return Err(self.fast_oob(fb, st, *idx_slot, sv)),
                    };
                    let val = st.frd(*src);
                    match st.pinr(*slot).chk(v) {
                        Some(k) => st.pinw(*slot).wr_f(k, val),
                        None => return Err(self.fast_oob(fb, st, *slot, v)),
                    }
                }
                FOp::AppendI { slot, ptr, src } => {
                    let cur = st.irg(*ptr);
                    let val = st.ird(*src);
                    match st.pinr(*slot).chk(cur) {
                        Some(k) => st.pinw(*slot).wr_i(k, val),
                        None => return Err(self.fast_oob(fb, st, *slot, cur)),
                    }
                    // The fused increment's charge sits between the
                    // write and the pointer bump.
                    st.charge(1)?;
                    st.irs(*ptr, cur.wrapping_add(1));
                }
                FOp::AppendF { slot, ptr, src } => {
                    let cur = st.irg(*ptr);
                    let val = st.frd(*src);
                    match st.pinr(*slot).chk(cur) {
                        Some(k) => st.pinw(*slot).wr_f(k, val),
                        None => return Err(self.fast_oob(fb, st, *slot, cur)),
                    }
                    st.charge(1)?;
                    st.irs(*ptr, cur.wrapping_add(1));
                }
                FOp::LeaI { dst, a, b, off } => {
                    let v = st.ird(*a).wrapping_add(st.ird(*b)).wrapping_add(*off);
                    st.irs(*dst, v);
                }
                FOp::MulAddF { dst, a, b, c } => {
                    // Two roundings, exactly as the unfused ops.
                    let v = st.frd(*a) + st.frd(*b) * st.frd(*c);
                    st.frs(*dst, v);
                }
                FOp::DoLoop {
                    var,
                    var_real,
                    lidx,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    let lo = st.ird(*lo);
                    let hi = st.ird(*hi);
                    let stp = st.ird(*step);
                    if stp == 0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    st.linv[*lidx as usize] += 1;
                    let spent_at_entry = st.spent;
                    let mut i = lo;
                    while (stp > 0 && i <= hi) || (stp < 0 && i >= hi) {
                        if *var_real {
                            st.frs(*var, i as f64);
                        } else {
                            st.irs(*var, i);
                        }
                        self.run_fblock(fb, *body, st)?;
                        st.charge(1)?; // loop bookkeeping
                        i += stp;
                    }
                    if *var_real {
                        st.frs(*var, i as f64);
                    } else {
                        st.irs(*var, i);
                    }
                    st.lcost[*lidx as usize] += st.spent - spent_at_entry;
                }
                FOp::WhileLoop {
                    lidx,
                    cond,
                    cond_temp,
                    body,
                } => {
                    st.linv[*lidx as usize] += 1;
                    let spent_at_entry = st.spent;
                    loop {
                        self.run_fblock(fb, *cond, st)?;
                        if st.irg(*cond_temp) == 0 {
                            break;
                        }
                        st.charge(1)?;
                        self.run_fblock(fb, *body, st)?;
                    }
                    st.lcost[*lidx as usize] += st.spent - spent_at_entry;
                }
            }
            pc += 1;
        }
        Ok(())
    }

    #[cold]
    fn fast_oob_dim(&self, fb: &FastBody, slot: u16, index: i64, extent: usize) -> ExecError {
        ExecError::OutOfBounds {
            array: self
                .program()
                .symbols
                .name(fb.arrays[slot as usize])
                .to_string(),
            index,
            extent,
        }
    }
}
