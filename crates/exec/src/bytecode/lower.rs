//! AST → register bytecode lowering.
//!
//! The lowering is a pure function of the program: no store state is
//! consulted, so a [`CompiledBody`] is cached per loop `StmtId` for
//! the lifetime of the interpreter and shared (via `Arc`) with
//! parallel workers. Anything the executor cannot replay
//! bit-identically to the tree-walk rejects with a [`LowerReject`];
//! the dispatch site then falls back to the interpreter.
//!
//! Ordering rules the emitted code preserves (see the interpreter for
//! the authoritative semantics):
//!
//! - one [`Op::Charge`] per statement at its entry, nothing coalesced
//!   across potentially-faulting instructions;
//! - assignment right-hand sides evaluate before the target's
//!   `flat_index` (ensure, then subscripts, then bounds checks);
//! - [`Op::Ensure`] is emitted before subscript evaluation whenever
//!   the subscript itself can materialize an array, so materialization
//!   order (and with it the write log and the random-fill stream) is
//!   identical;
//! - condition short-circuiting skips the untaken operand's side
//!   effects exactly like `eval_cond`.

use super::{CompiledBody, Op, Opnd, ScalarLayout};
use irr_frontend::{BinOp, Expr, Intrinsic, LValue, Program, ScalarType, StmtId, StmtKind, UnOp};

/// Why a loop nest could not be lowered. The reason string is a stable
/// token for telemetry and tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LowerReject(pub &'static str);

type Lower<T> = Result<T, LowerReject>;

/// Lowers the `do` loop at `loop_stmt` (its body; the outer loop's
/// bound evaluation and induction control stay with the driver) into
/// a [`CompiledBody`].
///
/// # Errors
///
/// [`LowerReject`] when the nest contains a construct the bytecode
/// executor does not replicate bit-for-bit: procedure calls, `print`,
/// `return`, logical/comparison operators in numeric position,
/// intrinsics with too few arguments, subscripted scalars, or a nest
/// large enough to overflow the `u16` register file.
pub fn lower_do_loop(program: &Program, loop_stmt: StmtId) -> Lower<CompiledBody> {
    let StmtKind::Do { var, body, .. } = &program.stmt(loop_stmt).kind else {
        return Err(LowerReject("not-a-do-loop"));
    };
    let layout = ScalarLayout::new(program);
    let root_ty = layout.ty(*var);
    let mut l = Lowerer {
        program,
        layout,
        blocks: Vec::new(),
        n_temps: 0,
        loops: vec![loop_stmt],
    };
    let root = l.new_block();
    l.lower_stmts(root, body)?;
    Ok(CompiledBody {
        blocks: l.blocks,
        root: root as u16,
        n_temps: l.n_temps,
        root_var: *var,
        root_ty,
        loops: l.loops,
    })
}

struct Lowerer<'p> {
    program: &'p Program,
    layout: ScalarLayout,
    blocks: Vec<Vec<Op>>,
    n_temps: u16,
    loops: Vec<StmtId>,
}

impl<'p> Lowerer<'p> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Vec::new());
        let idx = self.blocks.len() - 1;
        if idx > u16::MAX as usize {
            // Unreachable in practice; kept as a guard for the u16
            // block indices.
            panic!("block count overflow");
        }
        idx
    }

    fn temp(&mut self) -> Lower<u16> {
        let t = self.n_temps;
        self.n_temps = self
            .n_temps
            .checked_add(1)
            .ok_or(LowerReject("register-file-overflow"))?;
        Ok(t)
    }

    fn emit(&mut self, b: usize, op: Op) -> usize {
        self.blocks[b].push(op);
        self.blocks[b].len() - 1
    }

    fn patch(&mut self, b: usize, at: usize) {
        let target = self.blocks[b].len() as u32;
        match &mut self.blocks[b][at] {
            Op::Jump { target: t }
            | Op::JumpIfZero { target: t, .. }
            | Op::JumpIfNonZero { target: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn lower_stmts(&mut self, b: usize, body: &[StmtId]) -> Lower<()> {
        let mut k = 0;
        while k < body.len() {
            // Append-through-pointer peephole: `a(p) = e` immediately
            // followed by `p = p + 1` fuses into one superinstruction
            // (the second statement's charge is replayed inside it).
            if k + 1 < body.len() {
                if let Some(()) = self.try_lower_append(b, body[k], body[k + 1])? {
                    k += 2;
                    continue;
                }
            }
            self.lower_stmt(b, body[k])?;
            k += 1;
        }
        Ok(())
    }

    /// `Some(())` when the two statements fused into [`Op::Append`].
    fn try_lower_append(&mut self, b: usize, s1: StmtId, s2: StmtId) -> Lower<Option<()>> {
        let StmtKind::Assign {
            lhs: LValue::Element(arr, subs),
            rhs,
        } = &self.program.stmt(s1).kind
        else {
            return Ok(None);
        };
        let [Expr::Var(p)] = subs.as_slice() else {
            return Ok(None);
        };
        let StmtKind::Assign {
            lhs: LValue::Scalar(p2),
            rhs: inc,
        } = &self.program.stmt(s2).kind
        else {
            return Ok(None);
        };
        let bumps = matches!(
            inc,
            Expr::Bin(BinOp::Add, x, y)
                if (x.is_var(*p) && y.as_int_lit() == Some(1))
                    || (y.is_var(*p) && x.as_int_lit() == Some(1))
        );
        if p2 != p
            || !bumps
            || self.layout.ty(*p) != ScalarType::Int
            || self.program.symbols.var(*arr).rank() != 1
        {
            return Ok(None);
        }
        self.emit(b, Op::Charge(1));
        let src = self.lower_expr(b, rhs)?;
        self.emit(
            b,
            Op::Append {
                arr: *arr,
                ptr: *p,
                ty: ScalarType::Int,
                src,
            },
        );
        Ok(Some(()))
    }

    fn lower_stmt(&mut self, b: usize, s: StmtId) -> Lower<()> {
        match &self.program.stmt(s).kind {
            StmtKind::Assign { lhs, rhs } => {
                self.emit(b, Op::Charge(1));
                match lhs {
                    LValue::Scalar(v) => {
                        let v = *v;
                        let ty = self.layout.ty(v);
                        // Reduction-accumulate peephole `s = s op e`
                        // (or `s = e op s`): the scalar read defers to
                        // the accumulate, which is safe — expressions
                        // cannot write scalars.
                        if let Expr::Bin(op @ (BinOp::Add | BinOp::Sub | BinOp::Mul), x, y) = rhs {
                            if x.is_var(v) {
                                let src = self.lower_expr(b, y)?;
                                self.emit(
                                    b,
                                    Op::Accum {
                                        var: v,
                                        ty,
                                        op: *op,
                                        rev: false,
                                        src,
                                    },
                                );
                                return Ok(());
                            }
                            if matches!(op, BinOp::Add | BinOp::Mul) && y.is_var(v) {
                                let src = self.lower_expr(b, x)?;
                                self.emit(
                                    b,
                                    Op::Accum {
                                        var: v,
                                        ty,
                                        op: *op,
                                        rev: true,
                                        src,
                                    },
                                );
                                return Ok(());
                            }
                        }
                        let src = self.lower_expr(b, rhs)?;
                        self.emit(b, Op::SetScalar { var: v, ty, src });
                    }
                    LValue::Element(a, subs) => {
                        // Interpreter order: right-hand side first,
                        // then the target's ensure + subscripts.
                        let src = self.lower_expr(b, rhs)?;
                        self.lower_element_store(b, *a, subs, src)?;
                    }
                }
                Ok(())
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.emit(b, Op::Charge(1));
                let t = self.temp()?;
                self.lower_cond(b, cond, t)?;
                let jf = self.emit(b, Op::JumpIfZero { src: t, target: 0 });
                self.lower_stmts(b, then_body)?;
                if else_body.is_empty() {
                    self.patch(b, jf);
                } else {
                    let jend = self.emit(b, Op::Jump { target: 0 });
                    self.patch(b, jf);
                    self.lower_stmts(b, else_body)?;
                    self.patch(b, jend);
                }
                Ok(())
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
                ..
            } => {
                self.emit(b, Op::Charge(1));
                let lo = self.lower_expr(b, lo)?;
                let hi = self.lower_expr(b, hi)?;
                let step = match step {
                    Some(e) => self.lower_expr(b, e)?,
                    None => Opnd::I(1),
                };
                self.loops.push(s);
                let body_b = self.new_block();
                self.lower_stmts(body_b, body)?;
                self.emit(
                    b,
                    Op::DoLoop {
                        var: *var,
                        ty: self.layout.ty(*var),
                        stmt: s,
                        lo,
                        hi,
                        step,
                        body: body_b as u16,
                    },
                );
                Ok(())
            }
            StmtKind::While { cond, body } => {
                self.emit(b, Op::Charge(1));
                self.loops.push(s);
                let cond_b = self.new_block();
                let t = self.temp()?;
                self.lower_cond(cond_b, cond, t)?;
                let body_b = self.new_block();
                self.lower_stmts(body_b, body)?;
                self.emit(
                    b,
                    Op::WhileLoop {
                        stmt: s,
                        cond: cond_b as u16,
                        cond_temp: t,
                        body: body_b as u16,
                    },
                );
                Ok(())
            }
            StmtKind::Call { .. } => Err(LowerReject("call")),
            StmtKind::Print { .. } => Err(LowerReject("print")),
            StmtKind::Return => Err(LowerReject("return")),
        }
    }

    /// Lowers a numeric expression; returns the operand holding its
    /// value. Emits nothing for literals and scalar reads.
    fn lower_expr(&mut self, b: usize, e: &Expr) -> Lower<Opnd> {
        match e {
            Expr::IntLit(v) => Ok(Opnd::I(*v)),
            Expr::RealLit(v) => Ok(Opnd::R(*v)),
            Expr::Var(v) => Ok(Opnd::S(*v)),
            Expr::Element(a, subs) => self.lower_element_load(b, *a, subs),
            Expr::Bin(op, x, y) => {
                if op.is_comparison() || op.is_logical() {
                    // The interpreter evaluates the left operand, then
                    // re-evaluates the whole expression as a condition
                    // — a double-evaluation quirk the bytecode does
                    // not replicate.
                    return Err(LowerReject("logical-in-numeric-position"));
                }
                let a = self.lower_expr(b, x)?;
                let bb = self.lower_expr(b, y)?;
                let dst = self.temp()?;
                self.emit(
                    b,
                    Op::Bin {
                        op: *op,
                        dst,
                        a,
                        b: bb,
                    },
                );
                Ok(Opnd::T(dst))
            }
            Expr::Un(UnOp::Neg, x) => {
                let src = self.lower_expr(b, x)?;
                let dst = self.temp()?;
                self.emit(b, Op::Neg { dst, src });
                Ok(Opnd::T(dst))
            }
            Expr::Un(UnOp::Not, _) => Err(LowerReject("not-in-numeric-position")),
            Expr::Call(f, args) => {
                let needed = match f {
                    Intrinsic::Min | Intrinsic::Max | Intrinsic::Mod => 2,
                    _ => 1,
                };
                if args.len() < needed {
                    // The interpreter panics on missing intrinsic
                    // arguments; the fallback preserves that.
                    return Err(LowerReject("intrinsic-arity"));
                }
                // Every argument is evaluated (for its side effects),
                // in order, even those past the intrinsic's arity.
                let mut opnds = Vec::with_capacity(args.len());
                for a in args {
                    opnds.push(self.lower_expr(b, a)?);
                }
                let dst = self.temp()?;
                if needed == 2 {
                    self.emit(
                        b,
                        Op::Intr2 {
                            f: *f,
                            dst,
                            a: opnds[0],
                            b: opnds[1],
                        },
                    );
                } else {
                    self.emit(
                        b,
                        Op::Intr1 {
                            f: *f,
                            dst,
                            a: opnds[0],
                        },
                    );
                }
                Ok(Opnd::T(dst))
            }
        }
    }

    /// Lowers a condition into 0/1 in temp `dst`, with `eval_cond`'s
    /// short-circuit structure.
    fn lower_cond(&mut self, b: usize, e: &Expr, dst: u16) -> Lower<()> {
        match e {
            Expr::Bin(op, x, y) if op.is_comparison() => {
                let a = self.lower_expr(b, x)?;
                let bb = self.lower_expr(b, y)?;
                self.emit(
                    b,
                    Op::Cmp {
                        op: *op,
                        dst,
                        a,
                        b: bb,
                    },
                );
                Ok(())
            }
            Expr::Bin(BinOp::And, x, y) => {
                self.lower_cond(b, x, dst)?;
                let j = self.emit(
                    b,
                    Op::JumpIfZero {
                        src: dst,
                        target: 0,
                    },
                );
                self.lower_cond(b, y, dst)?;
                self.patch(b, j);
                Ok(())
            }
            Expr::Bin(BinOp::Or, x, y) => {
                self.lower_cond(b, x, dst)?;
                let j = self.emit(
                    b,
                    Op::JumpIfNonZero {
                        src: dst,
                        target: 0,
                    },
                );
                self.lower_cond(b, y, dst)?;
                self.patch(b, j);
                Ok(())
            }
            Expr::Un(UnOp::Not, x) => {
                self.lower_cond(b, x, dst)?;
                self.emit(b, Op::Not { t: dst });
                Ok(())
            }
            other => {
                let src = self.lower_expr(b, other)?;
                self.emit(b, Op::Truthy { dst, src });
                Ok(())
            }
        }
    }

    /// Lowers an array element load, fusing the recognized access
    /// patterns into superinstructions.
    fn lower_element_load(
        &mut self,
        b: usize,
        a: irr_frontend::VarId,
        subs: &[Expr],
    ) -> Lower<Opnd> {
        let rank = self.program.symbols.var(a).rank();
        if rank == 0 || subs.is_empty() || subs.len() > rank {
            // Subscripted scalars and over-subscripted arrays panic in
            // the interpreter's flat_index; keep that behavior there.
            return Err(LowerReject("subscript-shape"));
        }
        if subs.len() == 1 {
            let dst = self.temp()?;
            if let Some(op) = self.fuse_sub1_load(a, &subs[0], dst) {
                self.emit(b, op);
                return Ok(Opnd::T(dst));
            }
            // General single-subscript access: the subscript expression
            // may itself materialize arrays, so ensure the target
            // first, exactly as flat_index would.
            self.emit(b, Op::Ensure { arr: a });
            let sub = self.lower_expr(b, &subs[0])?;
            self.emit(b, Op::LoadElem1 { arr: a, sub, dst });
            return Ok(Opnd::T(dst));
        }
        self.emit(b, Op::Ensure { arr: a });
        let base = self.lower_subscripts(b, subs)?;
        let idx = self.temp()?;
        self.emit(
            b,
            Op::IndexN {
                arr: a,
                base,
                n: subs.len() as u8,
                dst: idx,
            },
        );
        let dst = self.temp()?;
        self.emit(b, Op::LoadAt { arr: a, idx, dst });
        Ok(Opnd::T(dst))
    }

    fn lower_element_store(
        &mut self,
        b: usize,
        a: irr_frontend::VarId,
        subs: &[Expr],
        src: Opnd,
    ) -> Lower<()> {
        let rank = self.program.symbols.var(a).rank();
        if rank == 0 || subs.is_empty() || subs.len() > rank {
            return Err(LowerReject("subscript-shape"));
        }
        if subs.len() == 1 {
            if let Some(op) = self.fuse_sub1_store(a, &subs[0], src) {
                self.emit(b, op);
                return Ok(());
            }
            self.emit(b, Op::Ensure { arr: a });
            let sub = self.lower_expr(b, &subs[0])?;
            self.emit(b, Op::StoreElem1 { arr: a, sub, src });
            return Ok(());
        }
        self.emit(b, Op::Ensure { arr: a });
        let base = self.lower_subscripts(b, subs)?;
        let idx = self.temp()?;
        self.emit(
            b,
            Op::IndexN {
                arr: a,
                base,
                n: subs.len() as u8,
                dst: idx,
            },
        );
        self.emit(b, Op::StoreAt { arr: a, idx, src });
        Ok(())
    }

    /// Evaluates `subs` left-to-right, then moves the results into a
    /// fresh run of consecutive temps (the move is a pure register
    /// copy, so evaluation order is unchanged). Returns the base temp.
    fn lower_subscripts(&mut self, b: usize, subs: &[Expr]) -> Lower<u16> {
        let mut opnds = Vec::with_capacity(subs.len());
        for s in subs {
            opnds.push(self.lower_expr(b, s)?);
        }
        let base = self.n_temps;
        for o in opnds {
            let dst = self.temp()?;
            self.emit(b, Op::Mov { dst, src: o });
        }
        Ok(base)
    }

    /// The single-subscript superinstruction patterns. `None` sends
    /// the access down the general path. All fused subscript forms are
    /// side-effect-free, so the fused op's internal ensure still runs
    /// before any subscript evaluation.
    fn fuse_sub1_load(&self, a: irr_frontend::VarId, sub: &Expr, dst: u16) -> Option<Op> {
        match self.fused_sub(sub)? {
            FusedSub::Direct(opnd) => Some(Op::LoadElem1 {
                arr: a,
                sub: opnd,
                dst,
            }),
            FusedSub::Affine(base, off) => Some(Op::LoadAffine {
                arr: a,
                base,
                off,
                dst,
            }),
            FusedSub::Gather(idx_arr, opnd) => Some(Op::Gather {
                arr: a,
                idx_arr,
                sub: opnd,
                dst,
            }),
        }
    }

    fn fuse_sub1_store(&self, a: irr_frontend::VarId, sub: &Expr, src: Opnd) -> Option<Op> {
        match self.fused_sub(sub)? {
            FusedSub::Direct(opnd) => Some(Op::StoreElem1 {
                arr: a,
                sub: opnd,
                src,
            }),
            FusedSub::Affine(base, off) => Some(Op::StoreAffine {
                arr: a,
                base,
                off,
                src,
            }),
            FusedSub::Gather(idx_arr, opnd) => Some(Op::Scatter {
                arr: a,
                idx_arr,
                sub: opnd,
                src,
            }),
        }
    }

    fn fused_sub(&self, sub: &Expr) -> Option<FusedSub> {
        let int_scalar = |e: &Expr| match e {
            Expr::Var(v) if self.layout.ty(*v) == ScalarType::Int => Some(*v),
            _ => None,
        };
        let simple = |e: &Expr| match e {
            Expr::Var(v) => Some(Opnd::S(*v)),
            Expr::IntLit(c) => Some(Opnd::I(*c)),
            _ => None,
        };
        match sub {
            Expr::Var(v) => Some(FusedSub::Direct(Opnd::S(*v))),
            Expr::IntLit(c) => Some(FusedSub::Direct(Opnd::I(*c))),
            // Affine `v + c` / `c + v` / `v - c`: integer-typed base
            // only, so the wrapping integer add matches apply_bin.
            Expr::Bin(BinOp::Add, x, y) => match (int_scalar(x), y.as_int_lit()) {
                (Some(v), Some(c)) => Some(FusedSub::Affine(v, c)),
                _ => match (x.as_int_lit(), int_scalar(y)) {
                    (Some(c), Some(v)) => Some(FusedSub::Affine(v, c)),
                    _ => None,
                },
            },
            Expr::Bin(BinOp::Sub, x, y) => match (int_scalar(x), y.as_int_lit()) {
                (Some(v), Some(c)) => Some(FusedSub::Affine(v, c.checked_neg()?)),
                _ => None,
            },
            Expr::Element(idx_arr, inner) => {
                let [inner] = inner.as_slice() else {
                    return None;
                };
                if self.program.symbols.var(*idx_arr).rank() < 1 {
                    return None;
                }
                Some(FusedSub::Gather(*idx_arr, simple(inner)?))
            }
            _ => None,
        }
    }
}

enum FusedSub {
    Direct(Opnd),
    Affine(irr_frontend::VarId, i64),
    Gather(irr_frontend::VarId, Opnd),
}
