//! Compiled execution tier: a compact register bytecode for
//! verdict-annotated `do`-loop nests.
//!
//! The tree-walking interpreter pays for its instrumentation on every
//! AST node: enum dispatch per expression node, a `Vec<usize>` per
//! array access in `flat_index`, and symbol-table type lookups per
//! scalar write. For the loops the analysis already understands — the
//! sparse kernels and figure loops of the paper — none of that varies
//! between iterations. This module lowers such a loop nest **once**
//! into a flat register program ([`CompiledBody`]) and replays it with
//! a small dispatch loop:
//!
//! - **Registers, not a tree.** Expression temporaries live in one
//!   flat `Vec<Value>` register file sized at lowering; scalar
//!   variables are read and written directly through their dense store
//!   slots (the [`ScalarLayout`] pass — also used by the interpreter
//!   itself to retire per-access symbol-table type lookups).
//! - **Resolved array operands.** Array accesses carry their `VarId`
//!   slot and are bounds-checked against the live extents without
//!   allocating a subscript vector.
//! - **Superinstructions** for the proven patterns the analysis
//!   recognizes: affine store `a(i+c) = e` ([`Op::StoreAffine`]),
//!   gather through an index array `a(idx(i))` ([`Op::Gather`]) and
//!   its store dual ([`Op::Scatter`]), scalar reduction accumulate
//!   `s = s op e` ([`Op::Accum`]), and append-through-pointer
//!   `a(p) = e; p = p + 1` ([`Op::Append`]).
//!
//! **Parity is the contract.** A compiled loop must be byte-identical
//! to the tree-walk in store contents, printed output, statement
//! costs, fuel accounting, and error identity — the differential
//! harness in `tests/strategy_parity.rs` and `sanitizer-audit
//! --compiled` enforce this across the whole corpus. To that end the
//! lowering is deliberately conservative: fuel is charged per
//! statement entry at the same program points ([`Op::Charge`]), array
//! materialization order is preserved ([`Op::Ensure`] precedes
//! subscript evaluation exactly where `flat_index` would materialize),
//! and any construct whose interpreter semantics are not replicated
//! bit-for-bit — procedure calls, `print`, `return`, logical
//! operators in numeric position — rejects the lowering and falls
//! back to the interpreter via a reason-coded
//! [`FallbackReason`](crate::dispatch::FallbackReason).
//!
//! Trust discipline mirrors the raw-pointer strategies: the driver's
//! `CompiledPlan` is an advisory claim. The executor never runs a plan
//! — it re-lowers the nest from the AST at dispatch (cached per
//! `StmtId`; lowering is a pure function of the program) and falls
//! back when the lowering disagrees, so a forged plan can never reach
//! the bytecode path.

mod exec;
mod fast;
mod lower;

pub(crate) use fast::{specialize, FastBody};
pub use lower::{lower_do_loop, LowerReject};

use crate::dispatch::{FallbackReason, LoopDecision, LoopDispatcher};
use crate::interp::Store;
use irr_frontend::{BinOp, Intrinsic, Program, ScalarType, StmtId, VarId};

/// An instruction operand: a temp register, a scalar store slot, or an
/// immediate. Scalar reads are deferred to the consuming instruction —
/// expressions cannot write scalars, so the deferred read observes the
/// same value the interpreter's eager left-to-right evaluation would.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Opnd {
    /// Temp register.
    T(u16),
    /// Scalar store slot (dense `VarId` index).
    S(VarId),
    /// Integer immediate.
    I(i64),
    /// Real immediate.
    R(f64),
}

/// One bytecode instruction. Temp register indices (`u16`) index the
/// per-execution register file; jump targets are indices into the
/// instruction's own block.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// Charge `n` cost/fuel units — emitted at every statement entry
    /// (and nowhere else), so total cost and the out-of-fuel point
    /// match the interpreter exactly.
    Charge(u64),
    /// `t[dst] = src`.
    Mov { dst: u16, src: Opnd },
    /// `t[dst] = a op b` with the interpreter's `apply_bin` semantics
    /// (wrapping integer arithmetic, euclidean div/mod, zero checks).
    Bin {
        op: BinOp,
        dst: u16,
        a: Opnd,
        b: Opnd,
    },
    /// `t[dst] = -src`.
    Neg { dst: u16, src: Opnd },
    /// `t[dst] = (a op b) as 0/1` with `eval_cond` ordering semantics
    /// (exact integer compare, NaN compares equal).
    Cmp {
        op: BinOp,
        dst: u16,
        a: Opnd,
        b: Opnd,
    },
    /// `t[dst] = (src != 0.0) as 0/1` (condition fallback truthiness).
    Truthy { dst: u16, src: Opnd },
    /// `t[t] = 1 - t[t]` (logical not over a 0/1 condition register).
    Not { t: u16 },
    /// One-argument intrinsic.
    Intr1 { f: Intrinsic, dst: u16, a: Opnd },
    /// Two-argument intrinsic.
    Intr2 {
        f: Intrinsic,
        dst: u16,
        a: Opnd,
        b: Opnd,
    },
    /// Unconditional jump within the block.
    Jump { target: u32 },
    /// Jump when the 0/1 condition register is 0.
    JumpIfZero { src: u16, target: u32 },
    /// Jump when the 0/1 condition register is non-0.
    JumpIfNonZero { src: u16, target: u32 },
    /// Materialize `arr` if needed (evaluating declared extents) —
    /// emitted before subscript evaluation exactly where the
    /// interpreter's `flat_index` would, preserving materialization
    /// order, write-log records, and the random-fill stream.
    Ensure { arr: VarId },
    /// Column-major flat index of `n` subscripts held in consecutive
    /// temps `t[base..base+n]`, bounds-checked per dimension;
    /// `t[dst] = flat index`. `arr` must be materialized.
    IndexN {
        arr: VarId,
        base: u16,
        n: u8,
        dst: u16,
    },
    /// `t[dst] = arr[t[idx]]` (flat index previously checked).
    LoadAt { arr: VarId, idx: u16, dst: u16 },
    /// `arr[t[idx]] = src` through the store's full write path
    /// (overlay intercept, copy-on-write, version bump, write log).
    StoreAt { arr: VarId, idx: u16, src: Opnd },
    /// Fused 1-subscript load: ensure, bounds-check `sub` against the
    /// first extent, read.
    LoadElem1 { arr: VarId, sub: Opnd, dst: u16 },
    /// Fused 1-subscript store.
    StoreElem1 { arr: VarId, sub: Opnd, src: Opnd },
    /// Fused affine load `arr(base + off)`; `base` is an
    /// integer-typed scalar slot.
    LoadAffine {
        arr: VarId,
        base: VarId,
        off: i64,
        dst: u16,
    },
    /// Fused affine store `arr(base + off) = src` — the proven
    /// in-place-disjoint write pattern.
    StoreAffine {
        arr: VarId,
        base: VarId,
        off: i64,
        src: Opnd,
    },
    /// Fused gather `arr(idx_arr(sub))`: both arrays ensured in
    /// interpreter order, both subscripts bounds-checked.
    Gather {
        arr: VarId,
        idx_arr: VarId,
        sub: Opnd,
        dst: u16,
    },
    /// Fused gather-store `arr(idx_arr(sub)) = src`.
    Scatter {
        arr: VarId,
        idx_arr: VarId,
        sub: Opnd,
        src: Opnd,
    },
    /// Scalar write with declared-type coercion and write-log record.
    SetScalar {
        var: VarId,
        ty: ScalarType,
        src: Opnd,
    },
    /// Fused reduction accumulate `var = var op src` (`rev` swaps the
    /// operand order: `var = src op var`).
    Accum {
        var: VarId,
        ty: ScalarType,
        op: BinOp,
        rev: bool,
        src: Opnd,
    },
    /// Fused append-through-pointer: `arr(ptr) = src` followed by the
    /// second statement's charge and `ptr = ptr + 1` — the
    /// privatize-and-concat write pattern.
    Append {
        arr: VarId,
        ptr: VarId,
        ty: ScalarType,
        src: Opnd,
    },
    /// A nested `do` loop: bounds read from operands (already
    /// evaluated in-order by preceding ops), induction writes logged,
    /// per-loop statistics maintained exactly as the interpreter's.
    DoLoop {
        var: VarId,
        ty: ScalarType,
        stmt: StmtId,
        lo: Opnd,
        hi: Opnd,
        step: Opnd,
        body: u16,
    },
    /// A nested `while` loop: the condition block leaves 0/1 in
    /// `cond_temp` before every iteration.
    WhileLoop {
        stmt: StmtId,
        cond: u16,
        cond_temp: u16,
        body: u16,
    },
}

/// Number of distinct opcodes (for [`CompiledProfile`]).
pub const OPCODE_COUNT: usize = 27;

/// Stable opcode names, index-aligned with [`Op::tag`] — the keys of
/// the per-opcode dispatch counts in `BENCH_compiled.json`.
pub const OPCODE_NAMES: [&str; OPCODE_COUNT] = [
    "charge",
    "mov",
    "bin",
    "neg",
    "cmp",
    "truthy",
    "not",
    "intr1",
    "intr2",
    "jump",
    "jump_if_zero",
    "jump_if_nonzero",
    "ensure",
    "index_n",
    "load_at",
    "store_at",
    "load_elem",
    "store_elem",
    "load_affine",
    "store_affine",
    "gather",
    "scatter",
    "set_scalar",
    "accum",
    "append",
    "do_loop",
    "while_loop",
];

impl Op {
    /// Dense opcode tag, index into [`OPCODE_NAMES`].
    pub(crate) fn tag(&self) -> usize {
        match self {
            Op::Charge(_) => 0,
            Op::Mov { .. } => 1,
            Op::Bin { .. } => 2,
            Op::Neg { .. } => 3,
            Op::Cmp { .. } => 4,
            Op::Truthy { .. } => 5,
            Op::Not { .. } => 6,
            Op::Intr1 { .. } => 7,
            Op::Intr2 { .. } => 8,
            Op::Jump { .. } => 9,
            Op::JumpIfZero { .. } => 10,
            Op::JumpIfNonZero { .. } => 11,
            Op::Ensure { .. } => 12,
            Op::IndexN { .. } => 13,
            Op::LoadAt { .. } => 14,
            Op::StoreAt { .. } => 15,
            Op::LoadElem1 { .. } => 16,
            Op::StoreElem1 { .. } => 17,
            Op::LoadAffine { .. } => 18,
            Op::StoreAffine { .. } => 19,
            Op::Gather { .. } => 20,
            Op::Scatter { .. } => 21,
            Op::SetScalar { .. } => 22,
            Op::Accum { .. } => 23,
            Op::Append { .. } => 24,
            Op::DoLoop { .. } => 25,
            Op::WhileLoop { .. } => 26,
        }
    }
}

/// Per-opcode dispatch counters, collected when profiling is enabled
/// on the interpreter ([`crate::Interp::compiled_profile`]) and merged
/// from parallel workers at commit. Kept out of [`crate::ExecStats`]
/// so stats equality between tiers stays byte-identical.
#[derive(Clone, Debug)]
pub struct CompiledProfile {
    /// Dispatch count per opcode, index-aligned with [`OPCODE_NAMES`].
    pub counts: [u64; OPCODE_COUNT],
}

impl Default for CompiledProfile {
    fn default() -> Self {
        CompiledProfile::new()
    }
}

impl CompiledProfile {
    /// All-zero profile.
    pub fn new() -> CompiledProfile {
        CompiledProfile {
            counts: [0; OPCODE_COUNT],
        }
    }

    /// Adds another profile's counts (worker merge).
    pub fn merge(&mut self, other: &CompiledProfile) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Total instruction dispatches.
    pub fn dispatches(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(opcode name, count)` pairs for non-zero opcodes.
    pub fn nonzero(&self) -> Vec<(&'static str, u64)> {
        OPCODE_NAMES
            .iter()
            .zip(self.counts.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(n, &c)| (*n, c))
            .collect()
    }
}

/// A lowered `do`-loop nest: blocks of instructions (the root block is
/// one iteration of the outermost body; nested loop bodies and `while`
/// conditions get their own blocks) plus the register-file size and
/// the loop metadata the drivers need.
#[derive(Debug)]
pub struct CompiledBody {
    pub(crate) blocks: Vec<Vec<Op>>,
    /// Block holding one iteration of the outermost loop body.
    pub(crate) root: u16,
    /// Register-file size.
    pub(crate) n_temps: u16,
    /// The outermost loop's induction variable and its declared type.
    pub(crate) root_var: VarId,
    pub(crate) root_ty: ScalarType,
    /// Every loop statement in the nest (root first) — checked against
    /// `record_loops` at dispatch, since per-iteration cost recording
    /// is an interpreter-only instrument.
    pub(crate) loops: Vec<StmtId>,
}

impl CompiledBody {
    /// Total instruction count across all blocks.
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Register-file size an executor must provide to run the body.
    pub fn register_count(&self) -> usize {
        self.n_temps as usize
    }

    /// Loop statements in the nest (outermost first).
    pub fn loop_stmts(&self) -> &[StmtId] {
        &self.loops
    }
}

/// Dense per-`VarId` scalar type table: the register-resolution pass
/// shared by the interpreter (which uses it to retire per-access
/// symbol-table lookups on scalar writes) and the bytecode lowering
/// (which bakes the resolved `(slot, type)` pairs into instructions).
#[derive(Clone, Debug)]
pub struct ScalarLayout {
    types: Box<[ScalarType]>,
}

impl ScalarLayout {
    /// Builds the table from a program's symbol table.
    pub fn new(program: &Program) -> ScalarLayout {
        ScalarLayout {
            types: program.symbols.iter().map(|(_, info)| info.ty).collect(),
        }
    }

    /// Declared type of `v`.
    #[inline]
    pub fn ty(&self, v: VarId) -> ScalarType {
        self.types[v.index()]
    }
}

/// The all-compiled dispatcher: every `do` loop entry requests the
/// bytecode tier; unlowerable or instrumented loops fall back to the
/// tree-walk per the interpreter's own guard. This is the
/// single-thread "compiled" arm of the differential parity matrix and
/// the compiled bench runs.
#[derive(Debug, Default)]
pub struct CompiledDispatch {
    /// Dynamic loop entries that ran through the bytecode tier.
    pub compiled: u64,
    /// Dynamic loop entries that fell back, per reason.
    pub fallbacks: Vec<(FallbackReason, u64)>,
}

impl CompiledDispatch {
    /// Fresh dispatcher with zeroed counters.
    pub fn new() -> CompiledDispatch {
        CompiledDispatch::default()
    }

    /// Total fallback count across reasons.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.iter().map(|(_, c)| c).sum()
    }
}

impl LoopDispatcher for CompiledDispatch {
    fn dispatch(
        &mut self,
        _store: &Store,
        _loop_stmt: StmtId,
        _lo: i64,
        _hi: i64,
        _step: i64,
    ) -> LoopDecision {
        LoopDecision::Compiled
    }

    fn compiled_committed(&mut self, _loop_stmt: StmtId) {
        self.compiled += 1;
    }

    fn compiled_fallback(&mut self, _loop_stmt: StmtId, reason: FallbackReason) {
        match self.fallbacks.iter_mut().find(|(r, _)| *r == reason) {
            Some((_, c)) => *c += 1,
            None => self.fallbacks.push((reason, 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ExecError, ExecOutcome, Interp};
    use irr_frontend::parse_program;

    fn both(src: &str) -> (ExecOutcome, ExecOutcome, CompiledDispatch) {
        let p = parse_program(src).unwrap();
        let seq = Interp::new(&p).run().unwrap();
        let mut d = CompiledDispatch::new();
        let comp = Interp::new(&p).run_dispatched(&mut d).unwrap();
        (seq, comp, d)
    }

    /// Byte-identical store, output, total cost, and per-loop stats.
    fn assert_parity(src: &str) -> CompiledDispatch {
        let (seq, comp, d) = both(src);
        assert_eq!(seq.store, comp.store);
        assert_eq!(seq.output, comp.output);
        assert_eq!(seq.stats.total_cost, comp.stats.total_cost);
        assert_eq!(seq.stats.loops.len(), comp.stats.loops.len());
        for (s, ls) in &seq.stats.loops {
            let cs = &comp.stats.loops[s];
            assert_eq!(ls.invocations, cs.invocations, "invocations of {s:?}");
            assert_eq!(ls.total_cost, cs.total_cost, "cost of {s:?}");
        }
        d
    }

    #[test]
    fn affine_gather_reduction_parity() {
        let d = assert_parity(
            "program t
             integer i, idx(50)
             real a(60), b(50), s
             do i = 1, 50
               idx(i) = 51 - i
               b(i) = i * 0.25
             enddo
             do i = 1, 50
               a(i + 3) = b(i) * 2.0
               s = s + a(idx(i))
             enddo
             print s
             end",
        );
        assert!(d.compiled >= 2, "{d:?}");
        assert_eq!(d.fallback_count(), 0, "{d:?}");
    }

    #[test]
    fn append_and_nested_loop_parity() {
        assert_parity(
            "program t
             integer i, j, q, ind(200), ptr(10), len(10)
             do i = 1, 10
               ptr(i) = (i - 1) * 7 + 1
               len(i) = 5
             enddo
             do i = 1, 10
               do j = 1, len(i)
                 q = q + 1
                 ind(q) = ptr(i) + j
               enddo
             enddo
             print q, ind(1), ind(50)
             end",
        );
    }

    #[test]
    fn while_and_if_parity() {
        assert_parity(
            "program t
             integer i, j, k
             real x(40)
             do i = 1, 20
               j = i
               while (j > 1)
                 j = j / 2
                 k = k + 1
               endwhile
               if (k > 10 .and. i < 15) then
                 x(i) = k * 1.5
               else
                 x(i) = 0 - k
               endif
             enddo
             print k
             end",
        );
    }

    #[test]
    fn multi_dim_and_intrinsic_parity() {
        assert_parity(
            "program t
             integer i, j
             real z(8, 9), s
             do i = 1, 8
               do j = 1, 9
                 z(i, j) = max(i, j) + sqrt(i * 1.0)
               enddo
             enddo
             do i = 1, 8
               s = s + z(i, mod(i, 9) + 1)
             enddo
             print s
             end",
        );
    }

    #[test]
    fn out_of_bounds_error_identity() {
        let src = "program t
             integer i, idx(10)
             real a(5)
             do i = 1, 10
               idx(i) = i
             enddo
             do i = 1, 10
               a(idx(i)) = i
             enddo
             end";
        let p = parse_program(src).unwrap();
        let seq = Interp::new(&p).run().unwrap_err();
        let comp = Interp::new(&p)
            .run_dispatched(&mut CompiledDispatch::new())
            .unwrap_err();
        assert_eq!(seq, comp);
        assert!(matches!(seq, ExecError::OutOfBounds { .. }));
    }

    /// Satellite: a tight fuel budget must exhaust at the same point —
    /// same error, same total cost — on both tiers.
    #[test]
    fn fuel_exhaustion_point_is_identical() {
        let src = "program t
             integer i
             real x(1000)
             do i = 1, 1000
               x(i) = i * 2.0
             enddo
             end";
        let p = parse_program(src).unwrap();
        for fuel in [7u64, 100, 1001] {
            let mut seq = Interp::new(&p);
            seq.fuel = fuel;
            let seq_err = seq.run().unwrap_err();
            let mut comp = Interp::new(&p);
            comp.fuel = fuel;
            let mut d = CompiledDispatch::new();
            let comp_err = comp.run_dispatched(&mut d).unwrap_err();
            assert_eq!(seq_err, ExecError::OutOfFuel);
            assert_eq!(comp_err, ExecError::OutOfFuel);
        }
        // Cost at the exhaustion point matches exactly.
        let mut seq = Interp::new(&p);
        seq.fuel = 100;
        seq.run().unwrap_err();
        // `run` consumes; re-run with stats captured via run_dispatched.
        let mut a = Interp::new(&p);
        a.fuel = 100;
        let _ = a.exec_proc(p.main());
        let mut b = Interp::new(&p);
        b.fuel = 100;
        let mut d = CompiledDispatch::new();
        let _ = b.exec_proc_with(p.main(), &mut d);
        assert_eq!(a.stats.total_cost, b.stats.total_cost);
        assert_eq!(a.store, b.store);
    }

    #[test]
    fn print_in_body_falls_back_with_reason() {
        let src = "program t
             integer i
             do i = 1, 3
               print i
             enddo
             end";
        let p = parse_program(src).unwrap();
        let mut d = CompiledDispatch::new();
        let out = Interp::new(&p).run_dispatched(&mut d).unwrap();
        assert_eq!(out.output, vec!["1", "2", "3"]);
        assert_eq!(d.compiled, 0);
        assert_eq!(d.fallbacks, vec![(FallbackReason::Unsupported, 1)], "{d:?}");
    }

    #[test]
    fn recorded_loop_falls_back_as_traced() {
        let src = "program t
             integer i
             real x(10)
             do i = 1, 10
               x(i) = i
             enddo
             end";
        let p = parse_program(src).unwrap();
        let target = p
            .stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .find(|s| p.stmt(*s).kind.is_loop())
            .unwrap();
        let mut it = Interp::new(&p);
        it.record_loops.insert(target);
        let mut d = CompiledDispatch::new();
        let out = it.run_dispatched(&mut d).unwrap();
        assert_eq!(d.fallbacks, vec![(FallbackReason::Traced, 1)]);
        assert_eq!(out.stats.loops[&target].iteration_costs.len(), 1);
    }

    #[test]
    fn profile_counts_superinstructions() {
        let src = "program t
             integer i, idx(20)
             real a(30), s
             do i = 1, 20
               idx(i) = i
             enddo
             do i = 1, 20
               a(i + 1) = i * 1.0
               s = s + a(idx(i))
             enddo
             end";
        let p = parse_program(src).unwrap();
        let mut it = Interp::new(&p);
        it.compiled_profile = Some(Box::new(CompiledProfile::new()));
        let mut d = CompiledDispatch::new();
        it.exec_proc_with(p.main(), &mut d).unwrap();
        let prof = it.compiled_profile.take().unwrap();
        let by_name: std::collections::HashMap<_, _> = prof.nonzero().into_iter().collect();
        assert_eq!(by_name["store_affine"], 20);
        assert_eq!(by_name["gather"], 20);
        assert_eq!(by_name["accum"], 20);
        assert!(prof.dispatches() > 0);
    }
}
