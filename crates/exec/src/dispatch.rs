//! Loop dispatch hooks: the seam between the interpreter and a hybrid
//! compile-time/run-time parallelization subsystem.
//!
//! A [`LoopDispatcher`] is consulted at **every dynamic entry** of every
//! `do` loop, after the bounds have been evaluated against the live
//! store. It decides — per execution — whether the loop runs through the
//! ordinary sequential interpreter or through the write-log parallel
//! executor with a given [`ParallelPlan`] (workers on copy-on-write
//! store clones, logs merged in `O(total writes)`). The hybrid runtime in
//! `irr-runtime` implements this trait with guarded (inspector-driven)
//! dispatch and a version-keyed schedule cache; the default
//! [`SequentialDispatch`] recovers the plain interpreter.

use crate::interp::Store;
use crate::parallel::{ExecutionStrategy, ParallelPlan};
use irr_frontend::StmtId;

/// How one dynamic execution of a loop should run.
#[derive(Clone, Debug)]
pub enum LoopDecision {
    /// Run the loop through the sequential interpreter.
    Sequential,
    /// Run the loop through the single-threaded register-bytecode tier
    /// (see [`crate::bytecode`]). The interpreter re-lowers the nest
    /// from the AST at dispatch — a cached pure derivation — and falls
    /// back to the sequential tree-walk (reporting
    /// [`LoopDispatcher::compiled_fallback`]) when the loop cannot be
    /// lowered or carries interpreter-only instrumentation.
    Compiled,
    /// Run the loop through the chunked parallel executor.
    Parallel(ParallelPlan),
}

/// Why a parallel dispatch was abandoned in favor of sequential
/// re-execution. One variant per recoverable
/// [`ParallelError`](crate::ParallelError) class; a genuine worker
/// `ExecError` has no reason code because it propagates instead of
/// falling back.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FallbackReason {
    /// Two workers wrote the same location — the schedule was wrong.
    Conflict,
    /// A worker thread panicked.
    Panic,
    /// Workers disagreed on an array shape, or a logged write landed
    /// past an extent.
    Shape,
    /// The executor cannot run this loop shape (non-unit step, not a
    /// `do` loop).
    Unsupported,
    /// A worker overran the per-worker deadline (watchdog).
    Timeout,
    /// An execution strategy's runtime self-check failed (an in-place
    /// write left its proven window, or append positions broke the
    /// consecutive discipline).
    Strategy,
    /// The loop carries interpreter-only instrumentation (an attached
    /// access tracer or per-iteration cost recording), so a compiled
    /// dispatch fell back to the instrumented tree-walk.
    Traced,
}

impl FallbackReason {
    /// Short stable name, used in telemetry dumps and bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            FallbackReason::Conflict => "conflict",
            FallbackReason::Panic => "panic",
            FallbackReason::Shape => "shape",
            FallbackReason::Unsupported => "unsupported",
            FallbackReason::Timeout => "timeout",
            FallbackReason::Strategy => "strategy",
            FallbackReason::Traced => "traced",
        }
    }
}

/// Per-execution loop dispatch. Implementations may inspect the live
/// store (e.g. run an inspector over an index array) before deciding.
pub trait LoopDispatcher {
    /// Decides how to run `loop_stmt` for this execution.
    ///
    /// `lo`, `hi`, and `step` are the loop bounds already evaluated
    /// against the live store (`lo > hi` with `step > 0` means the loop
    /// is zero-trip this time).
    fn dispatch(
        &mut self,
        store: &Store,
        loop_stmt: StmtId,
        lo: i64,
        hi: i64,
        step: i64,
    ) -> LoopDecision;

    /// Notifies the dispatcher that its most recent
    /// [`Parallel`](LoopDecision::Parallel) decision for `loop_stmt`
    /// failed at runtime for `reason`, and the interpreter is
    /// re-executing the loop sequentially on the untouched master
    /// store. Implementations use this to record telemetry and
    /// quarantine the failing schedule; the default is a no-op.
    fn parallel_failed(&mut self, _loop_stmt: StmtId, _reason: FallbackReason) {}

    /// Notifies the dispatcher that a parallel dispatch of `loop_stmt`
    /// committed, and which [`ExecutionStrategy`] actually ran (the
    /// executor may have downgraded the planned strategy to the
    /// write-log if its own derivation could not re-prove the facts).
    /// The default is a no-op.
    fn parallel_committed(&mut self, _loop_stmt: StmtId, _strategy: ExecutionStrategy) {}

    /// Notifies the dispatcher that its most recent
    /// [`Compiled`](LoopDecision::Compiled) decision for `loop_stmt`
    /// ran to completion through the bytecode tier. The default is a
    /// no-op.
    fn compiled_committed(&mut self, _loop_stmt: StmtId) {}

    /// Notifies the dispatcher that a compiled dispatch of `loop_stmt`
    /// fell back to the sequential interpreter for `reason` (the nest
    /// could not be lowered, or interpreter-only instrumentation is
    /// active). The sequential execution that follows is authoritative
    /// — the fallback costs one cache-hit lowering attempt, nothing
    /// more. The default is a no-op.
    fn compiled_fallback(&mut self, _loop_stmt: StmtId, _reason: FallbackReason) {}
}

/// The trivial dispatcher: every loop runs sequentially. Using it with
/// [`crate::Interp::run_dispatched`] is exactly [`crate::Interp::run`].
pub struct SequentialDispatch;

impl LoopDispatcher for SequentialDispatch {
    fn dispatch(
        &mut self,
        _store: &Store,
        _loop_stmt: StmtId,
        _lo: i64,
        _hi: i64,
        _step: i64,
    ) -> LoopDecision {
        LoopDecision::Sequential
    }
}
