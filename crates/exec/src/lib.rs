//! Execution substrate: an instrumenting interpreter for the
//! mini-Fortran language, a thread-based parallel executor used to
//! *verify* parallelization decisions (workers on copy-on-write store
//! clones hand back [`WriteLog`]s, merged in `O(total writes)` with
//! positional conflict detection), and a machine-model simulator that
//! reproduces the paper's speedup experiments (Fig. 16).
//!
//! The original evaluation ran on an SGI Origin 2000 (up to 32 of 56
//! R10k processors) and a 4-processor SGI Challenge. Neither machine is
//! available, so speedups are *simulated*: the interpreter measures
//! per-iteration work of every loop the compiler parallelized, and an
//! analytic machine model (static block scheduling, fork/join overhead
//! per parallel region, per-processor start cost) converts the measured
//! profile into a predicted parallel time. This preserves exactly what
//! Fig. 16 reports — relative speedup shapes, including DYFESM's
//! overhead-dominated slowdown on a tiny input — without the original
//! hardware.
//!
//! Integer semantics note: `/` is **floor** division and `mod` the
//! non-negative remainder (`div_euclid`/`rem_euclid`), matching the
//! assumptions of the symbolic layer.

pub mod bytecode;
pub mod dispatch;
pub mod fault;
pub mod interp;
pub mod machine;
pub mod parallel;
pub mod rng;
pub mod runtime_test;
pub mod trace;

pub use bytecode::{
    lower_do_loop, CompiledBody, CompiledDispatch, CompiledProfile, LowerReject, ScalarLayout,
    OPCODE_NAMES,
};
pub use dispatch::{FallbackReason, LoopDecision, LoopDispatcher, SequentialDispatch};
pub use fault::{FaultKind, FaultPlan, FaultShot};
pub use interp::{
    ArrayData, ExecError, ExecOutcome, ExecStats, Interp, LoopStats, Store, Value, WriteLog,
};
pub use machine::{
    simulate_program_time, simulate_speedup, LoopProfile, MachineModel, ProgramProfile,
};
pub use parallel::{
    exec_do_parallel, run_loop_parallel, ExecutionStrategy, ParallelError, ParallelPlan, ReduceOp,
};
pub use rng::SplitMix64;
pub use runtime_test::{
    inspect_bounded, inspect_bounded_parallel, inspect_injective, inspect_injective_parallel,
    inspect_offset_length, Inspection,
};
pub use trace::{AccessTracer, TraceConfig};
