//! Run-time parallelization tests — the alternative the paper argues
//! against (§1: "these methods introduce overhead that is not always
//! negligible and also increase the code size, since the unoptimized
//! version must also be available in case the tests fail").
//!
//! An *inspector* examines index-array values in the live store right
//! before a candidate loop and decides whether the parallel version may
//! run. This module implements the two inspectors corresponding to the
//! properties the compile-time analysis verifies statically, so the
//! trade-off can be measured (see the `runtime-vs-compile-time` bench
//! group): the inspector pays `O(section)` on *every* execution, the
//! compile-time query pays once.

use crate::interp::Store;
use irr_frontend::VarId;
use std::collections::HashSet;

/// Result of a run-time inspection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Inspection {
    /// The property holds for this execution: the parallel version may
    /// run (this time).
    ParallelOk,
    /// The property fails: fall back to the sequential version.
    Sequential,
}

/// Inspects whether `idx(lo..=hi)` holds pairwise-distinct values — the
/// run-time counterpart of the injectivity property (§3).
///
/// An empty section (`hi < lo`) is vacuously injective — `ParallelOk`
/// regardless of the array's state, checked *before* materialization and
/// bounds (a zero-trip loop reads nothing, so nothing can conflict).
/// Otherwise returns `Sequential` when the section is out of bounds or
/// the array has not been materialized.
pub fn inspect_injective(store: &Store, idx: VarId, lo: i64, hi: i64) -> Inspection {
    if hi < lo {
        return Inspection::ParallelOk;
    }
    let Some(values) = store.array_as_reals(idx) else {
        return Inspection::Sequential;
    };
    if lo < 1 || hi as usize > values.len() {
        return Inspection::Sequential;
    }
    let mut seen = HashSet::with_capacity((hi - lo + 1).max(0) as usize);
    for k in lo..=hi {
        let v = values[(k - 1) as usize] as i64;
        if !seen.insert(v) {
            return Inspection::Sequential;
        }
    }
    Inspection::ParallelOk
}

/// Inspects whether `idx(lo..=hi)` values all lie within
/// `[val_lo, val_hi]` — the run-time counterpart of the closed-form
/// bound property.
///
/// An empty section (`hi < lo`) is vacuously bounded — `ParallelOk`
/// before any materialization or bounds check.
pub fn inspect_bounded(
    store: &Store,
    idx: VarId,
    lo: i64,
    hi: i64,
    val_lo: i64,
    val_hi: i64,
) -> Inspection {
    if hi < lo {
        return Inspection::ParallelOk;
    }
    let Some(values) = store.array_as_reals(idx) else {
        return Inspection::Sequential;
    };
    if lo < 1 || hi as usize > values.len() {
        return Inspection::Sequential;
    }
    for k in lo..=hi {
        let v = values[(k - 1) as usize] as i64;
        if v < val_lo || v > val_hi {
            return Inspection::Sequential;
        }
    }
    Inspection::ParallelOk
}

/// Parallel counterpart of [`inspect_injective`]: splits the section
/// into contiguous chunks, each worker marks the values it sees in a
/// private bitmap over the section's value range, and the merge ORs the
/// bitmaps — a set bit seen twice (within a chunk or across chunks) is
/// a duplicate. Chunk results merge at chunk granularity, so the scan
/// parallelizes with no shared state.
///
/// The bitmap needs the value range: a cheap chunked min/max pass runs
/// first, with the range widened in `i128` so pathological index values
/// near the `i64` extremes cannot overflow it. When the range is much
/// larger than the section (huge max, tiny nonzero count), the bitmaps
/// would be mostly empty pages — below that density threshold the
/// inspector switches to a sparse-set variant: each worker sorts its
/// chunk (catching intra-chunk duplicates), and a k-way merge scan
/// catches duplicates across chunks, so the fallback stays parallel
/// instead of degenerating to the sequential hash scan. Verdicts are
/// always identical to [`inspect_injective`].
pub fn inspect_injective_parallel(
    store: &Store,
    idx: VarId,
    lo: i64,
    hi: i64,
    threads: usize,
) -> Inspection {
    if hi < lo {
        return Inspection::ParallelOk;
    }
    let Some(values) = store.array_as_reals(idx) else {
        return Inspection::Sequential;
    };
    if lo < 1 || hi as usize > values.len() {
        return Inspection::Sequential;
    }
    let section = &values[(lo - 1) as usize..hi as usize];
    let threads = threads.clamp(1, section.len());
    if threads == 1 {
        return inspect_injective(store, idx, lo, hi);
    }
    // Chunked min/max pass.
    let chunk_len = section.len().div_ceil(threads);
    let (min, max) = std::thread::scope(|scope| {
        let handles: Vec<_> = section
            .chunks(chunk_len)
            .map(|c| {
                scope.spawn(move || {
                    let mut mn = i64::MAX;
                    let mut mx = i64::MIN;
                    for &v in c {
                        let v = v as i64;
                        mn = mn.min(v);
                        mx = mx.max(v);
                    }
                    (mn, mx)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("inspector worker panicked"))
            .fold((i64::MAX, i64::MIN), |(amn, amx), (mn, mx)| {
                (amn.min(mn), amx.max(mx))
            })
    });
    // Widen before subtracting: with index values near the i64
    // extremes (max - min + 1) overflows i64.
    let range = (max as i128 - min as i128 + 1) as u128;
    if range > 4 * section.len() as u128 + 1024 {
        // Sparse values: the bitmap would be mostly empty pages (and
        // for extreme ranges could not even be allocated). Fall back
        // to the chunked sparse-set inspector instead of the
        // sequential hash scan.
        return inspect_injective_sparse_set(section, chunk_len);
    }
    let words = (range as usize).div_ceil(64);
    // Chunked marking pass: each worker owns a private bitmap.
    let bitmaps: Vec<Option<Vec<u64>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = section
            .chunks(chunk_len)
            .map(|c| {
                scope.spawn(move || {
                    let mut bits = vec![0u64; words];
                    for &v in c {
                        let d = (v as i64 - min) as usize;
                        let (w, b) = (d / 64, d % 64);
                        if bits[w] & (1 << b) != 0 {
                            return None; // duplicate inside this chunk
                        }
                        bits[w] |= 1 << b;
                    }
                    Some(bits)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("inspector worker panicked"))
            .collect()
    });
    let mut merged = vec![0u64; words];
    for bits in bitmaps {
        let Some(bits) = bits else {
            return Inspection::Sequential;
        };
        for (m, b) in merged.iter_mut().zip(&bits) {
            if *m & *b != 0 {
                return Inspection::Sequential; // cross-chunk duplicate
            }
            *m |= *b;
        }
    }
    Inspection::ParallelOk
}

/// Sparse-set injectivity inspector: the parallel fallback for sections
/// whose value range is too wide for per-chunk bitmaps (huge max, tiny
/// nonzero count). Each worker sorts its chunk's values — a duplicate
/// inside a chunk surfaces as adjacent equal elements — and a k-way
/// merge scan over the sorted chunks catches duplicates across chunks.
/// Memory is `O(section)` regardless of the value range.
fn inspect_injective_sparse_set(section: &[f64], chunk_len: usize) -> Inspection {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let sorted: Vec<Option<Vec<i64>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = section
            .chunks(chunk_len)
            .map(|c| {
                scope.spawn(move || {
                    let mut v: Vec<i64> = c.iter().map(|&x| x as i64).collect();
                    v.sort_unstable();
                    if v.windows(2).any(|w| w[0] == w[1]) {
                        return None; // duplicate inside this chunk
                    }
                    Some(v)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("inspector worker panicked"))
            .collect()
    });
    let mut chunks: Vec<Vec<i64>> = Vec::with_capacity(sorted.len());
    for c in sorted {
        let Some(c) = c else {
            return Inspection::Sequential;
        };
        chunks.push(c);
    }
    // K-way merge scan: pop values in ascending order; two equal values
    // in a row are a cross-chunk duplicate.
    let mut heap: BinaryHeap<Reverse<(i64, usize, usize)>> = chunks
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty())
        .map(|(ci, c)| Reverse((c[0], ci, 0)))
        .collect();
    let mut prev: Option<i64> = None;
    while let Some(Reverse((v, ci, pos))) = heap.pop() {
        if prev == Some(v) {
            return Inspection::Sequential;
        }
        prev = Some(v);
        if let Some(&next) = chunks[ci].get(pos + 1) {
            heap.push(Reverse((next, ci, pos + 1)));
        }
    }
    Inspection::ParallelOk
}

/// Parallel counterpart of [`inspect_bounded`]: each worker scans a
/// contiguous chunk of the section for a value outside
/// `[val_lo, val_hi]`; the verdict is the conjunction of the chunk
/// verdicts. Always identical to [`inspect_bounded`].
pub fn inspect_bounded_parallel(
    store: &Store,
    idx: VarId,
    lo: i64,
    hi: i64,
    val_lo: i64,
    val_hi: i64,
    threads: usize,
) -> Inspection {
    if hi < lo {
        return Inspection::ParallelOk;
    }
    let Some(values) = store.array_as_reals(idx) else {
        return Inspection::Sequential;
    };
    if lo < 1 || hi as usize > values.len() {
        return Inspection::Sequential;
    }
    let section = &values[(lo - 1) as usize..hi as usize];
    let threads = threads.clamp(1, section.len());
    if threads == 1 {
        return inspect_bounded(store, idx, lo, hi, val_lo, val_hi);
    }
    let chunk_len = section.len().div_ceil(threads);
    let all_in = std::thread::scope(|scope| {
        let handles: Vec<_> = section
            .chunks(chunk_len)
            .map(|c| {
                scope.spawn(move || {
                    c.iter().all(|&v| {
                        let v = v as i64;
                        v >= val_lo && v <= val_hi
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .all(|h| h.join().expect("inspector worker panicked"))
    });
    if all_in {
        Inspection::ParallelOk
    } else {
        Inspection::Sequential
    }
}

/// Inspects whether `ptr` is a proper offset array for lengths `len`
/// over segments `lo..=hi`: `ptr(k+1) == ptr(k) + len(k)` with
/// `len(k) >= 0` — the run-time counterpart of the closed-form distance
/// property (the check the offset–length test performs statically).
///
/// An empty section (`hi < lo`) has no segments and is vacuously valid —
/// `ParallelOk` before any materialization or bounds check.
pub fn inspect_offset_length(
    store: &Store,
    ptr: VarId,
    len: VarId,
    lo: i64,
    hi: i64,
) -> Inspection {
    if hi < lo {
        return Inspection::ParallelOk;
    }
    let (Some(p), Some(l)) = (store.array_as_reals(ptr), store.array_as_reals(len)) else {
        return Inspection::Sequential;
    };
    if lo < 1 || (hi + 1) as usize > p.len() || hi as usize > l.len() {
        return Inspection::Sequential;
    }
    for k in lo..=hi {
        let lk = l[(k - 1) as usize] as i64;
        if lk < 0 {
            return Inspection::Sequential;
        }
        let pk = p[(k - 1) as usize] as i64;
        let pk1 = p[k as usize] as i64;
        // Widened like the injectivity inspector's range arithmetic:
        // extreme stored values must fail the equation, not overflow.
        if pk1 as i128 != pk as i128 + lk as i128 {
            return Inspection::Sequential;
        }
    }
    Inspection::ParallelOk
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use irr_frontend::parse_program;

    fn store_of(src: &str) -> (irr_frontend::Program, Store) {
        let p = parse_program(src).unwrap();
        let out = Interp::new(&p).run().unwrap();
        (p, out.store)
    }

    #[test]
    fn injective_inspector() {
        let (p, store) = store_of(
            "program t
             integer idx(10), i
             do i = 1, 10
               idx(i) = 11 - i
             enddo
             idx(10) = 9
             end",
        );
        let idx = p.symbols.lookup("idx").unwrap();
        // idx = [10, 9, ..., 2, 9]: first nine distinct, full range not.
        assert_eq!(inspect_injective(&store, idx, 1, 9), Inspection::ParallelOk);
        assert_eq!(
            inspect_injective(&store, idx, 1, 10),
            Inspection::Sequential
        );
        // Out of bounds is sequential.
        assert_eq!(
            inspect_injective(&store, idx, 1, 11),
            Inspection::Sequential
        );
    }

    #[test]
    fn bounded_inspector() {
        let (p, store) = store_of(
            "program t
             integer idx(10), i
             do i = 1, 10
               idx(i) = i + 2
             enddo
             end",
        );
        let idx = p.symbols.lookup("idx").unwrap();
        assert_eq!(
            inspect_bounded(&store, idx, 1, 10, 3, 12),
            Inspection::ParallelOk
        );
        assert_eq!(
            inspect_bounded(&store, idx, 1, 10, 1, 10),
            Inspection::Sequential
        );
    }

    #[test]
    fn parallel_inspectors_agree_with_sequential() {
        // Permutation with one duplicate injected at the far end: the
        // duplicate pair spans chunks, so only the merge can see it.
        let (p, store) = store_of(
            "program t
             integer idx(64), i
             do i = 1, 64
               idx(i) = 65 - i
             enddo
             idx(64) = 33
             end",
        );
        let idx = p.symbols.lookup("idx").unwrap();
        for threads in [1, 2, 3, 4, 8] {
            assert_eq!(
                inspect_injective_parallel(&store, idx, 1, 63, threads),
                inspect_injective(&store, idx, 1, 63),
                "threads={threads}"
            );
            assert_eq!(
                inspect_injective_parallel(&store, idx, 1, 64, threads),
                Inspection::Sequential,
                "threads={threads}"
            );
            assert_eq!(
                inspect_bounded_parallel(&store, idx, 1, 64, 1, 64, threads),
                inspect_bounded(&store, idx, 1, 64, 1, 64),
                "threads={threads}"
            );
            assert_eq!(
                inspect_bounded_parallel(&store, idx, 1, 64, 1, 32, threads),
                Inspection::Sequential,
                "threads={threads}"
            );
        }
        // Empty section and out-of-bounds behave like the sequential
        // inspectors.
        assert_eq!(
            inspect_injective_parallel(&store, idx, 5, 4, 4),
            Inspection::ParallelOk
        );
        assert_eq!(
            inspect_injective_parallel(&store, idx, 1, 65, 4),
            Inspection::Sequential
        );
    }

    #[test]
    fn parallel_injective_sparse_values_fall_back_to_sparse_set() {
        // Values spread over a range ~1000x the section length: the
        // bitmap path declines and the sparse-set fallback must still
        // give the sequential inspector's verdict (distinct here).
        let (p, store) = store_of(
            "program t
             integer idx(32), i
             do i = 1, 32
               idx(i) = i * 100000
             enddo
             end",
        );
        let idx = p.symbols.lookup("idx").unwrap();
        assert_eq!(
            inspect_injective_parallel(&store, idx, 1, 32, 4),
            Inspection::ParallelOk
        );
        // Duplicate far apart is still caught by the fallback.
        let (p2, store2) = store_of(
            "program t
             integer idx(32), i
             do i = 1, 32
               idx(i) = i * 100000
             enddo
             idx(32) = 100000
             end",
        );
        let idx2 = p2.symbols.lookup("idx").unwrap();
        assert_eq!(
            inspect_injective_parallel(&store2, idx2, 1, 32, 4),
            Inspection::Sequential
        );
    }

    #[test]
    fn sparse_set_fallback_matches_sequential_across_thread_counts() {
        // 4096 entries spread over a ~40M value range: far below the
        // bitmap density threshold, so every parallel call below takes
        // the sparse-set path.
        let (p, store) = store_of(
            "program t
             integer idx(4096), i
             do i = 1, 4096
               idx(i) = i * 9973
             enddo
             end",
        );
        let idx = p.symbols.lookup("idx").unwrap();
        for threads in [2, 3, 4, 7, 16] {
            assert_eq!(
                inspect_injective_parallel(&store, idx, 1, 4096, threads),
                Inspection::ParallelOk,
                "threads={threads}"
            );
        }
        // A duplicate pair spanning chunk boundaries is only visible to
        // the k-way merge.
        let (p2, store2) = store_of(
            "program t
             integer idx(4096), i
             do i = 1, 4096
               idx(i) = i * 9973
             enddo
             idx(4096) = 9973
             end",
        );
        let idx2 = p2.symbols.lookup("idx").unwrap();
        for threads in [2, 3, 4, 7, 16] {
            assert_eq!(
                inspect_injective_parallel(&store2, idx2, 1, 4096, threads),
                Inspection::Sequential,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn extreme_index_range_does_not_overflow_the_range_computation() {
        // Values at the far ends of the representable range: computing
        // (max - min + 1) in i64 overflows; the widened computation
        // must route to the sparse-set path and return the sequential
        // inspector's verdict.
        let p = parse_program(
            "program t
             integer idx(4)
             end",
        )
        .unwrap();
        let idx = p.symbols.lookup("idx").unwrap();
        let mut it = Interp::new(&p);
        it.preset_array(
            idx,
            crate::interp::ArrayData::Int {
                data: vec![-(1i64 << 62), 1i64 << 62, 0, 1],
                dims: vec![4],
            },
        );
        let store = it.run().unwrap().store;
        assert_eq!(
            inspect_injective_parallel(&store, idx, 1, 4, 4),
            inspect_injective(&store, idx, 1, 4)
        );
        assert_eq!(
            inspect_injective_parallel(&store, idx, 1, 4, 4),
            Inspection::ParallelOk
        );
        // And with a duplicated extreme value.
        let mut it2 = Interp::new(&p);
        it2.preset_array(
            idx,
            crate::interp::ArrayData::Int {
                data: vec![-(1i64 << 62), 1i64 << 62, -(1i64 << 62), 1],
                dims: vec![4],
            },
        );
        let store2 = it2.run().unwrap().store;
        assert_eq!(
            inspect_injective_parallel(&store2, idx, 1, 4, 4),
            Inspection::Sequential
        );
    }

    #[test]
    fn offset_length_inspector() {
        let (p, store) = store_of(
            "program t
             integer ptr(11), len(10), k
             do k = 1, 10
               len(k) = mod(k, 3) + 1
             enddo
             ptr(1) = 1
             do k = 1, 10
               ptr(k + 1) = ptr(k) + len(k)
             enddo
             end",
        );
        let ptr = p.symbols.lookup("ptr").unwrap();
        let len = p.symbols.lookup("len").unwrap();
        assert_eq!(
            inspect_offset_length(&store, ptr, len, 1, 10),
            Inspection::ParallelOk
        );
        // Break one link.
        let (p2, store2) = store_of(
            "program t
             integer ptr(11), len(10), k
             do k = 1, 10
               len(k) = 2
             enddo
             ptr(1) = 1
             do k = 1, 10
               ptr(k + 1) = ptr(k) + len(k)
             enddo
             ptr(5) = 0
             end",
        );
        let ptr2 = p2.symbols.lookup("ptr").unwrap();
        let len2 = p2.symbols.lookup("len").unwrap();
        assert_eq!(
            inspect_offset_length(&store2, ptr2, len2, 1, 10),
            Inspection::Sequential
        );
    }
}
