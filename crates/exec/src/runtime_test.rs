//! Run-time parallelization tests — the alternative the paper argues
//! against (§1: "these methods introduce overhead that is not always
//! negligible and also increase the code size, since the unoptimized
//! version must also be available in case the tests fail").
//!
//! An *inspector* examines index-array values in the live store right
//! before a candidate loop and decides whether the parallel version may
//! run. This module implements the two inspectors corresponding to the
//! properties the compile-time analysis verifies statically, so the
//! trade-off can be measured (see the `runtime-vs-compile-time` bench
//! group): the inspector pays `O(section)` on *every* execution, the
//! compile-time query pays once.

use crate::interp::Store;
use irr_frontend::VarId;
use std::collections::HashSet;

/// Result of a run-time inspection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Inspection {
    /// The property holds for this execution: the parallel version may
    /// run (this time).
    ParallelOk,
    /// The property fails: fall back to the sequential version.
    Sequential,
}

/// Inspects whether `idx(lo..=hi)` holds pairwise-distinct values — the
/// run-time counterpart of the injectivity property (§3).
///
/// An empty section (`hi < lo`) is vacuously injective — `ParallelOk`
/// regardless of the array's state, checked *before* materialization and
/// bounds (a zero-trip loop reads nothing, so nothing can conflict).
/// Otherwise returns `Sequential` when the section is out of bounds or
/// the array has not been materialized.
pub fn inspect_injective(store: &Store, idx: VarId, lo: i64, hi: i64) -> Inspection {
    if hi < lo {
        return Inspection::ParallelOk;
    }
    let Some(values) = store.array_as_reals(idx) else {
        return Inspection::Sequential;
    };
    if lo < 1 || hi as usize > values.len() {
        return Inspection::Sequential;
    }
    let mut seen = HashSet::with_capacity((hi - lo + 1).max(0) as usize);
    for k in lo..=hi {
        let v = values[(k - 1) as usize] as i64;
        if !seen.insert(v) {
            return Inspection::Sequential;
        }
    }
    Inspection::ParallelOk
}

/// Inspects whether `idx(lo..=hi)` values all lie within
/// `[val_lo, val_hi]` — the run-time counterpart of the closed-form
/// bound property.
///
/// An empty section (`hi < lo`) is vacuously bounded — `ParallelOk`
/// before any materialization or bounds check.
pub fn inspect_bounded(
    store: &Store,
    idx: VarId,
    lo: i64,
    hi: i64,
    val_lo: i64,
    val_hi: i64,
) -> Inspection {
    if hi < lo {
        return Inspection::ParallelOk;
    }
    let Some(values) = store.array_as_reals(idx) else {
        return Inspection::Sequential;
    };
    if lo < 1 || hi as usize > values.len() {
        return Inspection::Sequential;
    }
    for k in lo..=hi {
        let v = values[(k - 1) as usize] as i64;
        if v < val_lo || v > val_hi {
            return Inspection::Sequential;
        }
    }
    Inspection::ParallelOk
}

/// Inspects whether `ptr` is a proper offset array for lengths `len`
/// over segments `lo..=hi`: `ptr(k+1) == ptr(k) + len(k)` with
/// `len(k) >= 0` — the run-time counterpart of the closed-form distance
/// property (the check the offset–length test performs statically).
///
/// An empty section (`hi < lo`) has no segments and is vacuously valid —
/// `ParallelOk` before any materialization or bounds check.
pub fn inspect_offset_length(
    store: &Store,
    ptr: VarId,
    len: VarId,
    lo: i64,
    hi: i64,
) -> Inspection {
    if hi < lo {
        return Inspection::ParallelOk;
    }
    let (Some(p), Some(l)) = (store.array_as_reals(ptr), store.array_as_reals(len)) else {
        return Inspection::Sequential;
    };
    if lo < 1 || (hi + 1) as usize > p.len() || hi as usize > l.len() {
        return Inspection::Sequential;
    }
    for k in lo..=hi {
        let lk = l[(k - 1) as usize] as i64;
        if lk < 0 {
            return Inspection::Sequential;
        }
        let pk = p[(k - 1) as usize] as i64;
        let pk1 = p[k as usize] as i64;
        if pk1 != pk + lk {
            return Inspection::Sequential;
        }
    }
    Inspection::ParallelOk
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use irr_frontend::parse_program;

    fn store_of(src: &str) -> (irr_frontend::Program, Store) {
        let p = parse_program(src).unwrap();
        let out = Interp::new(&p).run().unwrap();
        (p, out.store)
    }

    #[test]
    fn injective_inspector() {
        let (p, store) = store_of(
            "program t
             integer idx(10), i
             do i = 1, 10
               idx(i) = 11 - i
             enddo
             idx(10) = 9
             end",
        );
        let idx = p.symbols.lookup("idx").unwrap();
        // idx = [10, 9, ..., 2, 9]: first nine distinct, full range not.
        assert_eq!(inspect_injective(&store, idx, 1, 9), Inspection::ParallelOk);
        assert_eq!(
            inspect_injective(&store, idx, 1, 10),
            Inspection::Sequential
        );
        // Out of bounds is sequential.
        assert_eq!(
            inspect_injective(&store, idx, 1, 11),
            Inspection::Sequential
        );
    }

    #[test]
    fn bounded_inspector() {
        let (p, store) = store_of(
            "program t
             integer idx(10), i
             do i = 1, 10
               idx(i) = i + 2
             enddo
             end",
        );
        let idx = p.symbols.lookup("idx").unwrap();
        assert_eq!(
            inspect_bounded(&store, idx, 1, 10, 3, 12),
            Inspection::ParallelOk
        );
        assert_eq!(
            inspect_bounded(&store, idx, 1, 10, 1, 10),
            Inspection::Sequential
        );
    }

    #[test]
    fn offset_length_inspector() {
        let (p, store) = store_of(
            "program t
             integer ptr(11), len(10), k
             do k = 1, 10
               len(k) = mod(k, 3) + 1
             enddo
             ptr(1) = 1
             do k = 1, 10
               ptr(k + 1) = ptr(k) + len(k)
             enddo
             end",
        );
        let ptr = p.symbols.lookup("ptr").unwrap();
        let len = p.symbols.lookup("len").unwrap();
        assert_eq!(
            inspect_offset_length(&store, ptr, len, 1, 10),
            Inspection::ParallelOk
        );
        // Break one link.
        let (p2, store2) = store_of(
            "program t
             integer ptr(11), len(10), k
             do k = 1, 10
               len(k) = 2
             enddo
             ptr(1) = 1
             do k = 1, 10
               ptr(k + 1) = ptr(k) + len(k)
             enddo
             ptr(5) = 0
             end",
        );
        let ptr2 = p2.symbols.lookup("ptr").unwrap();
        let len2 = p2.symbols.lookup("len").unwrap();
        assert_eq!(
            inspect_offset_length(&store2, ptr2, len2, 1, 10),
            Inspection::Sequential
        );
    }
}
