//! Access-tracing hooks: the seam between the interpreter and the
//! dependence sanitizer (`irr-sanitizer`).
//!
//! The sanitizer cross-checks every static parallelization verdict
//! against the dependences a run *actually* exhibits. To observe them it
//! needs the interpreter's dynamic access stream: which array element
//! (or scalar) each loop iteration reads and writes. An [`AccessTracer`]
//! attached to an [`Interp`](crate::Interp) receives exactly that —
//! loop entries (with the live store, so inspectors can replay guard
//! decisions), iteration boundaries, and every element/scalar access
//! executed while the program runs sequentially.
//!
//! Tracing is **zero-cost when off**: the interpreter carries an
//! `Option` and every hook site is a single pointer-null check on the
//! `None` path (see the `sanitizer` bench group for the measured
//! overhead). A [`TraceConfig`] restricts which `do` loops emit
//! enter/iteration/exit events; element and scalar accesses are
//! forwarded whenever a tracer is attached, and the tracer drops them
//! when no traced loop is active.
//!
//! Parallel-dispatched loop executions are *not* traced: the sanitizer
//! audits the sequential semantics of a loop (the specification every
//! parallel execution must match), so traced runs use the sequential
//! dispatcher.

use crate::interp::Store;
use irr_frontend::{StmtId, VarId};
use std::collections::HashSet;

/// Which `do` loops emit trace events.
#[derive(Clone, Debug, Default)]
pub struct TraceConfig {
    /// Loops to trace; `None` traces every `do` loop.
    pub loops: Option<HashSet<StmtId>>,
}

impl TraceConfig {
    /// Traces every `do` loop in the program.
    pub fn all() -> TraceConfig {
        TraceConfig { loops: None }
    }

    /// Traces only the given loops.
    pub fn only(loops: impl IntoIterator<Item = StmtId>) -> TraceConfig {
        TraceConfig {
            loops: Some(loops.into_iter().collect()),
        }
    }

    /// Whether `loop_stmt` emits enter/iteration/exit events.
    pub fn traces(&self, loop_stmt: StmtId) -> bool {
        self.loops.as_ref().is_none_or(|l| l.contains(&loop_stmt))
    }
}

/// Receiver of the interpreter's dynamic access stream.
///
/// Loop events are properly nested: every `loop_enter` is matched by a
/// `loop_exit` (unless execution aborts with an error in between), and
/// `loop_iter` arrives once per iteration, before the body executes.
/// Access events fire for *all* accesses executed while a tracer is
/// attached, including accesses inside untraced loops, conditionals,
/// and called procedures — attribution to loop iterations is the
/// tracer's job (it knows which traced loops are active).
pub trait AccessTracer {
    /// A traced loop is entered, with its bounds already evaluated. The
    /// live store is provided so the tracer can replay run-time guard
    /// inspections at exactly the point the hybrid runtime would.
    fn loop_enter(&mut self, store: &Store, loop_stmt: StmtId, lo: i64, hi: i64, step: i64);

    /// A traced loop begins iteration `iter` (the induction variable's
    /// value for this trip).
    fn loop_iter(&mut self, loop_stmt: StmtId, iter: i64);

    /// A traced loop is exited (zero-trip loops exit immediately after
    /// entering).
    fn loop_exit(&mut self, loop_stmt: StmtId);

    /// An array element is read (`idx` is the flat, bounds-checked
    /// index).
    fn read_element(&mut self, array: VarId, idx: usize);

    /// An array element is written.
    fn write_element(&mut self, array: VarId, idx: usize);

    /// A scalar is read.
    fn read_scalar(&mut self, var: VarId);

    /// A scalar is written by an assignment statement. Loop induction
    /// variable updates are *not* reported — the iteration boundary
    /// already carries that information.
    fn write_scalar(&mut self, var: VarId);
}

/// The tracer attachment the interpreter carries: a config plus the
/// boxed hook.
pub(crate) struct TracerSlot {
    pub(crate) config: TraceConfig,
    pub(crate) hook: Box<dyn AccessTracer>,
}

impl std::fmt::Debug for TracerSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracerSlot")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use irr_frontend::parse_program;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Records the raw event stream for assertions.
    #[derive(Default)]
    struct EventLog {
        events: Vec<String>,
    }

    struct Recorder {
        log: Rc<RefCell<EventLog>>,
    }

    impl AccessTracer for Recorder {
        fn loop_enter(&mut self, _store: &Store, s: StmtId, lo: i64, hi: i64, step: i64) {
            self.log
                .borrow_mut()
                .events
                .push(format!("enter {s:?} {lo}..{hi} step {step}"));
        }
        fn loop_iter(&mut self, s: StmtId, iter: i64) {
            self.log
                .borrow_mut()
                .events
                .push(format!("iter {s:?} {iter}"));
        }
        fn loop_exit(&mut self, s: StmtId) {
            self.log.borrow_mut().events.push(format!("exit {s:?}"));
        }
        fn read_element(&mut self, a: VarId, idx: usize) {
            self.log
                .borrow_mut()
                .events
                .push(format!("rd {a:?}[{idx}]"));
        }
        fn write_element(&mut self, a: VarId, idx: usize) {
            self.log
                .borrow_mut()
                .events
                .push(format!("wr {a:?}[{idx}]"));
        }
        fn read_scalar(&mut self, v: VarId) {
            self.log.borrow_mut().events.push(format!("rds {v:?}"));
        }
        fn write_scalar(&mut self, v: VarId) {
            self.log.borrow_mut().events.push(format!("wrs {v:?}"));
        }
    }

    #[test]
    fn loop_events_are_nested_and_iterations_numbered() {
        let p = parse_program(
            "program t
             integer i
             real x(4)
             do i = 2, 4
               x(i) = i
             enddo
             end",
        )
        .unwrap();
        let log = Rc::new(RefCell::new(EventLog::default()));
        let mut it = Interp::new(&p);
        it.attach_tracer(TraceConfig::all(), Box::new(Recorder { log: log.clone() }));
        it.run().unwrap();
        let events = log.borrow().events.clone();
        let enters: Vec<&String> = events.iter().filter(|e| e.starts_with("enter")).collect();
        let iters: Vec<&String> = events.iter().filter(|e| e.starts_with("iter")).collect();
        let exits: Vec<&String> = events.iter().filter(|e| e.starts_with("exit")).collect();
        assert_eq!(enters.len(), 1);
        assert_eq!(exits.len(), 1);
        assert_eq!(iters.len(), 3, "{events:?}");
        assert!(enters[0].contains("2..4 step 1"), "{events:?}");
        // Three element writes, one per iteration.
        assert_eq!(
            events.iter().filter(|e| e.starts_with("wr ")).count(),
            3,
            "{events:?}"
        );
    }

    #[test]
    fn zero_trip_loop_enters_and_exits_without_iterations() {
        let p = parse_program(
            "program t
             integer i
             real x(4)
             do i = 5, 1
               x(1) = 9
             enddo
             end",
        )
        .unwrap();
        let log = Rc::new(RefCell::new(EventLog::default()));
        let mut it = Interp::new(&p);
        it.attach_tracer(TraceConfig::all(), Box::new(Recorder { log: log.clone() }));
        it.run().unwrap();
        let events = log.borrow().events.clone();
        assert_eq!(events.iter().filter(|e| e.starts_with("enter")).count(), 1);
        assert_eq!(events.iter().filter(|e| e.starts_with("exit")).count(), 1);
        assert_eq!(events.iter().filter(|e| e.starts_with("iter")).count(), 0);
        assert_eq!(events.iter().filter(|e| e.starts_with("wr ")).count(), 0);
    }

    #[test]
    fn config_filters_loop_events_but_not_accesses() {
        let p = parse_program(
            "program t
             integer i, j
             real x(4), y(4)
             do i = 1, 2
               do j = 1, 2
                 x(j) = y(j) + i
               enddo
             enddo
             end",
        )
        .unwrap();
        let outer = p
            .stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .find(|s| p.stmt(*s).kind.is_loop())
            .unwrap();
        let log = Rc::new(RefCell::new(EventLog::default()));
        let mut it = Interp::new(&p);
        it.attach_tracer(
            TraceConfig::only([outer]),
            Box::new(Recorder { log: log.clone() }),
        );
        it.run().unwrap();
        let events = log.borrow().events.clone();
        // Only the outer loop emits loop events; the inner loop's
        // accesses still arrive.
        assert_eq!(
            events.iter().filter(|e| e.starts_with("enter")).count(),
            1,
            "{events:?}"
        );
        assert_eq!(events.iter().filter(|e| e.starts_with("iter")).count(), 2);
        assert_eq!(events.iter().filter(|e| e.starts_with("wr ")).count(), 4);
    }
}
