//! Analytic machine models and the speedup simulator for Fig. 16.
//!
//! The interpreter measures per-iteration costs of every parallelized
//! loop. The simulator converts a profile into a parallel execution time
//! under **static block scheduling** on `P` processors (the scheduling
//! Polaris' backend generated), plus per-parallel-region overhead:
//!
//! ```text
//! T_region(P) = max over processors of (sum of its chunk's iteration
//!               costs)  +  fork + join*P  +  barrier_per_iter * n/P
//! ```
//!
//! Two machine presets reproduce the paper's platforms: the Origin 2000
//! (fast interconnect, moderate fork cost — speedups to 32 processors)
//! and the older Challenge (four processors, much cheaper fork —
//! which is why tiny-input DYFESM only speeds up there, Fig. 16(f)).

use crate::interp::ExecStats;
use irr_frontend::StmtId;
use std::collections::HashMap;

/// An analytic parallel machine.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// Display name.
    pub name: &'static str,
    /// Maximum processors.
    pub max_procs: usize,
    /// Fixed cost of entering a parallel region (cost units).
    pub fork_overhead: f64,
    /// Additional cost per participating processor (thread wake/join).
    pub per_proc_overhead: f64,
    /// Per-iteration scheduling/cache tax in parallel mode.
    pub per_iter_overhead: f64,
}

impl MachineModel {
    /// The SGI Origin 2000 preset (195 MHz R10k, up to 32 used).
    pub fn origin2000() -> MachineModel {
        MachineModel {
            name: "Origin2000",
            max_procs: 32,
            fork_overhead: 600.0,
            per_proc_overhead: 60.0,
            per_iter_overhead: 0.3,
        }
    }

    /// The SGI Challenge preset (200 MHz R4400, 4 processors): slower
    /// processors make the *relative* parallelization overhead far
    /// smaller, which is why tiny workloads still speed up (Fig. 16(f)).
    pub fn challenge() -> MachineModel {
        MachineModel {
            name: "Challenge",
            max_procs: 4,
            fork_overhead: 40.0,
            per_proc_overhead: 8.0,
            per_iter_overhead: 0.05,
        }
    }
}

/// Profile of one parallelized loop.
#[derive(Clone, Debug, Default)]
pub struct LoopProfile {
    /// Total sequential cost spent in the loop (all invocations).
    pub total_cost: u64,
    /// Per-invocation per-iteration costs.
    pub invocations: Vec<Vec<u64>>,
}

/// Profile of a whole program run.
#[derive(Clone, Debug, Default)]
pub struct ProgramProfile {
    /// Total sequential cost.
    pub total_cost: u64,
    /// Profiles of the loops that will run in parallel.
    pub parallel_loops: HashMap<StmtId, LoopProfile>,
}

impl ProgramProfile {
    /// Extracts a profile from interpreter statistics, keeping the given
    /// loops as the parallel set.
    pub fn from_stats(stats: &ExecStats, parallel: &[StmtId]) -> ProgramProfile {
        let mut loops = HashMap::new();
        for &l in parallel {
            if let Some(ls) = stats.loops.get(&l) {
                loops.insert(
                    l,
                    LoopProfile {
                        total_cost: ls.total_cost,
                        invocations: ls.iteration_costs.clone(),
                    },
                );
            }
        }
        ProgramProfile {
            total_cost: stats.total_cost,
            parallel_loops: loops,
        }
    }

    /// The fraction of sequential time covered by the parallel loops
    /// (Table 3's "% of sequential time" column).
    pub fn parallel_coverage(&self) -> f64 {
        if self.total_cost == 0 {
            return 0.0;
        }
        let covered: u64 = self.parallel_loops.values().map(|l| l.total_cost).sum();
        covered as f64 / self.total_cost as f64
    }
}

/// Simulated execution time of one parallel region invocation.
fn region_time(iter_costs: &[u64], procs: usize, m: &MachineModel) -> f64 {
    if iter_costs.is_empty() {
        return 0.0;
    }
    let p = procs.clamp(1, iter_costs.len());
    if p == 1 {
        return iter_costs.iter().sum::<u64>() as f64;
    }
    // Static block scheduling: contiguous chunks, sizes n/p (+1).
    let n = iter_costs.len();
    let base = n / p;
    let extra = n % p;
    let mut start = 0usize;
    let mut max_chunk = 0f64;
    for t in 0..p {
        let len = base + usize::from(t < extra);
        let sum: u64 = iter_costs[start..start + len].iter().sum();
        start += len;
        max_chunk = max_chunk.max(sum as f64);
    }
    max_chunk
        + m.fork_overhead
        + m.per_proc_overhead * p as f64
        + m.per_iter_overhead * (n as f64 / p as f64)
}

/// Simulated total program time on `procs` processors.
pub fn simulate_program_time(profile: &ProgramProfile, procs: usize, m: &MachineModel) -> f64 {
    let serial_part: f64 = profile.total_cost as f64
        - profile
            .parallel_loops
            .values()
            .map(|l| l.total_cost as f64)
            .sum::<f64>();
    let mut t = serial_part.max(0.0);
    for lp in profile.parallel_loops.values() {
        for inv in &lp.invocations {
            t += region_time(inv, procs, m);
        }
    }
    t
}

/// Speedup relative to the sequential run.
pub fn simulate_speedup(profile: &ProgramProfile, procs: usize, m: &MachineModel) -> f64 {
    let t_par = simulate_program_time(profile, procs, m);
    if t_par <= 0.0 {
        return 1.0;
    }
    profile.total_cost as f64 / t_par
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_profile(iters: usize, cost: u64, invocations: usize) -> ProgramProfile {
        let inv: Vec<Vec<u64>> = (0..invocations).map(|_| vec![cost; iters]).collect();
        let total = (iters as u64) * cost * invocations as u64;
        let mut loops = HashMap::new();
        loops.insert(
            StmtId(0),
            LoopProfile {
                total_cost: total,
                invocations: inv,
            },
        );
        ProgramProfile {
            total_cost: total,
            parallel_loops: loops,
        }
    }

    #[test]
    fn near_linear_speedup_for_big_balanced_loops() {
        let profile = uniform_profile(100_000, 50, 1);
        let m = MachineModel::origin2000();
        let s8 = simulate_speedup(&profile, 8, &m);
        assert!(s8 > 7.0, "s8 = {s8}");
        let s32 = simulate_speedup(&profile, 32, &m);
        assert!(s32 > 24.0, "s32 = {s32}");
    }

    #[test]
    fn tiny_loops_slow_down_with_more_processors() {
        // DYFESM-like: many invocations of a small region (~300 units
        // of work per region).
        let profile = uniform_profile(30, 10, 2000);
        let m = MachineModel::origin2000();
        let s1 = simulate_speedup(&profile, 1, &m);
        let s8 = simulate_speedup(&profile, 8, &m);
        assert!(s1 <= 1.0 + 1e-9);
        assert!(s8 < 1.0, "overhead dominates: s8 = {s8}");
        // ... but the cheap-fork Challenge still gains.
        let c = MachineModel::challenge();
        let s4c = simulate_speedup(&profile, 4, &c);
        let s1c = simulate_speedup(&profile, 1, &c);
        assert!(s4c > s1c, "s4c = {s4c}, s1c = {s1c}");
    }

    #[test]
    fn imbalanced_triangular_loops_scale_sublinearly() {
        // Iteration i costs i (TRFD-like triangular): with block
        // scheduling the last chunk dominates.
        let iters: Vec<u64> = (1..=10_000u64).collect();
        let total: u64 = iters.iter().sum();
        let mut loops = HashMap::new();
        loops.insert(
            StmtId(0),
            LoopProfile {
                total_cost: total,
                invocations: vec![iters],
            },
        );
        let profile = ProgramProfile {
            total_cost: total,
            parallel_loops: loops,
        };
        let m = MachineModel::origin2000();
        let s4 = simulate_speedup(&profile, 4, &m);
        // Perfect would be 4; block scheduling gives ~ total / last
        // chunk = n^2/2 / (n^2 (1 - 9/16) / 2)... well below 4.
        assert!(s4 > 1.5 && s4 < 3.5, "s4 = {s4}");
    }

    #[test]
    fn amdahl_limit_from_serial_part() {
        // Half the program is serial.
        let mut profile = uniform_profile(100_000, 50, 1);
        profile.total_cost *= 2;
        let m = MachineModel::origin2000();
        let s32 = simulate_speedup(&profile, 32, &m);
        assert!(s32 < 2.0 + 1e-9, "Amdahl bound: {s32}");
        assert!(s32 > 1.8);
    }

    #[test]
    fn coverage_fraction() {
        let mut profile = uniform_profile(1000, 10, 1);
        profile.total_cost *= 4; // loop is 25% of the program
        assert!((profile.parallel_coverage() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn more_processors_than_iterations() {
        let profile = uniform_profile(3, 1000, 1);
        let m = MachineModel::origin2000();
        // Clamped to 3 processors; no panic, sane value.
        let s = simulate_speedup(&profile, 32, &m);
        assert!(s > 0.0 && s < 3.5);
    }
}
