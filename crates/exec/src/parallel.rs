//! Thread-based parallel execution used to *verify* the compiler's
//! parallelization decisions.
//!
//! A loop the driver declared parallel is executed by splitting its
//! iteration space into contiguous chunks, running each chunk in its own
//! thread on a **clone of the global store**, and merging the chunks'
//! write sets. The merge detects write conflicts, so the property-based
//! soundness tests can assert: *loops judged parallel produce exactly
//! the sequential result, with no conflicting writes*.

use crate::interp::{ArrayData, ExecError, Interp, Store, Value};
use irr_frontend::{Program, StmtId, StmtKind, VarId};

/// How a chunk-merged scalar reduction combines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// `s = s + e`: merged by summing per-thread deltas.
    Sum,
    /// `s = min(s, e)`: merged by taking the minimum of thread results.
    Min,
    /// `s = max(s, e)`.
    Max,
}

/// How a designated loop is run in parallel.
#[derive(Clone, Debug)]
pub struct ParallelPlan {
    /// Number of worker threads.
    pub threads: usize,
    /// Variables whose final values are per-thread scratch (privatized
    /// arrays and scalars) — excluded from the merge.
    pub privatized: Vec<VarId>,
    /// Scalar reductions and their combining operators.
    pub reductions: Vec<(VarId, ReduceOp)>,
}

impl ParallelPlan {
    /// A plan with the given thread count and nothing privatized.
    pub fn with_threads(threads: usize) -> ParallelPlan {
        ParallelPlan {
            threads,
            privatized: Vec::new(),
            reductions: Vec::new(),
        }
    }
}

/// Errors from parallel verification.
#[derive(Debug)]
pub enum ParallelError {
    /// A runtime error inside a worker.
    Exec(ExecError),
    /// Two chunks wrote different values to the same location.
    WriteConflict { var: String },
    /// The designated statement is not a `do` loop.
    NotADoLoop,
}

impl std::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelError::Exec(e) => write!(f, "worker failed: {e}"),
            ParallelError::WriteConflict { var } => {
                write!(f, "conflicting parallel writes to `{var}`")
            }
            ParallelError::NotADoLoop => write!(f, "parallel target is not a do loop"),
        }
    }
}

impl std::error::Error for ParallelError {}

impl From<ExecError> for ParallelError {
    fn from(e: ExecError) -> Self {
        ParallelError::Exec(e)
    }
}

/// Runs the program sequentially **except** for `loop_stmt`, which is
/// executed in parallel chunks per `plan` the first time it is reached
/// at top level of `main`'s dynamic execution.
///
/// Returns the final store.
///
/// # Errors
///
/// Returns [`ParallelError::WriteConflict`] when chunks disagree — i.e.
/// the loop was *not* actually parallel.
pub fn run_loop_parallel(
    program: &Program,
    loop_stmt: StmtId,
    plan: &ParallelPlan,
) -> Result<Store, ParallelError> {
    // Execute statements of main one by one; when the target loop is
    // reached (it must be a top-level statement of some procedure body
    // reached dynamically), run it chunked. To keep the walker simple we
    // interpret normally but intercept exactly the designated StmtId via
    // a custom driver loop.
    let mut interp = Interp::new(program);
    let main = program.main();
    let body = program.procedures[main.index()].body.clone();
    exec_with_interception(&mut interp, &body, loop_stmt, plan)?;
    Ok(interp.store)
}

fn exec_with_interception(
    interp: &mut Interp<'_>,
    body: &[StmtId],
    target: StmtId,
    plan: &ParallelPlan,
) -> Result<(), ParallelError> {
    for &s in body {
        if s == target {
            run_chunked(interp, s, plan)?;
            continue;
        }
        match interp_stmt_kind(interp, s) {
            Kind::Call(p) => {
                let pbody = interp_program(interp).procedures[p.index()].body.clone();
                exec_with_interception(interp, &pbody, target, plan)?;
            }
            Kind::Other => interp.exec_stmt(s)?,
        }
    }
    Ok(())
}

enum Kind {
    Call(irr_frontend::ProcId),
    Other,
}

fn interp_stmt_kind(interp: &Interp<'_>, s: StmtId) -> Kind {
    match &interp_program(interp).stmt(s).kind {
        StmtKind::Call { proc } => Kind::Call(*proc),
        _ => Kind::Other,
    }
}

fn interp_program<'p>(interp: &Interp<'p>) -> &'p Program {
    // Accessor shim: Interp keeps the program private; re-derive via a
    // small public API.
    interp.program()
}

fn run_chunked(
    interp: &mut Interp<'_>,
    loop_stmt: StmtId,
    plan: &ParallelPlan,
) -> Result<(), ParallelError> {
    let program = interp.program();
    let StmtKind::Do { lo, hi, step, .. } = program.stmt(loop_stmt).kind.clone() else {
        return Err(ParallelError::NotADoLoop);
    };
    let lo = interp.eval(&lo)?.as_int();
    let hi = interp.eval(&hi)?.as_int();
    let step = match step {
        Some(e) => interp.eval(&e)?.as_int(),
        None => 1,
    };
    exec_do_parallel(interp, loop_stmt, plan, lo, hi, step)
}

/// Executes one `do` loop in parallel chunks per `plan`, with the bounds
/// already evaluated. This is the dispatch hook the hybrid runtime uses
/// after a guard (or a compile-time verdict) clears the loop: the
/// iteration space `lo..=hi` is split into contiguous chunks, each chunk
/// runs in its own thread on a clone of the live store, and the chunks'
/// write sets are merged back (detecting conflicts).
///
/// Loop statistics record the invocation; the induction variable is left
/// at `hi + 1` (or `lo` for a zero-trip loop), matching sequential
/// semantics.
///
/// # Errors
///
/// [`ParallelError::NotADoLoop`] when the statement is not a `do` loop
/// or `step != 1`; [`ParallelError::WriteConflict`] when chunks disagree;
/// worker [`ExecError`]s are propagated.
pub fn exec_do_parallel(
    interp: &mut Interp<'_>,
    loop_stmt: StmtId,
    plan: &ParallelPlan,
    lo: i64,
    hi: i64,
    step: i64,
) -> Result<(), ParallelError> {
    let program = interp.program();
    let StmtKind::Do { var, body, .. } = program.stmt(loop_stmt).kind.clone() else {
        return Err(ParallelError::NotADoLoop);
    };
    if step != 1 {
        return Err(ParallelError::NotADoLoop);
    }
    interp.stats.loops.entry(loop_stmt).or_default().invocations += 1;
    let ty = program.symbols.var(var).ty;
    if lo > hi {
        // Zero-trip: sequential semantics leave the induction variable
        // at `lo`.
        interp.store.set_scalar(var, ty, Value::Int(lo));
        return Ok(());
    }
    let n = (hi - lo + 1) as usize;
    let threads = plan.threads.clamp(1, n);
    let snapshot = interp.store.clone();
    // Chunk boundaries.
    let mut chunks: Vec<(i64, i64)> = Vec::with_capacity(threads);
    let base = n / threads;
    let extra = n % threads;
    let mut start = lo;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        if len == 0 {
            continue;
        }
        chunks.push((start, start + len as i64 - 1));
        start += len as i64;
    }
    // Run each chunk on a cloned store.
    let results: Vec<Result<Store, ExecError>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(clo, chi) in &chunks {
            let snapshot = snapshot.clone();
            let body = body.clone();
            handles.push(scope.spawn(move || {
                let mut worker = Interp::new(program);
                worker.store = snapshot;
                let ty = program.symbols.var(var).ty;
                let mut i = clo;
                while i <= chi {
                    worker.store.set_scalar(var, ty, Value::Int(i));
                    worker.exec_body(&body)?;
                    i += 1;
                }
                Ok(worker.store)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut stores = Vec::with_capacity(results.len());
    for r in results {
        stores.push(r?);
    }
    // Merge into the master store.
    merge(program, interp, &snapshot, &stores, plan, var)?;
    // Sequential semantics: the induction variable ends one past `hi`.
    interp.store.set_scalar(var, ty, Value::Int(hi + 1));
    Ok(())
}

fn merge(
    program: &Program,
    interp: &mut Interp<'_>,
    snapshot: &Store,
    stores: &[Store],
    plan: &ParallelPlan,
    loop_var: VarId,
) -> Result<(), ParallelError> {
    // Scalars.
    for (idx, _) in snapshot.scalars().iter().enumerate() {
        let v = VarId(idx as u32);
        if v == loop_var || plan.privatized.contains(&v) {
            continue;
        }
        if let Some((_, op)) = plan.reductions.iter().find(|(r, _)| *r == v) {
            let base = snapshot.scalars()[idx];
            let mut acc = base;
            for st in stores {
                let d = st.scalars()[idx];
                acc = match op {
                    ReduceOp::Sum => match (acc, d, base) {
                        (Value::Int(a), Value::Int(x), Value::Int(b)) => Value::Int(a + (x - b)),
                        (a, x, b) => Value::Real(a.as_real() + (x.as_real() - b.as_real())),
                    },
                    ReduceOp::Min => match (acc, d) {
                        (Value::Int(a), Value::Int(x)) => Value::Int(a.min(x)),
                        (a, x) => Value::Real(a.as_real().min(x.as_real())),
                    },
                    ReduceOp::Max => match (acc, d) {
                        (Value::Int(a), Value::Int(x)) => Value::Int(a.max(x)),
                        (a, x) => Value::Real(a.as_real().max(x.as_real())),
                    },
                };
            }
            interp.store.scalars_mut()[idx] = acc;
            continue;
        }
        let mut merged = snapshot.scalars()[idx];
        let mut writer_seen = false;
        for st in stores {
            let val = st.scalars()[idx];
            if val != snapshot.scalars()[idx] {
                if writer_seen && val != merged {
                    return Err(ParallelError::WriteConflict {
                        var: program.symbols.name(v).to_string(),
                    });
                }
                merged = val;
                writer_seen = true;
            }
        }
        interp.store.scalars_mut()[idx] = merged;
    }
    // Arrays.
    for idx in 0..snapshot.scalars().len() {
        let v = VarId(idx as u32);
        let base = snapshot.array(v).cloned();
        if plan.privatized.contains(&v) {
            // Scratch: keep the snapshot contents.
            if interp.store.array(v) != base.as_ref() {
                *interp.store.array_mut(v) = base;
            }
            continue;
        }
        // Some workers may have materialized an array the snapshot had
        // not touched; treat missing as zero-filled by materializing the
        // largest version.
        let mut merged: Option<ArrayData> = base.clone();
        for st in stores {
            let Some(theirs) = st.array(v) else { continue };
            match &mut merged {
                None => merged = Some(theirs.clone()),
                Some(m) => {
                    merge_array(program, v, m, base.as_ref(), theirs)?;
                }
            }
        }
        // Write back (and bump the array's version) only on a real
        // change: schedule-cache keys depend on versions staying put for
        // arrays the loop never touched.
        if interp.store.array(v) != merged.as_ref() {
            *interp.store.array_mut(v) = merged;
        }
    }
    Ok(())
}

fn merge_array(
    program: &Program,
    v: VarId,
    merged: &mut ArrayData,
    base: Option<&ArrayData>,
    theirs: &ArrayData,
) -> Result<(), ParallelError> {
    let conflict = || ParallelError::WriteConflict {
        var: program.symbols.name(v).to_string(),
    };
    match (merged, theirs) {
        (ArrayData::Int { data: m, .. }, ArrayData::Int { data: t, .. }) => {
            for k in 0..m.len().min(t.len()) {
                let b = match base {
                    Some(ArrayData::Int { data, .. }) => data.get(k).copied().unwrap_or(0),
                    _ => 0,
                };
                if t[k] != b {
                    if m[k] != b && m[k] != t[k] {
                        return Err(conflict());
                    }
                    m[k] = t[k];
                }
            }
            Ok(())
        }
        (ArrayData::Real { data: m, .. }, ArrayData::Real { data: t, .. }) => {
            for k in 0..m.len().min(t.len()) {
                let b = match base {
                    Some(ArrayData::Real { data, .. }) => data.get(k).copied().unwrap_or(0.0),
                    _ => 0.0,
                };
                #[allow(clippy::float_cmp)]
                if t[k] != b {
                    if m[k] != b && m[k] != t[k] {
                        return Err(conflict());
                    }
                    m[k] = t[k];
                }
            }
            Ok(())
        }
        _ => Err(conflict()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    fn first_do(p: &Program) -> StmtId {
        p.stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .find(|s| matches!(p.stmt(*s).kind, StmtKind::Do { .. }))
            .unwrap()
    }

    #[test]
    fn parallel_matches_sequential_for_independent_loop() {
        let src = "program t
             integer i
             real x(100), y(100)
             do i = 1, 100
               y(i) = i * 0.5
             enddo
             do i = 1, 100
               x(i) = y(i) * 2 + 1
             enddo
             end";
        let p = parse_program(src).unwrap();
        let seq = Interp::new(&p).run().unwrap();
        let second = p
            .stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .filter(|s| matches!(p.stmt(*s).kind, StmtKind::Do { .. }))
            .nth(1)
            .unwrap();
        let plan = ParallelPlan::with_threads(4);
        let par = run_loop_parallel(&p, second, &plan).unwrap();
        let x = p.symbols.lookup("x").unwrap();
        assert_eq!(seq.store.array_as_reals(x), par.array_as_reals(x));
    }

    #[test]
    fn conflicting_writes_are_detected() {
        let src = "program t
             integer i
             real x(10)
             do i = 1, 100
               x(1) = i
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan::with_threads(4);
        let err = run_loop_parallel(&p, first_do(&p), &plan).unwrap_err();
        assert!(matches!(err, ParallelError::WriteConflict { .. }));
    }

    #[test]
    fn sum_reduction_merges() {
        let src = "program t
             integer i
             real s, x(100)
             do i = 1, 100
               x(i) = i
             enddo
             do i = 1, 100
               s = s + x(i)
             enddo
             end";
        let p = parse_program(src).unwrap();
        let loops: Vec<StmtId> = p
            .stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .filter(|s| matches!(p.stmt(*s).kind, StmtKind::Do { .. }))
            .collect();
        let s = p.symbols.lookup("s").unwrap();
        let plan = ParallelPlan {
            threads: 3,
            privatized: vec![],
            reductions: vec![(s, ReduceOp::Sum)],
        };
        let st = run_loop_parallel(&p, loops[1], &plan).unwrap();
        assert_eq!(st.scalar(s).as_real(), 5050.0);
    }

    #[test]
    fn privatized_scratch_is_ignored_in_merge() {
        let src = "program t
             integer i, j
             real tmp(10), z(100)
             do i = 1, 100
               do j = 1, 10
                 tmp(j) = i + j
               enddo
               z(i) = tmp(1) + tmp(10)
             enddo
             end";
        let p = parse_program(src).unwrap();
        let tmp = p.symbols.lookup("tmp").unwrap();
        let jv = p.symbols.lookup("j").unwrap();
        let plan = ParallelPlan {
            threads: 4,
            privatized: vec![tmp, jv],
            reductions: vec![],
        };
        let st = run_loop_parallel(&p, first_do(&p), &plan).unwrap();
        let seq = Interp::new(&p).run().unwrap();
        let z = p.symbols.lookup("z").unwrap();
        assert_eq!(st.array_as_reals(z), seq.store.array_as_reals(z));
    }
}
