//! Thread-based parallel execution used to *verify* the compiler's
//! parallelization decisions.
//!
//! A loop the driver declared parallel is executed by splitting its
//! iteration space into contiguous chunks. Each chunk runs in its own
//! thread on a cheap clone of the live store (array payloads are
//! Arc-shared and copy-on-write, so the clone is O(#variables), not
//! O(store size)) with **write recording** turned on, and hands back
//! only its [`WriteLog`]. The merge replays the logs against the master
//! store in `O(total writes)`:
//!
//! - conflicts are detected *positionally* — two chunks writing the
//!   same location conflict regardless of the values written, so a
//!   write whose value happens to equal the pre-loop value (invisible
//!   to the old snapshot-diff merge) is still caught;
//! - scalar reductions combine per-chunk final values under the plan's
//!   [`ReduceOp`];
//! - worker execution statistics, printed output, and fuel consumption
//!   are aggregated into the master interpreter instead of dropped.
//!
//! The property-based soundness tests use this to assert: *loops judged
//! parallel produce exactly the sequential result, with no conflicting
//! writes*.
//!
//! # Execution strategies
//!
//! The write-log transaction is the safety net, not the only path.
//! When the compiler proved *where* a loop writes, the dispatch can
//! skip the *conflict machinery the proof made redundant*
//! ([`ExecutionStrategy`]):
//!
//! - [`ExecutionStrategy::InPlaceDisjoint`] — every target array is
//!   written only at `loop_var + c` and never read, so chunks own
//!   disjoint windows of each target: workers write the master buffers
//!   directly (no payload clone, no log, no merge). The executor
//!   re-derives the proof itself per dispatch
//!   ([`irr_driver::derive_in_place_facts`]) and silently downgrades
//!   to the write-log when it cannot — a forged verdict can never
//!   reach the raw write path.
//! - [`ExecutionStrategy::PrivatizeAndConcat`] — consecutively-written
//!   arrays (`p = p + 1; a(p) = ...`) buffer per worker and
//!   concatenate positionally at commit; the append discipline is
//!   re-validated dynamically (contiguous positions, pointer delta ==
//!   buffer length per chunk).
//!
//! Rollback stays free: an in-place dispatch that fails mid-flight may
//! have dirtied target windows, but targets are write-only with
//! loop-invariant inputs, so the sequential fallback deterministically
//! rewrites every touched location with the correct values.

use crate::bytecode::{CompiledBody, CompiledProfile};
use crate::fault::FaultKind;
use crate::interp::{
    ArrayData, ConcatBuf, ExecError, ExecStats, InPlaceWindow, Interp, RawSlice, Store, Value,
    WriteLog, WriteOverlay,
};
use irr_frontend::{Program, StmtId, StmtKind, VarId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a parallel dispatch writes results back to the master store.
///
/// The plan's strategy is a *request*; [`exec_do_parallel`] re-derives
/// the facts behind it and downgrades to [`WriteLog`] when the proof
/// does not hold for this loop, so the value returned by a committed
/// dispatch is the strategy that actually ran.
///
/// [`WriteLog`]: ExecutionStrategy::WriteLog
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ExecutionStrategy {
    /// Workers log writes on copy-on-write store clones and a
    /// validating merge replays them — the transactional safety net,
    /// always correct, used for runtime-guarded and unproven loops.
    #[default]
    WriteLog,
    /// Proven-disjoint affine writes land directly in the master
    /// store's buffers: no clone, no log, no merge.
    InPlaceDisjoint,
    /// Consecutively-written arrays buffer per worker and concatenate
    /// positionally; scalar reductions combine per chunk.
    PrivatizeAndConcat,
}

impl ExecutionStrategy {
    /// Short stable name, used in telemetry dumps and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionStrategy::WriteLog => "write-log",
            ExecutionStrategy::InPlaceDisjoint => "in-place-disjoint",
            ExecutionStrategy::PrivatizeAndConcat => "privatize-concat",
        }
    }
}

/// How a chunk-merged scalar reduction combines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// `s = s + e`: merged by summing per-thread deltas.
    Sum,
    /// `s = min(s, e)`: merged by taking the minimum of thread results.
    Min,
    /// `s = max(s, e)`.
    Max,
}

/// How a designated loop is run in parallel.
#[derive(Clone, Debug)]
pub struct ParallelPlan {
    /// Number of worker threads.
    pub threads: usize,
    /// Variables whose final values are per-thread scratch (privatized
    /// arrays and scalars) — excluded from the merge.
    pub privatized: Vec<VarId>,
    /// Scalar reductions and their combining operators.
    pub reductions: Vec<(VarId, ReduceOp)>,
    /// Per-worker wall-clock deadline in milliseconds: a worker still
    /// running past it aborts its chunk and the dispatch fails with
    /// [`ParallelError::Timeout`] (so a runaway worker becomes a
    /// sequential fallback instead of a wedged run). `None` disables
    /// the watchdog — the hot path then never reads a clock.
    pub deadline_ms: Option<u64>,
    /// An injected fault for this dispatch (chaos testing); `None` in
    /// ordinary runs, checked once per dispatch.
    pub fault: Option<FaultKind>,
    /// How committed results should reach the master store. This is a
    /// request: the executor re-derives the facts behind a non-default
    /// strategy on every dispatch and silently downgrades to the
    /// write-log when the proof does not hold for this loop.
    pub strategy: ExecutionStrategy,
    /// Whether worker chunks may run the loop body through the register
    /// bytecode tier instead of the tree-walk (see [`crate::bytecode`]).
    /// Like `strategy`, this is a request: the master re-lowers the
    /// nest at dispatch and workers silently fall back to the AST walk
    /// when the body is not lowerable. Composes with every write-back
    /// strategy — the bytecode writes through the same store paths the
    /// interpreter does, so overlays and write logs see identical
    /// streams.
    pub compiled: bool,
}

impl Default for ParallelPlan {
    fn default() -> Self {
        ParallelPlan {
            threads: 4,
            privatized: Vec::new(),
            reductions: Vec::new(),
            deadline_ms: None,
            fault: None,
            strategy: ExecutionStrategy::WriteLog,
            compiled: true,
        }
    }
}

impl ParallelPlan {
    /// A plan with the given thread count and nothing privatized.
    pub fn with_threads(threads: usize) -> ParallelPlan {
        ParallelPlan {
            threads,
            ..ParallelPlan::default()
        }
    }
}

/// Errors from parallel verification.
#[derive(Debug)]
pub enum ParallelError {
    /// A runtime error inside a worker.
    Exec(ExecError),
    /// Two chunks wrote the same location (a write-write conflict —
    /// the loop was not actually parallel).
    WriteConflict { var: String },
    /// Chunks disagree about an array's shape, or a logged write lands
    /// past the master array's extent. Always a hard error: silently
    /// truncating the merge would drop writes.
    ShapeMismatch { var: String, detail: String },
    /// A worker thread panicked; the panic payload is preserved so the
    /// verification fails with a diagnosis instead of aborting the
    /// process.
    WorkerPanic { detail: String },
    /// The designated statement is not a `do` loop.
    NotADoLoop,
    /// The loop has a non-unit step, which the chunked executor does
    /// not support.
    UnsupportedStep { step: i64 },
    /// A worker exceeded the plan's per-worker deadline (watchdog): the
    /// chunk was abandoned and the whole dispatch must fall back.
    Timeout { worker: usize, deadline_ms: u64 },
    /// An execution strategy's dynamic self-check failed: an in-place
    /// write left its proven window, or an append sequence broke the
    /// consecutive-write discipline (pointer delta != buffer length,
    /// non-contiguous positions). The dispatch falls back sequentially.
    StrategyViolation { var: String, strategy: &'static str },
}

impl std::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelError::Exec(e) => write!(f, "worker failed: {e}"),
            ParallelError::WriteConflict { var } => {
                write!(f, "conflicting parallel writes to `{var}`")
            }
            ParallelError::ShapeMismatch { var, detail } => {
                write!(
                    f,
                    "parallel chunks disagree on the shape of `{var}`: {detail}"
                )
            }
            ParallelError::WorkerPanic { detail } => {
                write!(f, "parallel worker panicked: {detail}")
            }
            ParallelError::NotADoLoop => write!(f, "parallel target is not a do loop"),
            ParallelError::UnsupportedStep { step } => {
                write!(
                    f,
                    "do-loop step {step} is unsupported by the chunked executor (unit step only)"
                )
            }
            ParallelError::Timeout {
                worker,
                deadline_ms,
            } => {
                write!(
                    f,
                    "parallel worker {worker} exceeded its {deadline_ms} ms deadline"
                )
            }
            ParallelError::StrategyViolation { var, strategy } => {
                write!(f, "execution strategy {strategy} violated on `{var}`")
            }
        }
    }
}

impl std::error::Error for ParallelError {}

impl From<ExecError> for ParallelError {
    fn from(e: ExecError) -> Self {
        ParallelError::Exec(e)
    }
}

impl ParallelError {
    /// The reason code the sequential fallback records for this error.
    /// `None` for [`ParallelError::Exec`]: a genuine runtime error is
    /// the program's fault, not the dispatch's, and must propagate.
    pub fn fallback_reason(&self) -> Option<crate::dispatch::FallbackReason> {
        use crate::dispatch::FallbackReason;
        match self {
            ParallelError::Exec(_) => None,
            ParallelError::WriteConflict { .. } => Some(FallbackReason::Conflict),
            ParallelError::ShapeMismatch { .. } => Some(FallbackReason::Shape),
            ParallelError::WorkerPanic { .. } => Some(FallbackReason::Panic),
            ParallelError::NotADoLoop | ParallelError::UnsupportedStep { .. } => {
                Some(FallbackReason::Unsupported)
            }
            ParallelError::Timeout { .. } => Some(FallbackReason::Timeout),
            ParallelError::StrategyViolation { .. } => Some(FallbackReason::Strategy),
        }
    }
}

/// Runs the program sequentially **except** for `loop_stmt`, which is
/// executed in parallel chunks per `plan` the first time it is reached
/// at top level of `main`'s dynamic execution.
///
/// Returns the final store.
///
/// # Errors
///
/// Returns [`ParallelError::WriteConflict`] when chunks overlap — i.e.
/// the loop was *not* actually parallel.
pub fn run_loop_parallel(
    program: &Program,
    loop_stmt: StmtId,
    plan: &ParallelPlan,
) -> Result<Store, ParallelError> {
    // Execute statements of main one by one; when the target loop is
    // reached (it must be a top-level statement of some procedure body
    // reached dynamically), run it chunked. To keep the walker simple we
    // interpret normally but intercept exactly the designated StmtId via
    // a custom driver loop.
    let mut interp = Interp::new(program);
    let main = program.main();
    let body = program.procedures[main.index()].body.clone();
    exec_with_interception(&mut interp, &body, loop_stmt, plan)?;
    Ok(interp.store)
}

fn exec_with_interception(
    interp: &mut Interp<'_>,
    body: &[StmtId],
    target: StmtId,
    plan: &ParallelPlan,
) -> Result<(), ParallelError> {
    for &s in body {
        if s == target {
            run_chunked(interp, s, plan)?;
            continue;
        }
        match interp_stmt_kind(interp, s) {
            Kind::Call(p) => {
                let pbody = interp_program(interp).procedures[p.index()].body.clone();
                exec_with_interception(interp, &pbody, target, plan)?;
            }
            Kind::Other => interp.exec_stmt(s)?,
        }
    }
    Ok(())
}

enum Kind {
    Call(irr_frontend::ProcId),
    Other,
}

fn interp_stmt_kind(interp: &Interp<'_>, s: StmtId) -> Kind {
    match &interp_program(interp).stmt(s).kind {
        StmtKind::Call { proc } => Kind::Call(*proc),
        _ => Kind::Other,
    }
}

fn interp_program<'p>(interp: &Interp<'p>) -> &'p Program {
    // Accessor shim: Interp keeps the program private; re-derive via a
    // small public API.
    interp.program()
}

fn run_chunked(
    interp: &mut Interp<'_>,
    loop_stmt: StmtId,
    plan: &ParallelPlan,
) -> Result<(), ParallelError> {
    let program = interp.program();
    let StmtKind::Do { lo, hi, step, .. } = &program.stmt(loop_stmt).kind else {
        return Err(ParallelError::NotADoLoop);
    };
    let lo = interp.eval(lo)?.as_int();
    let hi = interp.eval(hi)?.as_int();
    let step = match step {
        Some(e) => interp.eval(e)?.as_int(),
        None => 1,
    };
    exec_do_parallel(interp, loop_stmt, plan, lo, hi, step).map(|_| ())
}

/// What one worker hands back: its write log plus the execution effects
/// the master aggregates (statistics, printed output). Strategy modes
/// also return the worker's overlay (append buffers), its final
/// reduction values, and — for concat — the final append pointer.
struct ChunkOutcome {
    log: WriteLog,
    overlay: Option<WriteOverlay>,
    stats: ExecStats,
    output: Vec<String>,
    reduction_finals: Vec<(VarId, Value)>,
    ptr_final: i64,
    /// Per-opcode bytecode dispatch counts, collected only when the
    /// master interpreter has profiling enabled.
    profile: Option<Box<CompiledProfile>>,
}

/// Why one worker's chunk did not complete.
enum WorkerFailure {
    /// A genuine runtime error inside the chunk.
    Exec(ExecError),
    /// The watchdog deadline expired before the chunk finished.
    TimedOut,
    /// The worker's write overlay recorded a strategy violation on
    /// this variable; the chunk aborted to avoid corrupting state.
    Violated(VarId),
}

impl From<ExecError> for WorkerFailure {
    fn from(e: ExecError) -> Self {
        WorkerFailure::Exec(e)
    }
}

/// One in-place target: the master buffer to write through and the
/// affine offset of its subscripts (`loop_var + off`).
struct InPlaceSpec {
    var: VarId,
    off: i64,
    slice: RawSlice,
}

/// The write-back mode a dispatch actually runs with, after the
/// executor re-derived (or failed to re-derive) the plan's strategy.
enum Mode {
    WriteLog,
    InPlace(Vec<InPlaceSpec>),
    Concat {
        ptr: VarId,
        targets: Vec<VarId>,
        p0: i64,
    },
}

impl Mode {
    fn strategy(&self) -> ExecutionStrategy {
        match self {
            Mode::WriteLog => ExecutionStrategy::WriteLog,
            Mode::InPlace(_) => ExecutionStrategy::InPlaceDisjoint,
            Mode::Concat { .. } => ExecutionStrategy::PrivatizeAndConcat,
        }
    }
}

/// Re-proves the in-place facts for this dispatch and prepares the
/// master buffers. Returns `None` — downgrade to the write-log — when
/// the derivation fails, a target cannot materialize, or the iteration
/// window would leave a target's extent (the write-log worker then
/// reproduces the program's own out-of-bounds error).
///
/// Materializing here is exactly what the first sequential iteration
/// would have done: the derivation requires an unconditional top-level
/// write to every target, and `lo <= hi` holds at this point.
fn prepare_in_place(
    interp: &mut Interp<'_>,
    loop_stmt: StmtId,
    plan: &ParallelPlan,
    lo: i64,
    hi: i64,
) -> Option<Vec<InPlaceSpec>> {
    let program = interp.program();
    let reductions: Vec<VarId> = plan.reductions.iter().map(|(v, _)| *v).collect();
    let facts =
        irr_driver::derive_in_place_facts(program, loop_stmt, &plan.privatized, &reductions)?;
    for &(a, _) in &facts {
        interp.ensure_materialized(a).ok()?;
    }
    let mut specs = Vec::with_capacity(facts.len());
    for (a, off) in facts {
        let len = interp.store.array_len(a)? as i64;
        // Checked: an i64::MAX-adjacent offset must downgrade to the
        // write-log (which reproduces the program's own out-of-bounds
        // error), not overflow the window arithmetic.
        let (Some(wlo), Some(whi)) = (lo.checked_add(off), hi.checked_add(off)) else {
            return None;
        };
        if wlo < 1 || whi > len {
            return None;
        }
        // `payload_raw` forces payload uniqueness on the master before
        // the worker snapshots are cloned, so every snapshot Arc-shares
        // exactly this allocation.
        let (slice, _) = interp.store.payload_raw(a);
        specs.push(InPlaceSpec { var: a, off, slice });
    }
    Some(specs)
}

/// Re-proves the concat shape for this dispatch. Returns `None` —
/// downgrade to the write-log — when the shape derivation fails or the
/// live append pointer is negative. Hole-freedom (every increment is
/// followed by a write) is *not* re-proven statically; the overlay and
/// the commit validate it dynamically instead.
fn prepare_concat(
    interp: &mut Interp<'_>,
    loop_stmt: StmtId,
    plan: &ParallelPlan,
) -> Option<(VarId, Vec<VarId>, i64)> {
    let program = interp.program();
    let reductions: Vec<VarId> = plan.reductions.iter().map(|(v, _)| *v).collect();
    let (ptr, targets) =
        irr_driver::derive_concat_shape(program, loop_stmt, &plan.privatized, &reductions)?;
    let p0 = interp.store.scalar(ptr).as_int();
    if p0 < 0 {
        return None;
    }
    Some((ptr, targets, p0))
}

/// Executes one `do` loop in parallel chunks per `plan`, with the bounds
/// already evaluated. This is the dispatch hook the hybrid runtime uses
/// after a guard (or a compile-time verdict) clears the loop: the
/// iteration space `lo..=hi` is split into contiguous chunks, each chunk
/// runs in its own thread on a copy-on-write clone of the live store
/// with write recording on, and the chunks' write logs are merged back
/// in `O(total writes)` (detecting conflicts positionally).
///
/// **The dispatch is a transaction.** The master interpreter — store,
/// statistics, output, fuel — is mutated only after every worker
/// completed and the merged write set validated conflict- and
/// shape-clean. On any [`ParallelError`] the master is exactly as it
/// was at entry, so the caller can re-execute the loop sequentially
/// (the interpreter's dispatch site does precisely that; see
/// `Interp::exec_stmt_with`).
///
/// Worker statistics, printed output, and fuel consumption are
/// aggregated into the master interpreter; the induction variable is
/// left at `hi + 1` (or `lo` for a zero-trip loop), matching sequential
/// semantics. A `plan.deadline_ms` arms a cooperative per-worker
/// watchdog (checked between iterations); `plan.fault` injects one
/// failure for chaos testing.
///
/// Returns the [`ExecutionStrategy`] that actually committed: the
/// plan's strategy when the executor's own re-derivation confirmed it,
/// [`ExecutionStrategy::WriteLog`] after a silent downgrade. A
/// zero-trip dispatch commits trivially under the planned strategy.
///
/// # Errors
///
/// [`ParallelError::NotADoLoop`] when the statement is not a `do` loop;
/// [`ParallelError::UnsupportedStep`] when `step != 1`;
/// [`ParallelError::WriteConflict`] when chunks write the same
/// location; [`ParallelError::ShapeMismatch`] when chunks disagree on
/// an array's shape; [`ParallelError::WorkerPanic`] when a worker
/// thread panics; [`ParallelError::Timeout`] when a worker overruns the
/// deadline; [`ParallelError::StrategyViolation`] when a strategy's
/// dynamic self-check fails; worker [`ExecError`]s are propagated.
pub fn exec_do_parallel(
    interp: &mut Interp<'_>,
    loop_stmt: StmtId,
    plan: &ParallelPlan,
    lo: i64,
    hi: i64,
    step: i64,
) -> Result<ExecutionStrategy, ParallelError> {
    let program = interp.program();
    let StmtKind::Do { var, body, .. } = &program.stmt(loop_stmt).kind else {
        return Err(ParallelError::NotADoLoop);
    };
    let var = *var;
    let body: &[StmtId] = body;
    if step != 1 {
        return Err(ParallelError::UnsupportedStep { step });
    }
    let ty = program.symbols.var(var).ty;
    if lo > hi {
        // Zero-trip: no workers, nothing can fail. Record the dispatch
        // and leave the induction variable at `lo` (sequential
        // semantics).
        record_dispatch(interp, loop_stmt, plan);
        interp.store.set_scalar(var, ty, Value::Int(lo));
        return Ok(plan.strategy);
    }
    let n = (hi - lo + 1) as usize;
    let threads = plan.threads.clamp(1, n);
    // Chunk boundaries.
    let mut chunks: Vec<(i64, i64)> = Vec::with_capacity(threads);
    let base = n / threads;
    let extra = n % threads;
    let mut start = lo;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        if len == 0 {
            continue;
        }
        chunks.push((start, start + len as i64 - 1));
        start += len as i64;
    }
    // Injected worker faults address a chunk modulo the spawn count, so
    // a randomly drawn worker index always lands on a live worker.
    let (panic_chunk, stall_chunk, stall_ms) = match plan.fault {
        Some(FaultKind::PanicWorker { worker }) => (Some(worker % chunks.len()), None, 0),
        Some(FaultKind::StallWorker { worker, stall_ms }) => {
            (None, Some(worker % chunks.len()), stall_ms)
        }
        _ => (None, None, 0),
    };
    let deadline = plan.deadline_ms.map(Duration::from_millis);
    // Resolve the plan's strategy into a mode by re-deriving its facts
    // against this loop and the live store. The derivation is the
    // executor's own — a forged verdict upstream can request a
    // strategy but can never make an unproven loop take the raw-write
    // path; it just downgrades to the (always safe) write-log.
    // `prepare_in_place` must run before the snapshot clones below so
    // the master's payloads are unique when the raw slices are taken.
    let mode = match plan.strategy {
        ExecutionStrategy::WriteLog => Mode::WriteLog,
        ExecutionStrategy::InPlaceDisjoint => {
            match prepare_in_place(interp, loop_stmt, plan, lo, hi) {
                Some(specs) => Mode::InPlace(specs),
                None => Mode::WriteLog,
            }
        }
        ExecutionStrategy::PrivatizeAndConcat => match prepare_concat(interp, loop_stmt, plan) {
            Some((ptr, targets, p0)) => Mode::Concat { ptr, targets, p0 },
            None => Mode::WriteLog,
        },
    };
    // Lower the loop body once on the master so every worker chunk can
    // replay it through the bytecode tier (pure function of the
    // program, so the master's cache entry is shared via Arc). A body
    // the lowering rejects leaves `None` and the workers walk the AST
    // exactly as before.
    let compiled_body: Option<Arc<CompiledBody>> = if plan.compiled {
        interp.compiled_body_for(loop_stmt)
    } else {
        None
    };
    let profile_workers = interp.compiled_profile.is_some();
    // Run each chunk on a copy-on-write clone of the live store;
    // workers return only their logs/buffers and stats. In-place
    // workers skip write logging entirely — their target writes go
    // straight to the master buffers through the overlay.
    let fuel = interp.fuel;
    let mode_ref = &mode;
    let results: Vec<std::thread::Result<Result<ChunkOutcome, WorkerFailure>>> =
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (widx, &(clo, chi)) in chunks.iter().enumerate() {
                let snapshot = interp.store.clone();
                let cbody = compiled_body.clone();
                handles.push(scope.spawn(move || {
                    if panic_chunk == Some(widx) {
                        panic!("injected fault: worker {widx} panic");
                    }
                    // The watchdog clock starts only when a deadline is
                    // armed (the hot path never reads wall time), and
                    // before any injected stall — so a stalled worker
                    // trips the deadline on its first iteration check.
                    let started = deadline.map(|_| Instant::now());
                    if stall_chunk == Some(widx) {
                        std::thread::sleep(Duration::from_millis(stall_ms));
                    }
                    let mut worker = Interp::new(program);
                    worker.store = snapshot;
                    worker.fuel = fuel;
                    match mode_ref {
                        Mode::WriteLog => worker.store.start_write_log(),
                        Mode::InPlace(specs) => {
                            let windows = specs
                                .iter()
                                .map(|s| InPlaceWindow {
                                    var: s.var,
                                    slice: s.slice,
                                    lo: (clo + s.off - 1) as usize,
                                    hi: (chi + s.off - 1) as usize,
                                })
                                .collect();
                            worker
                                .store
                                .install_overlay(WriteOverlay::in_place(windows));
                        }
                        Mode::Concat { targets, p0, .. } => {
                            // Non-target effects still go through the
                            // log; only target appends are buffered.
                            worker.store.start_write_log();
                            let bufs = targets
                                .iter()
                                .map(|&a| (a, ConcatBuf::new(program.symbols.var(a).ty)))
                                .collect();
                            worker
                                .store
                                .install_overlay(WriteOverlay::concat(*p0 as usize, bufs));
                        }
                    }
                    if profile_workers && cbody.is_some() {
                        worker.compiled_profile = Some(Box::new(CompiledProfile::new()));
                    }
                    // One register file per chunk, reused across its
                    // iterations (registers are write-before-read).
                    let mut ctemps: Vec<Value> = match &cbody {
                        Some(cb) => vec![Value::Int(0); cb.register_count()],
                        None => Vec::new(),
                    };
                    let ty = program.symbols.var(var).ty;
                    let mut i = clo;
                    while i <= chi {
                        if let (Some(limit), Some(t0)) = (deadline, started) {
                            if t0.elapsed() >= limit {
                                return Err(WorkerFailure::TimedOut);
                            }
                        }
                        worker.store.set_scalar_untracked(var, ty, Value::Int(i));
                        match &cbody {
                            Some(cb) => worker.run_compiled_body_block(cb, &mut ctemps)?,
                            None => worker.exec_body(body)?,
                        }
                        worker.charge(1)?; // loop bookkeeping, as sequential
                        if let Some(v) = worker.store.overlay_violation() {
                            return Err(WorkerFailure::Violated(v));
                        }
                        i += 1;
                    }
                    let reduction_finals = plan
                        .reductions
                        .iter()
                        .map(|&(v, _)| (v, worker.store.scalar(v)))
                        .collect();
                    let ptr_final = match mode_ref {
                        Mode::Concat { ptr, .. } => worker.store.scalar(*ptr).as_int(),
                        _ => 0,
                    };
                    let profile = worker.compiled_profile.take();
                    Ok(ChunkOutcome {
                        log: worker.store.take_write_log().unwrap_or_default(),
                        overlay: worker.store.take_overlay(),
                        stats: worker.stats,
                        output: worker.output,
                        reduction_finals,
                        ptr_final,
                        profile,
                    })
                }));
            }
            handles.into_iter().map(|h| h.join()).collect()
        });
    let mut outcomes = Vec::with_capacity(results.len());
    for (widx, r) in results.into_iter().enumerate() {
        match r {
            Err(payload) => {
                return Err(ParallelError::WorkerPanic {
                    detail: panic_message(&payload),
                })
            }
            Ok(Err(WorkerFailure::TimedOut)) => {
                return Err(ParallelError::Timeout {
                    worker: widx,
                    deadline_ms: plan.deadline_ms.unwrap_or(0),
                })
            }
            Ok(Err(WorkerFailure::Exec(e))) => return Err(ParallelError::Exec(e)),
            Ok(Err(WorkerFailure::Violated(v))) => {
                return Err(ParallelError::StrategyViolation {
                    var: program.symbols.name(v).to_string(),
                    strategy: mode.strategy().name(),
                })
            }
            Ok(Ok(out)) => outcomes.push(out),
        }
    }
    if matches!(plan.fault, Some(FaultKind::ForgeConflict)) {
        // Chaos hook: report a conflict that never happened, exactly at
        // the point the merge would — the workers' logs are discarded
        // and the untouched master falls back sequentially. (For an
        // in-place mode the master's target windows may already hold
        // partial results; the sequential re-execution rewrites every
        // window deterministically, so the fallback is still exact.)
        return Err(ParallelError::WriteConflict {
            var: "<injected-fault>".to_string(),
        });
    }
    // Commit per mode.
    match &mode {
        Mode::WriteLog => {
            // Merge the write logs into the master store: O(total
            // writes), fully validated before the first master mutation.
            let logs: Vec<&WriteLog> = outcomes.iter().map(|c| &c.log).collect();
            merge_write_logs(program, interp, &logs, plan, var, None)?;
        }
        Mode::InPlace(specs) => {
            // The element writes already landed in the proven-disjoint
            // windows — there is nothing to merge. Combine the scalar
            // reductions from per-worker finals and publish a version
            // bump per target so inspector schedule caches and the
            // dependence auditor see the mutation.
            for (rv, op) in &plan.reductions {
                let base = interp.store.scalar(*rv);
                let mut acc = base;
                for out in &outcomes {
                    for &(v, theirs) in &out.reduction_finals {
                        if v == *rv {
                            acc = combine_reduction(*op, acc, theirs, base);
                        }
                    }
                }
                let rty = program.symbols.var(*rv).ty;
                interp.store.set_scalar(*rv, rty, acc);
            }
            for s in specs {
                interp.store.bump_version(s.var);
            }
        }
        Mode::Concat { ptr, targets, p0 } => {
            commit_concat(program, interp, plan, &outcomes, var, *ptr, targets, *p0)?;
        }
    }
    // The transaction commits: record the dispatch, then aggregate
    // worker effects — the master pays the chunks' execution cost
    // (statements + fuel), absorbs their per-loop statistics, and keeps
    // their printed output in chunk order.
    record_dispatch(interp, loop_stmt, plan);
    let body_cost: u64 = outcomes.iter().map(|c| c.stats.total_cost).sum();
    interp.charge(body_cost)?;
    let entry = interp.stats.loops.entry(loop_stmt).or_default();
    entry.total_cost += body_cost;
    for c in outcomes {
        for (s, ls) in c.stats.loops {
            let e = interp.stats.loops.entry(s).or_default();
            e.invocations += ls.invocations;
            e.total_cost += ls.total_cost;
            e.iteration_costs.extend(ls.iteration_costs);
        }
        interp.output.extend(c.output);
        if let (Some(master), Some(p)) = (interp.compiled_profile.as_deref_mut(), c.profile) {
            master.merge(&p);
        }
    }
    // Sequential semantics: the induction variable ends one past `hi`.
    interp.store.set_scalar(var, ty, Value::Int(hi + 1));
    Ok(mode.strategy())
}

/// Commits a [`Mode::Concat`] dispatch: validates the append discipline
/// dynamically, merges the non-target write logs, then concatenates
/// the per-chunk buffers positionally in chunk order.
///
/// Validation before mutation: every chunk's pointer delta must be
/// non-negative and equal every one of its buffers' lengths (holes or
/// double-appends surface here even though hole-freedom was never
/// statically re-proven), and the concatenated region must fit each
/// target's extent — an overrun aborts as [`ParallelError::ShapeMismatch`]
/// so the sequential fallback reproduces the program's own
/// out-of-bounds error.
#[allow(clippy::too_many_arguments)]
fn commit_concat(
    program: &Program,
    interp: &mut Interp<'_>,
    plan: &ParallelPlan,
    outcomes: &[ChunkOutcome],
    loop_var: VarId,
    ptr: VarId,
    targets: &[VarId],
    p0: i64,
) -> Result<(), ParallelError> {
    let violation = |v: VarId| ParallelError::StrategyViolation {
        var: program.symbols.name(v).to_string(),
        strategy: ExecutionStrategy::PrivatizeAndConcat.name(),
    };
    let mut deltas: Vec<i64> = Vec::with_capacity(outcomes.len());
    let mut total: i64 = 0;
    for out in outcomes {
        let dp = out.ptr_final - p0;
        if dp < 0 {
            return Err(violation(ptr));
        }
        let Some(WriteOverlay::Concat { bufs, .. }) = &out.overlay else {
            return Err(violation(ptr));
        };
        for (a, buf) in bufs {
            if buf.len() as i64 != dp {
                return Err(violation(*a));
            }
        }
        deltas.push(dp);
        total += dp;
    }
    if total > 0 {
        // Materialize the targets exactly as the first sequential
        // append would have.
        for &a in targets {
            if interp.ensure_materialized(a).is_err() {
                return Err(ParallelError::ShapeMismatch {
                    var: program.symbols.name(a).to_string(),
                    detail: "target failed to materialize for concat commit".to_string(),
                });
            }
            let len = interp.store.array_len(a).unwrap_or(0) as i64;
            if p0 + total > len {
                return Err(ParallelError::ShapeMismatch {
                    var: program.symbols.name(a).to_string(),
                    detail: format!(
                        "concatenated appends reach position {} past extent {len}",
                        p0 + total
                    ),
                });
            }
        }
    }
    // Non-target effects merge as usual; the overlay guaranteed target
    // element writes never reached these logs, and `ptr` is exempt from
    // scalar claiming (every worker advances it by design).
    let logs: Vec<&WriteLog> = outcomes.iter().map(|c| &c.log).collect();
    merge_write_logs(program, interp, &logs, plan, loop_var, Some((ptr, targets)))?;
    // Apply the buffers positionally in chunk (= sequential) order.
    let mut base = p0 as usize;
    for (out, dp) in outcomes.iter().zip(&deltas) {
        if let Some(WriteOverlay::Concat { bufs, .. }) = &out.overlay {
            for (a, buf) in bufs {
                for k in 0..buf.len() {
                    interp.store.write_element(*a, base + k, buf.value(k));
                }
            }
        }
        base += *dp as usize;
    }
    let pty = program.symbols.var(ptr).ty;
    interp.store.set_scalar(ptr, pty, Value::Int(p0 + total));
    Ok(())
}

/// Records a committed (or zero-trip) parallel dispatch and the plan's
/// per-array exoneration sets, so telemetry and the dependence auditor
/// can attribute parallel effects per array, not just per loop. Called
/// only on success: an aborted dispatch leaves the stats untouched and
/// the sequential re-execution accounts for the loop instead.
fn record_dispatch(interp: &mut Interp<'_>, loop_stmt: StmtId, plan: &ParallelPlan) {
    let entry = interp.stats.loops.entry(loop_stmt).or_default();
    entry.invocations += 1;
    entry.parallel_invocations += 1;
    entry.privatized = plan.privatized.clone();
    entry.reductions = plan.reductions.iter().map(|(v, _)| *v).collect();
}

/// Renders a worker thread's panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Replays the workers' write logs against the master store.
///
/// Cost is `O(total writes)`. Conflict detection is positional: after
/// collapsing each worker's log to its final write per location, any
/// location claimed by two workers is a [`ParallelError::WriteConflict`]
/// — values are never compared, so writes that happen to restore the
/// pre-loop value cannot mask a conflict.
///
/// The merge is two-phase: every log is validated (shapes agree,
/// no location double-claimed, no write past an extent) before the
/// first master-store mutation, so a merge that errors leaves the
/// master byte-identical to its pre-dispatch state and the caller can
/// fall back to sequential re-execution.
fn merge_write_logs(
    program: &Program,
    interp: &mut Interp<'_>,
    logs: &[&WriteLog],
    plan: &ParallelPlan,
    loop_var: VarId,
    concat: Option<(VarId, &[VarId])>,
) -> Result<(), ParallelError> {
    let conflict = |v: VarId| ParallelError::WriteConflict {
        var: program.symbols.name(v).to_string(),
    };
    let is_reduction = |v: VarId| plan.reductions.iter().any(|(r, _)| *r == v);
    // Concat dispatches exempt the append pointer from scalar claiming
    // (every worker advances it; the commit sets its true final) and
    // the target arrays from materialization planning and element
    // claims (their writes were intercepted by the overlay; the commit
    // materializes and fills them itself).
    let concat_ptr = concat.map(|(p, _)| p);
    let concat_targets: &[VarId] = concat.map_or(&[], |(_, t)| t);

    // ---- Phase 1: validate (no master mutation) ----

    // Materializations: arrays a worker touched (read or write) that
    // the master has not materialized come into existence zero-filled,
    // as they would have sequentially. Chunks must agree on every
    // array's shape — a mismatch is a hard error, never a truncated
    // merge. The materializations themselves are only planned here.
    let mut planned_arrays: HashMap<VarId, Vec<usize>> = HashMap::new();
    for log in logs {
        for (v, dims) in &log.materialized {
            if plan.privatized.contains(v) || concat_targets.contains(v) {
                continue;
            }
            let existing = interp
                .store
                .array_dims(*v)
                .map(<[usize]>::to_vec)
                .or_else(|| planned_arrays.get(v).cloned());
            match existing {
                Some(existing) if existing == *dims => {}
                Some(existing) => {
                    return Err(ParallelError::ShapeMismatch {
                        var: program.symbols.name(*v).to_string(),
                        detail: format!("extents {existing:?} vs {dims:?}"),
                    });
                }
                None => {
                    planned_arrays.insert(*v, dims.clone());
                }
            }
        }
    }

    // Scalars: collapse each worker's log to final values, then claim
    // each variable for at most one worker. Reduction scalars are
    // exempt from claiming; their per-worker finals combine in phase 2.
    let mut claimed_scalars: HashMap<VarId, Value> = HashMap::new();
    let mut reduction_finals: HashMap<VarId, Vec<Value>> = HashMap::new();
    for log in logs {
        let mut finals: HashMap<VarId, Value> = HashMap::new();
        for &(v, val) in &log.scalars {
            if v == loop_var || plan.privatized.contains(&v) || concat_ptr == Some(v) {
                continue;
            }
            finals.insert(v, val);
        }
        for (v, val) in finals {
            if is_reduction(v) {
                reduction_finals.entry(v).or_default().push(val);
            } else if claimed_scalars.insert(v, val).is_some() {
                return Err(conflict(v));
            }
        }
    }

    // Array elements: same claiming scheme, keyed by (array, index),
    // with the extent check against the master's arrays or the planned
    // materializations.
    let mut claimed_elems: HashMap<(VarId, usize), Value> = HashMap::new();
    for log in logs {
        let mut finals: HashMap<(VarId, usize), Value> = HashMap::new();
        for &(v, idx, val) in &log.elements {
            if plan.privatized.contains(&v) || concat_targets.contains(&v) {
                continue;
            }
            finals.insert((v, idx), val);
        }
        for (key, val) in finals {
            if claimed_elems.insert(key, val).is_some() {
                return Err(conflict(key.0));
            }
        }
    }
    for &(v, idx) in claimed_elems.keys() {
        let len = interp
            .store
            .array_len(v)
            .or_else(|| planned_arrays.get(&v).map(|dims| dims.iter().product()));
        match len {
            Some(len) if idx < len => {}
            extent => {
                return Err(ParallelError::ShapeMismatch {
                    var: program.symbols.name(v).to_string(),
                    detail: format!(
                        "logged write at flat index {idx} exceeds extent {:?}",
                        extent.unwrap_or(0)
                    ),
                });
            }
        }
    }

    // ---- Phase 2: apply (cannot fail) ----

    for (v, dims) in planned_arrays {
        let ty = program.symbols.var(v).ty;
        interp.store.materialize(v, ArrayData::zeroed(ty, dims));
    }
    for (v, val) in claimed_scalars {
        let ty = program.symbols.var(v).ty;
        interp.store.set_scalar(v, ty, val);
    }
    for (rv, op) in &plan.reductions {
        let Some(finals) = reduction_finals.get(rv) else {
            continue; // no worker touched the reduction variable
        };
        let base = interp.store.scalar(*rv);
        let mut acc = base;
        for &theirs in finals {
            acc = combine_reduction(*op, acc, theirs, base);
        }
        let ty = program.symbols.var(*rv).ty;
        interp.store.set_scalar(*rv, ty, acc);
    }
    for ((v, idx), val) in claimed_elems {
        interp.store.write_element(v, idx, val);
    }
    Ok(())
}

/// Folds one worker's final reduction value into the accumulator.
fn combine_reduction(op: ReduceOp, acc: Value, theirs: Value, base: Value) -> Value {
    match op {
        ReduceOp::Sum => match (acc, theirs, base) {
            (Value::Int(a), Value::Int(x), Value::Int(b)) => Value::Int(a + (x - b)),
            (a, x, b) => Value::Real(a.as_real() + (x.as_real() - b.as_real())),
        },
        ReduceOp::Min => match (acc, theirs) {
            (Value::Int(a), Value::Int(x)) => Value::Int(a.min(x)),
            (a, x) => Value::Real(a.as_real().min(x.as_real())),
        },
        ReduceOp::Max => match (acc, theirs) {
            (Value::Int(a), Value::Int(x)) => Value::Int(a.max(x)),
            (a, x) => Value::Real(a.as_real().max(x.as_real())),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    fn first_do(p: &Program) -> StmtId {
        p.stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .find(|s| matches!(p.stmt(*s).kind, StmtKind::Do { .. }))
            .unwrap()
    }

    fn nth_do(p: &Program, n: usize) -> StmtId {
        p.stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .filter(|s| matches!(p.stmt(*s).kind, StmtKind::Do { .. }))
            .nth(n)
            .unwrap()
    }

    #[test]
    fn parallel_matches_sequential_for_independent_loop() {
        let src = "program t
             integer i
             real x(100), y(100)
             do i = 1, 100
               y(i) = i * 0.5
             enddo
             do i = 1, 100
               x(i) = y(i) * 2 + 1
             enddo
             end";
        let p = parse_program(src).unwrap();
        let seq = Interp::new(&p).run().unwrap();
        let second = nth_do(&p, 1);
        let plan = ParallelPlan::with_threads(4);
        let par = run_loop_parallel(&p, second, &plan).unwrap();
        let x = p.symbols.lookup("x").unwrap();
        assert_eq!(seq.store.array_as_reals(x), par.array_as_reals(x));
    }

    #[test]
    fn conflicting_writes_are_detected() {
        let src = "program t
             integer i
             real x(10)
             do i = 1, 100
               x(1) = i
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan::with_threads(4);
        let err = run_loop_parallel(&p, first_do(&p), &plan).unwrap_err();
        assert!(matches!(err, ParallelError::WriteConflict { .. }));
    }

    /// Regression for the snapshot-diff soundness hole: one chunk writes
    /// `x(1) = i`, the other writes `x(1) = x(1)` — a write whose value
    /// equals the pre-loop value and was therefore invisible to the old
    /// value-diff merge. Positional detection must still flag the
    /// overlap (there is a real flow dependence between the chunks).
    #[test]
    fn masked_same_value_write_is_a_conflict() {
        let src = "program t
             integer i
             real x(10)
             do i = 1, 100
               if (i < 51) then
                 x(1) = i
               endif
               if (i > 50) then
                 x(1) = x(1)
               endif
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan::with_threads(2);
        let err = run_loop_parallel(&p, first_do(&p), &plan).unwrap_err();
        assert!(
            matches!(err, ParallelError::WriteConflict { ref var } if var == "x"),
            "expected a write conflict on x, got {err:?}"
        );
    }

    /// Every chunk writing the pre-loop value back is still an
    /// overlapping write set — the loop carries an output dependence
    /// even though the store never changes.
    #[test]
    fn snapshot_equal_overlapping_writes_conflict() {
        let src = "program t
             integer i
             real x(10)
             do i = 1, 100
               x(1) = 0
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan::with_threads(4);
        let err = run_loop_parallel(&p, first_do(&p), &plan).unwrap_err();
        assert!(matches!(err, ParallelError::WriteConflict { .. }));
    }

    #[test]
    fn sum_reduction_merges() {
        let src = "program t
             integer i
             real s, x(100)
             do i = 1, 100
               x(i) = i
             enddo
             do i = 1, 100
               s = s + x(i)
             enddo
             end";
        let p = parse_program(src).unwrap();
        let s = p.symbols.lookup("s").unwrap();
        let plan = ParallelPlan {
            threads: 3,
            privatized: vec![],
            reductions: vec![(s, ReduceOp::Sum)],
            ..ParallelPlan::default()
        };
        let st = run_loop_parallel(&p, nth_do(&p, 1), &plan).unwrap();
        assert_eq!(st.scalar(s).as_real(), 5050.0);
    }

    #[test]
    fn min_and_max_reductions_merge_from_write_logs() {
        let src = "program t
             integer i
             real s, x(100)
             s = 1000
             do i = 1, 100
               x(i) = abs(i - 37) + 2.0
             enddo
             do i = 1, 100
               s = min(s, x(i))
             enddo
             end";
        let p = parse_program(src).unwrap();
        let s = p.symbols.lookup("s").unwrap();
        let plan = ParallelPlan {
            threads: 4,
            privatized: vec![],
            reductions: vec![(s, ReduceOp::Min)],
            ..ParallelPlan::default()
        };
        let st = run_loop_parallel(&p, nth_do(&p, 1), &plan).unwrap();
        assert_eq!(st.scalar(s).as_real(), 2.0);

        let src_max = src
            .replace("min(s, x(i))", "max(s, x(i))")
            .replace("s = 1000", "s = 0 - 1000");
        let p = parse_program(&src_max).unwrap();
        let s = p.symbols.lookup("s").unwrap();
        let plan = ParallelPlan {
            threads: 4,
            privatized: vec![],
            reductions: vec![(s, ReduceOp::Max)],
            ..ParallelPlan::default()
        };
        let st = run_loop_parallel(&p, nth_do(&p, 1), &plan).unwrap();
        // max over abs(i - 37) + 2 on 1..=100 is abs(100 - 37) + 2.
        assert_eq!(st.scalar(s).as_real(), 65.0);
    }

    #[test]
    fn privatized_scratch_is_ignored_in_merge() {
        let src = "program t
             integer i, j
             real tmp(10), z(100)
             do i = 1, 100
               do j = 1, 10
                 tmp(j) = i + j
               enddo
               z(i) = tmp(1) + tmp(10)
             enddo
             end";
        let p = parse_program(src).unwrap();
        let tmp = p.symbols.lookup("tmp").unwrap();
        let jv = p.symbols.lookup("j").unwrap();
        let plan = ParallelPlan {
            threads: 4,
            privatized: vec![tmp, jv],
            reductions: vec![],
            ..ParallelPlan::default()
        };
        let st = run_loop_parallel(&p, first_do(&p), &plan).unwrap();
        let seq = Interp::new(&p).run().unwrap();
        let z = p.symbols.lookup("z").unwrap();
        assert_eq!(st.array_as_reals(z), seq.store.array_as_reals(z));
    }

    #[test]
    fn zero_trip_loop_matches_sequential() {
        let src = "program t
             integer i, k
             real x(10)
             k = 7
             do i = 5, 1
               x(1) = 99
               k = 0
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan::with_threads(4);
        let st = run_loop_parallel(&p, first_do(&p), &plan).unwrap();
        let seq = Interp::new(&p).run().unwrap();
        let k = p.symbols.lookup("k").unwrap();
        let i = p.symbols.lookup("i").unwrap();
        assert_eq!(st.scalar(k), seq.store.scalar(k));
        assert_eq!(st.scalar(i), Value::Int(5));
    }

    #[test]
    fn single_iteration_loop_matches_sequential() {
        let src = "program t
             integer i
             real x(10)
             do i = 3, 3
               x(i) = i * 2.0
             enddo
             end";
        let p = parse_program(src).unwrap();
        // More threads than iterations: clamps to one chunk.
        let plan = ParallelPlan::with_threads(8);
        let st = run_loop_parallel(&p, first_do(&p), &plan).unwrap();
        let seq = Interp::new(&p).run().unwrap();
        let x = p.symbols.lookup("x").unwrap();
        let i = p.symbols.lookup("i").unwrap();
        assert_eq!(st.array_as_reals(x), seq.store.array_as_reals(x));
        assert_eq!(st.scalar(i), Value::Int(4));
    }

    #[test]
    fn zero_trip_reduction_leaves_scalar_untouched() {
        let src = "program t
             integer i
             real s
             s = 42
             do i = 9, 2
               s = s + 1
             enddo
             end";
        let p = parse_program(src).unwrap();
        let s = p.symbols.lookup("s").unwrap();
        let plan = ParallelPlan {
            threads: 4,
            privatized: vec![],
            reductions: vec![(s, ReduceOp::Sum)],
            ..ParallelPlan::default()
        };
        let st = run_loop_parallel(&p, first_do(&p), &plan).unwrap();
        assert_eq!(st.scalar(s).as_real(), 42.0);
    }

    #[test]
    fn non_unit_step_reports_unsupported_step() {
        let src = "program t
             integer i
             real x(100)
             do i = 1, 100, 2
               x(i) = i
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan::with_threads(4);
        let err = run_loop_parallel(&p, first_do(&p), &plan).unwrap_err();
        assert!(
            matches!(err, ParallelError::UnsupportedStep { step: 2 }),
            "got {err:?}"
        );
        assert!(err.to_string().contains("step 2"), "{err}");
    }

    #[test]
    fn worker_panic_is_propagated_not_process_aborting() {
        // `min` with one argument panics inside `apply_intrinsic`; the
        // parser admits it, so the panic fires inside a worker thread.
        let src = "program t
             integer i
             real x(10)
             do i = 1, 10
               x(i) = min(i)
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan::with_threads(2);
        let err = run_loop_parallel(&p, first_do(&p), &plan).unwrap_err();
        assert!(
            matches!(err, ParallelError::WorkerPanic { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn chunk_shape_disagreement_is_a_hard_error() {
        // The extent of `x` reads the scalar `n`, which the loop body
        // mutates before first touch — so different chunks materialize
        // `x` with different extents. The merge must refuse instead of
        // truncating at the shorter length.
        let src = "program t
             integer i, n
             real x(n)
             do i = 1, 4
               n = i + 4
               x(i) = i
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan::with_threads(2);
        let err = run_loop_parallel(&p, first_do(&p), &plan).unwrap_err();
        assert!(
            matches!(err, ParallelError::ShapeMismatch { ref var, .. } if var == "x"),
            "got {err:?}"
        );
    }

    #[test]
    fn worker_stats_and_output_are_aggregated() {
        let src = "program t
             integer i, j
             real z(8)
             do i = 1, 8
               do j = 1, 3
                 z(i) = z(i) + 1.0
               enddo
               print z(i)
             enddo
             end";
        let p = parse_program(src).unwrap();
        let jv = p.symbols.lookup("j").unwrap();
        let outer = first_do(&p);
        let inner = p
            .stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .filter(|s| matches!(p.stmt(*s).kind, StmtKind::Do { .. }))
            .find(|s| *s != outer)
            .unwrap();
        let plan = ParallelPlan {
            threads: 4,
            privatized: vec![jv],
            reductions: vec![],
            ..ParallelPlan::default()
        };
        let seq = Interp::new(&p).run().unwrap();
        let mut interp = Interp::new(&p);
        exec_do_parallel(&mut interp, outer, &plan, 1, 8, 1).unwrap();
        // Every chunk's inner-loop invocations are absorbed, the loop's
        // cost is charged to the master, and printed output arrives in
        // chunk (= sequential) order.
        assert_eq!(interp.stats.loops[&inner].invocations, 8);
        assert_eq!(seq.output, interp.output);
        assert!(interp.stats.total_cost > 0);
        assert!(interp.stats.loops[&outer].total_cost > 0);
    }

    #[test]
    fn in_place_strategy_commits_and_matches_sequential() {
        let src = "program t
             integer i
             real x(100)
             do i = 1, 100
               x(i) = i * 2.0
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan {
            strategy: ExecutionStrategy::InPlaceDisjoint,
            ..ParallelPlan::with_threads(4)
        };
        let mut interp = Interp::new(&p);
        let got = exec_do_parallel(&mut interp, first_do(&p), &plan, 1, 100, 1).unwrap();
        assert_eq!(got, ExecutionStrategy::InPlaceDisjoint);
        let seq = Interp::new(&p).run().unwrap();
        let x = p.symbols.lookup("x").unwrap();
        let i = p.symbols.lookup("i").unwrap();
        assert_eq!(interp.store.array_as_reals(x), seq.store.array_as_reals(x));
        assert_eq!(interp.store.scalar(i), Value::Int(101));
    }

    #[test]
    fn in_place_strategy_handles_affine_offsets() {
        // Writes at `i + 1`: chunks own shifted disjoint windows.
        let src = "program t
             integer i
             real y(101)
             do i = 1, 100
               y(i + 1) = i * 3.0
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan {
            strategy: ExecutionStrategy::InPlaceDisjoint,
            ..ParallelPlan::with_threads(4)
        };
        let mut interp = Interp::new(&p);
        let got = exec_do_parallel(&mut interp, first_do(&p), &plan, 1, 100, 1).unwrap();
        assert_eq!(got, ExecutionStrategy::InPlaceDisjoint);
        let seq = Interp::new(&p).run().unwrap();
        let y = p.symbols.lookup("y").unwrap();
        assert_eq!(interp.store.array_as_reals(y), seq.store.array_as_reals(y));
    }

    #[test]
    fn in_place_strategy_combines_reductions() {
        let src = "program t
             integer i
             real s, x(100)
             do i = 1, 100
               x(i) = i
               s = s + i
             enddo
             end";
        let p = parse_program(src).unwrap();
        let s = p.symbols.lookup("s").unwrap();
        let plan = ParallelPlan {
            threads: 4,
            reductions: vec![(s, ReduceOp::Sum)],
            strategy: ExecutionStrategy::InPlaceDisjoint,
            ..ParallelPlan::default()
        };
        let mut interp = Interp::new(&p);
        let got = exec_do_parallel(&mut interp, first_do(&p), &plan, 1, 100, 1).unwrap();
        assert_eq!(got, ExecutionStrategy::InPlaceDisjoint);
        assert_eq!(interp.store.scalar(s).as_real(), 5050.0);
        let x = p.symbols.lookup("x").unwrap();
        let seq = Interp::new(&p).run().unwrap();
        assert_eq!(interp.store.array_as_reals(x), seq.store.array_as_reals(x));
    }

    #[test]
    fn in_place_request_downgrades_when_target_is_read() {
        // `x(i) = x(i) + 1` reads the target — the executor's own
        // derivation must refuse and fall back to the write-log, which
        // is still correct for this (disjoint) loop.
        let src = "program t
             integer i
             real x(100)
             do i = 1, 100
               x(i) = x(i) + 1.0
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan {
            strategy: ExecutionStrategy::InPlaceDisjoint,
            ..ParallelPlan::with_threads(4)
        };
        let mut interp = Interp::new(&p);
        let got = exec_do_parallel(&mut interp, first_do(&p), &plan, 1, 100, 1).unwrap();
        assert_eq!(got, ExecutionStrategy::WriteLog);
        let seq = Interp::new(&p).run().unwrap();
        let x = p.symbols.lookup("x").unwrap();
        assert_eq!(interp.store.array_as_reals(x), seq.store.array_as_reals(x));
    }

    #[test]
    fn in_place_request_downgrades_when_window_exceeds_extent() {
        // Writes at `i + 1` with extent 100 would leave the array on
        // the last iteration: the prepare step must refuse in-place and
        // the write-log worker then reproduces the program's own
        // out-of-bounds error.
        let src = "program t
             integer i
             real y(100)
             do i = 1, 100
               y(i + 1) = i
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan {
            strategy: ExecutionStrategy::InPlaceDisjoint,
            ..ParallelPlan::with_threads(4)
        };
        let mut interp = Interp::new(&p);
        let err = exec_do_parallel(&mut interp, first_do(&p), &plan, 1, 100, 1).unwrap_err();
        assert!(matches!(err, ParallelError::Exec(_)), "got {err:?}");
    }

    #[test]
    fn in_place_request_survives_i64_max_adjacent_offset() {
        // `hi + off` has no i64 representation: the prepare step must
        // downgrade (not overflow) and the write-log worker then
        // reproduces the out-of-bounds error the sequential run hits.
        let src = "program t
             integer i
             real y(100)
             do i = 1, 100
               y(i + 9223372036854775800) = i
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan {
            strategy: ExecutionStrategy::InPlaceDisjoint,
            ..ParallelPlan::with_threads(4)
        };
        let mut interp = Interp::new(&p);
        let err = exec_do_parallel(&mut interp, first_do(&p), &plan, 1, 100, 1).unwrap_err();
        assert!(matches!(err, ParallelError::Exec(_)), "got {err:?}");
    }

    #[test]
    fn concat_strategy_commits_positionally() {
        // FIG1B-style gather: workers buffer their appends privately
        // and the commit concatenates them in chunk order, which *is*
        // sequential order.
        let src = "program t
             integer i, q, ind(100)
             do i = 1, 100
               if (i - (i / 2) * 2 > 0) then
                 q = q + 1
                 ind(q) = i
               endif
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan {
            strategy: ExecutionStrategy::PrivatizeAndConcat,
            ..ParallelPlan::with_threads(4)
        };
        let mut interp = Interp::new(&p);
        let got = exec_do_parallel(&mut interp, first_do(&p), &plan, 1, 100, 1).unwrap();
        assert_eq!(got, ExecutionStrategy::PrivatizeAndConcat);
        let seq = Interp::new(&p).run().unwrap();
        let q = p.symbols.lookup("q").unwrap();
        let ind = p.symbols.lookup("ind").unwrap();
        assert_eq!(interp.store.scalar(q), Value::Int(50));
        assert_eq!(interp.store.scalar(q), seq.store.scalar(q));
        assert_eq!(
            interp.store.array_as_reals(ind),
            seq.store.array_as_reals(ind)
        );
    }

    #[test]
    fn concat_request_downgrades_to_write_log_conflict() {
        // Non-unit pointer increment fails the shape derivation, so the
        // dispatch downgrades to the write-log — where the cross-chunk
        // pointer writes are a genuine conflict and the dispatch aborts
        // transactionally instead of committing wrong results.
        let src = "program t
             integer i, q, ind(300)
             do i = 1, 100
               q = q + 2
               ind(q) = i
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan {
            strategy: ExecutionStrategy::PrivatizeAndConcat,
            ..ParallelPlan::with_threads(4)
        };
        let mut interp = Interp::new(&p);
        let err = exec_do_parallel(&mut interp, first_do(&p), &plan, 1, 100, 1).unwrap_err();
        assert!(
            matches!(err, ParallelError::WriteConflict { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn zero_trip_commits_under_planned_strategy() {
        let src = "program t
             integer i
             real x(10)
             do i = 5, 1
               x(i) = i
             enddo
             end";
        let p = parse_program(src).unwrap();
        let plan = ParallelPlan {
            strategy: ExecutionStrategy::InPlaceDisjoint,
            ..ParallelPlan::with_threads(4)
        };
        let mut interp = Interp::new(&p);
        let got = exec_do_parallel(&mut interp, first_do(&p), &plan, 5, 1, 1).unwrap();
        assert_eq!(got, ExecutionStrategy::InPlaceDisjoint);
        let i = p.symbols.lookup("i").unwrap();
        assert_eq!(interp.store.scalar(i), Value::Int(5));
    }

    #[test]
    fn merge_cost_tracks_writes_not_store_size() {
        // Identical 16-element write sets against a small and a large
        // store must produce identical write-log sizes — the structural
        // guarantee behind the `parallel-merge` bench cases.
        for n in [512usize, 8192] {
            let src = format!(
                "program t
                 integer i
                 real big({n}), y(16)
                 do i = 1, 16
                   y(i) = big(i) + i
                 enddo
                 end"
            );
            let p = parse_program(&src).unwrap();
            let mut interp = Interp::new(&p);
            interp.store.start_write_log();
            Interp::exec_proc(&mut interp, p.main()).unwrap();
            let log = interp.store.take_write_log().unwrap();
            // 16 element writes on y; `i` scalar writes from the loop.
            assert_eq!(log.elements.len(), 16, "store size n={n}");
        }
    }
}
