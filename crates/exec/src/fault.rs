//! Deterministic fault injection for the parallel executor.
//!
//! The transactional dispatch path (parallel attempt → sequential
//! fallback on the untouched master store) is only trustworthy if it is
//! *exercised*: a recovery path that never runs is a recovery path that
//! doesn't work. A [`FaultPlan`] lets the chaos test-suite (and the
//! `sanitizer-audit --chaos` sweep) force every failure class the
//! executor can hit, at addressable dispatch sites, from a SplitMix64
//! seed — so every run is reproducible from `(program, seed)` alone.
//!
//! **Sites.** A *site* is one parallel dispatch attempt with at least
//! one iteration (zero-trip dispatches spawn no workers, so no fault
//! can fire there and they do not consume a site). Sites are numbered
//! from 0 in dynamic dispatch order, which is deterministic for a
//! deterministic program.
//!
//! **Zero cost when off.** The dispatcher holds an `Option<FaultPlan>`
//! and the executor an `Option<FaultKind>` inside the
//! [`ParallelPlan`](crate::ParallelPlan); with no plan attached every
//! hook site is a single `None` check and no timestamp is ever taken.

use crate::rng::SplitMix64;
use std::collections::HashMap;

/// One injectable failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The merge reports a write-write conflict that never happened.
    ForgeConflict,
    /// Worker `worker` (modulo the spawned chunk count) panics at chunk
    /// start.
    PanicWorker {
        /// Nominal worker index; the executor reduces it modulo the
        /// number of chunks actually spawned.
        worker: usize,
    },
    /// Worker `worker` sleeps `stall_ms` milliseconds at chunk start —
    /// with a configured deadline, the watchdog turns this into a
    /// timeout fallback instead of a wedged run.
    StallWorker {
        /// Nominal worker index (reduced modulo the chunk count).
        worker: usize,
        /// Injected stall duration in milliseconds.
        stall_ms: u64,
    },
    /// The inspector lies: a runtime guard that would have failed is
    /// reported as passed, so the executor dispatches a genuinely
    /// conflicting schedule (and must catch it in the merge).
    LieInspector,
}

impl FaultKind {
    /// Short stable name, used in telemetry dumps and test output.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::ForgeConflict => "forge-conflict",
            FaultKind::PanicWorker { .. } => "panic-worker",
            FaultKind::StallWorker { .. } => "stall-worker",
            FaultKind::LieInspector => "lie-inspector",
        }
    }
}

/// A fault that actually went live: a lie applied to a guard verdict, or
/// a worker fault stamped into a dispatched [`ParallelPlan`]
/// (decided-but-undispatched faults — e.g. on a guard that failed
/// honestly — are *not* recorded).
///
/// [`ParallelPlan`]: crate::ParallelPlan
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultShot {
    /// The dispatch site the fault fired at.
    pub site: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// How faults are chosen per site.
#[derive(Clone, Debug)]
enum Source {
    /// Explicit `site → fault` script.
    Scripted(HashMap<u64, FaultKind>),
    /// Seeded random schedule: each site draws a fault with probability
    /// `rate_per_mille / 1000`.
    Random {
        rng: SplitMix64,
        rate_per_mille: u32,
        stall_ms: u64,
    },
}

/// A deterministic, site-addressable fault schedule.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    source: Source,
    site: u64,
    fired: Vec<FaultShot>,
}

impl FaultPlan {
    /// A plan injecting exactly the scripted faults, keyed by site.
    pub fn scripted(faults: impl IntoIterator<Item = (u64, FaultKind)>) -> FaultPlan {
        FaultPlan {
            source: Source::Scripted(faults.into_iter().collect()),
            site: 0,
            fired: Vec::new(),
        }
    }

    /// A seeded random schedule: every site draws a fault with
    /// probability `rate_per_mille / 1000` (kind and worker index are
    /// drawn from the same stream; injected stalls sleep `stall_ms`).
    /// Identical `(seed, rate_per_mille, stall_ms)` triples replay the
    /// identical schedule on a deterministic program.
    pub fn randomized(seed: u64, rate_per_mille: u32, stall_ms: u64) -> FaultPlan {
        FaultPlan {
            source: Source::Random {
                rng: SplitMix64::new(seed),
                rate_per_mille: rate_per_mille.min(1000),
                stall_ms,
            },
            site: 0,
            fired: Vec::new(),
        }
    }

    /// Decides the fault (if any) for the next site and advances the
    /// site counter. `threads` bounds randomly drawn worker indices.
    pub fn decide(&mut self, threads: usize) -> Option<FaultKind> {
        let site = self.site;
        self.site += 1;
        match &mut self.source {
            Source::Scripted(map) => map.get(&site).copied(),
            Source::Random {
                rng,
                rate_per_mille,
                stall_ms,
            } => {
                if rng.below(1000) >= u64::from(*rate_per_mille) {
                    return None;
                }
                let worker = rng.below(threads.max(1) as u64) as usize;
                Some(match rng.below(4) {
                    0 => FaultKind::ForgeConflict,
                    1 => FaultKind::PanicWorker { worker },
                    2 => FaultKind::StallWorker {
                        worker,
                        stall_ms: *stall_ms,
                    },
                    _ => FaultKind::LieInspector,
                })
            }
        }
    }

    /// Records that the fault decided for the most recent site actually
    /// went live (was stamped into a dispatched plan, or lied to a
    /// guard).
    pub fn record_fired(&mut self, kind: FaultKind) {
        self.fired.push(FaultShot {
            site: self.site.saturating_sub(1),
            kind,
        });
    }

    /// Sites decided so far (parallel dispatch attempts with ≥ 1
    /// iteration).
    pub fn sites(&self) -> u64 {
        self.site
    }

    /// Every fault that went live, in firing order.
    pub fn fired(&self) -> &[FaultShot] {
        &self.fired
    }

    /// Fired faults of one kind (by [`FaultKind::name`]).
    pub fn fired_count(&self, name: &str) -> usize {
        self.fired.iter().filter(|s| s.kind.name() == name).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plan_fires_at_exact_sites() {
        let mut p = FaultPlan::scripted([
            (1, FaultKind::ForgeConflict),
            (3, FaultKind::PanicWorker { worker: 2 }),
        ]);
        assert_eq!(p.decide(4), None);
        assert_eq!(p.decide(4), Some(FaultKind::ForgeConflict));
        assert_eq!(p.decide(4), None);
        assert_eq!(p.decide(4), Some(FaultKind::PanicWorker { worker: 2 }));
        assert_eq!(p.sites(), 4);
    }

    #[test]
    fn randomized_plan_is_reproducible() {
        let draw = |seed| {
            let mut p = FaultPlan::randomized(seed, 500, 40);
            (0..32).map(|_| p.decide(4)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8), "different seeds, different schedule");
        let faults = draw(7).into_iter().flatten().count();
        assert!(faults > 4, "a 50% rate over 32 sites injects often");
    }

    #[test]
    fn zero_rate_never_injects() {
        let mut p = FaultPlan::randomized(42, 0, 40);
        assert!((0..64).all(|_| p.decide(4).is_none()));
    }

    #[test]
    fn fired_records_site_of_last_decision() {
        let mut p = FaultPlan::scripted([(2, FaultKind::LieInspector)]);
        for _ in 0..3 {
            if let Some(k) = p.decide(4) {
                p.record_fired(k);
            }
        }
        assert_eq!(
            p.fired(),
            &[FaultShot {
                site: 2,
                kind: FaultKind::LieInspector
            }]
        );
        assert_eq!(p.fired_count("lie-inspector"), 1);
        assert_eq!(p.fired_count("forge-conflict"), 0);
    }
}
