//! The instrumenting tree-walking interpreter.

use crate::bytecode::{CompiledBody, CompiledProfile, FastBody, ScalarLayout};
use crate::dispatch::{FallbackReason, LoopDecision, LoopDispatcher, SequentialDispatch};
use crate::rng::SplitMix64;
use crate::trace::{AccessTracer, TraceConfig, TracerSlot};
use irr_frontend::{
    BinOp, Expr, Intrinsic, LValue, ProcId, Program, ScalarType, StmtId, StmtKind, UnOp, VarId,
};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A runtime scalar value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    Int(i64),
    Real(f64),
}

impl Value {
    /// The value as a real.
    pub fn as_real(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Real(v) => v,
        }
    }

    /// The value as an integer (reals truncate, as Fortran `INT`).
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Real(v) => v as i64,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
        }
    }
}

/// Array storage.
#[derive(Clone, PartialEq, Debug)]
pub enum ArrayData {
    Int { data: Vec<i64>, dims: Vec<usize> },
    Real { data: Vec<f64>, dims: Vec<usize> },
}

impl ArrayData {
    /// Flat element count.
    pub fn len(&self) -> usize {
        match self {
            ArrayData::Int { data, .. } => data.len(),
            ArrayData::Real { data, .. } => data.len(),
        }
    }

    /// Whether the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Declared extents.
    pub fn dims(&self) -> &[usize] {
        match self {
            ArrayData::Int { dims, .. } | ArrayData::Real { dims, .. } => dims,
        }
    }

    /// A zero-filled array of `ty` with the given extents.
    pub fn zeroed(ty: ScalarType, dims: Vec<usize>) -> ArrayData {
        let total: usize = dims.iter().product();
        match ty {
            ScalarType::Int => ArrayData::Int {
                data: vec![0; total],
                dims,
            },
            ScalarType::Real => ArrayData::Real {
                data: vec![0.0; total],
                dims,
            },
        }
    }

    /// An array of `ty` filled with small deterministic pseudo-random
    /// values: integers in `1..=4` (so values stay plausible as 1-based
    /// subscripts into any array of extent ≥ 4) and reals in `[0, 1)`.
    /// The dependence auditor uses this to vary the initial contents of
    /// arrays a program reads before writing, perturbing data-dependent
    /// access streams without touching extents or scalar state.
    pub fn random(ty: ScalarType, dims: Vec<usize>, rng: &mut SplitMix64) -> ArrayData {
        let total: usize = dims.iter().product();
        match ty {
            ScalarType::Int => ArrayData::Int {
                data: (0..total).map(|_| rng.range_i64(1, 4)).collect(),
                dims,
            },
            ScalarType::Real => ArrayData::Real {
                data: (0..total).map(|_| rng.next_f64()).collect(),
                dims,
            },
        }
    }
}

/// A captured write set: every store mutation performed while a
/// [`Store`]'s write-recording mode was on, in program order.
///
/// The parallel verification executor turns recording on in each
/// worker's store; the workers hand back only their logs, and the merge
/// replays them against the master store in `O(total writes)` —
/// independent of how large the store itself is. Conflicts are detected
/// *positionally* (two workers touching the same location), so a write
/// whose value happens to equal the pre-loop value is still a conflict.
#[derive(Clone, Debug, Default)]
pub struct WriteLog {
    /// Scalar writes `(var, coerced value)` in program order.
    pub scalars: Vec<(VarId, Value)>,
    /// Array element writes `(var, flat index, coerced value)` in
    /// program order.
    pub elements: Vec<(VarId, usize, Value)>,
    /// Arrays materialized while recording, with their extents (reads
    /// materialize too, so this is a superset of the written arrays).
    pub materialized: Vec<(VarId, Vec<usize>)>,
}

impl WriteLog {
    /// Total number of recorded writes (scalar + element).
    pub fn len(&self) -> usize {
        self.scalars.len() + self.elements.len()
    }

    /// Whether nothing was written while recording.
    pub fn is_empty(&self) -> bool {
        self.scalars.is_empty() && self.elements.is_empty()
    }
}

/// A raw pointer to the element buffer of a materialized array.
///
/// The in-place strategy executor derives one per target from the
/// *master* store (after forcing payload uniqueness with
/// [`Arc::make_mut`]) and hands copies to the workers, whose snapshots
/// share the same allocation. Each worker writes only inside its own
/// disjoint flat-index window, so no two threads ever touch the same
/// element.
#[derive(Clone, Copy, Debug)]
pub(crate) enum RawSlice {
    Int(*mut i64),
    Real(*mut f64),
}

// SAFETY: a RawSlice is only ever dereferenced through
// `WriteOverlay::intercept`, which confines every write to the
// worker's own disjoint window of the buffer (the in-place derivation
// proves the windows disjoint, and the overlay re-checks each index
// dynamically). The pointee buffer outlives the `thread::scope` the
// workers run in because the master store owns the Arc'd payload for
// the whole dispatch.
unsafe impl Send for RawSlice {}
unsafe impl Sync for RawSlice {}

impl RawSlice {
    /// # Safety
    ///
    /// `idx` must be inside the allocation and inside the caller's
    /// exclusive window; no other thread may read or write the element.
    unsafe fn write(self, idx: usize, val: Value) {
        match self {
            RawSlice::Int(p) => *p.add(idx) = val.as_int(),
            RawSlice::Real(p) => *p.add(idx) = val.as_real(),
        }
    }
}

/// One in-place target as seen by one worker: writes to `var` whose
/// flat index lies in `[lo, hi]` (inclusive) go straight to the shared
/// master buffer; anything outside is a strategy violation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct InPlaceWindow {
    pub(crate) var: VarId,
    pub(crate) slice: RawSlice,
    pub(crate) lo: usize,
    pub(crate) hi: usize,
}

/// A per-worker append buffer for one consecutively-written array.
#[derive(Clone, Debug)]
pub(crate) enum ConcatBuf {
    Int(Vec<i64>),
    Real(Vec<f64>),
}

impl ConcatBuf {
    pub(crate) fn new(ty: ScalarType) -> ConcatBuf {
        match ty {
            ScalarType::Int => ConcatBuf::Int(Vec::new()),
            ScalarType::Real => ConcatBuf::Real(Vec::new()),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            ConcatBuf::Int(v) => v.len(),
            ConcatBuf::Real(v) => v.len(),
        }
    }

    fn push(&mut self, val: Value) {
        match self {
            ConcatBuf::Int(v) => v.push(val.as_int()),
            ConcatBuf::Real(v) => v.push(val.as_real()),
        }
    }

    fn set_last(&mut self, val: Value) {
        match self {
            ConcatBuf::Int(v) => *v.last_mut().expect("non-empty") = val.as_int(),
            ConcatBuf::Real(v) => *v.last_mut().expect("non-empty") = val.as_real(),
        }
    }

    /// The buffered values as [`Value`]s, for the commit-time apply.
    pub(crate) fn value(&self, k: usize) -> Value {
        match self {
            ConcatBuf::Int(v) => Value::Int(v[k]),
            ConcatBuf::Real(v) => Value::Real(v[k]),
        }
    }
}

/// A write interceptor a strategy executor installs on a worker store.
///
/// [`Store::write_element`] consults the overlay *before* the normal
/// copy-on-write/log path; an intercepted write never clones the
/// payload, bumps a version, or reaches the write log. A write that
/// breaks the strategy's proven discipline records a violation (and is
/// suppressed) instead of corrupting shared state; the worker checks
/// [`Store::overlay_violation`] every iteration and aborts the chunk.
#[derive(Clone, Debug)]
pub(crate) enum WriteOverlay {
    /// Proven-disjoint in-place writes into the master buffers.
    InPlace {
        windows: Vec<InPlaceWindow>,
        violation: Option<VarId>,
    },
    /// Positional append buffers for consecutively-written arrays:
    /// valid writes land at `base + buf.len()` (append) or overwrite
    /// the last appended element.
    Concat {
        base: usize,
        bufs: Vec<(VarId, ConcatBuf)>,
        violation: Option<VarId>,
    },
}

impl WriteOverlay {
    pub(crate) fn in_place(windows: Vec<InPlaceWindow>) -> WriteOverlay {
        WriteOverlay::InPlace {
            windows,
            violation: None,
        }
    }

    pub(crate) fn concat(base: usize, bufs: Vec<(VarId, ConcatBuf)>) -> WriteOverlay {
        WriteOverlay::Concat {
            base,
            bufs,
            violation: None,
        }
    }

    pub(crate) fn violation(&self) -> Option<VarId> {
        match self {
            WriteOverlay::InPlace { violation, .. } | WriteOverlay::Concat { violation, .. } => {
                *violation
            }
        }
    }

    /// Handles a write to `arr` at flat `idx`. Returns `true` when the
    /// write was intercepted (applied in place, buffered, or recorded
    /// as a violation and suppressed); `false` sends it down the
    /// normal store path.
    fn intercept(&mut self, arr: VarId, idx: usize, val: Value) -> bool {
        match self {
            WriteOverlay::InPlace { windows, violation } => {
                let Some(w) = windows.iter().find(|w| w.var == arr) else {
                    return false;
                };
                if violation.is_none() {
                    if idx >= w.lo && idx <= w.hi {
                        // SAFETY: idx is inside this worker's exclusive
                        // window (checked on the previous line) and the
                        // master keeps the buffer alive for the whole
                        // dispatch.
                        unsafe { w.slice.write(idx, val) };
                    } else {
                        *violation = Some(arr);
                    }
                }
                true
            }
            WriteOverlay::Concat {
                base,
                bufs,
                violation,
            } => {
                let Some((_, buf)) = bufs.iter_mut().find(|(v, _)| *v == arr) else {
                    return false;
                };
                if violation.is_none() {
                    let next = *base + buf.len();
                    if idx == next {
                        buf.push(val);
                    } else if buf.len() > 0 && idx + 1 == next {
                        // Re-write of the element appended last —
                        // sequential semantics allow overwriting the
                        // current position before the next increment.
                        buf.set_last(val);
                    } else {
                        *violation = Some(arr);
                    }
                }
                true
            }
        }
    }
}

/// The global store (all variables are global).
///
/// Every array slot carries a monotonically increasing **write-version
/// counter**, bumped whenever the array is materialized or any of its
/// elements may have been written. Version counters let the hybrid
/// runtime's schedule cache (`irr-runtime`) re-run an inspection only
/// when an index array has actually been mutated since the last loop
/// entry — O(n)-per-mutation instead of O(n)-per-execution. Versions
/// are bookkeeping metadata: they do not participate in store equality.
///
/// Array payloads are reference-counted ([`Arc`]) with copy-on-write on
/// the first mutation: cloning a store is O(#variables) regardless of
/// how many elements the arrays hold, which is what lets the parallel
/// verification executor hand every worker its own store for the price
/// of a scalar-table copy.
///
/// A store can additionally record every write into a [`WriteLog`]
/// (see [`Store::start_write_log`]); recording state is carried by
/// clones but excluded from equality.
#[derive(Debug)]
pub struct Store {
    scalars: Vec<Value>,
    arrays: Vec<Option<Arc<ArrayData>>>,
    versions: Vec<u64>,
    log: Option<Box<WriteLog>>,
    /// Strategy write interceptor (see [`WriteOverlay`]); only ever
    /// set on a parallel worker's store.
    overlay: Option<Box<WriteOverlay>>,
}

impl Clone for Store {
    fn clone(&self) -> Store {
        Store {
            scalars: self.scalars.clone(),
            arrays: self.arrays.clone(),
            versions: self.versions.clone(),
            log: self.log.clone(),
            // Interception is per-store: a snapshot taken from a store
            // with an overlay installed must not write through it.
            overlay: None,
        }
    }
}

impl PartialEq for Store {
    fn eq(&self, other: &Store) -> bool {
        // Versions and any active write log are deliberately excluded:
        // two stores holding the same values are equal regardless of
        // their write histories.
        self.scalars == other.scalars && self.arrays == other.arrays
    }
}

impl Store {
    /// Initializes the store for a program: integers 0, reals 0.0,
    /// arrays zero-filled (array extents must evaluate to constants or
    /// to scalars already assigned... extents are evaluated lazily at
    /// first touch).
    pub fn new(program: &Program) -> Store {
        let n = program.symbols.len();
        let mut scalars = Vec::with_capacity(n);
        for (_, info) in program.symbols.iter() {
            scalars.push(match info.ty {
                ScalarType::Int => Value::Int(0),
                ScalarType::Real => Value::Real(0.0),
            });
        }
        Store {
            scalars,
            arrays: vec![None; n],
            versions: vec![0; n],
            log: None,
            overlay: None,
        }
    }

    /// Installs a strategy write interceptor (see [`WriteOverlay`]).
    pub(crate) fn install_overlay(&mut self, overlay: WriteOverlay) {
        self.overlay = Some(Box::new(overlay));
    }

    /// Removes and returns the installed overlay, if any.
    pub(crate) fn take_overlay(&mut self) -> Option<WriteOverlay> {
        self.overlay.take().map(|b| *b)
    }

    /// The first strategy violation the overlay recorded, if any.
    pub(crate) fn overlay_violation(&self) -> Option<VarId> {
        self.overlay.as_ref().and_then(|o| o.violation())
    }

    /// Raw pointer to the element buffer of materialized `arr`, plus
    /// its flat length. Forces payload uniqueness first
    /// ([`Arc::make_mut`]), so snapshots cloned *afterwards* share
    /// exactly this allocation — which is what lets in-place workers
    /// write through the pointer while the master retains ownership.
    ///
    /// # Panics
    ///
    /// Panics if `arr` is not materialized.
    pub(crate) fn payload_raw(&mut self, arr: VarId) -> (RawSlice, usize) {
        let data = Arc::make_mut(self.arrays[arr.index()].as_mut().expect("materialized"));
        match data {
            ArrayData::Int { data, .. } => (RawSlice::Int(data.as_mut_ptr()), data.len()),
            ArrayData::Real { data, .. } => (RawSlice::Real(data.as_mut_ptr()), data.len()),
        }
    }

    /// Turns on write recording: every subsequent scalar write, element
    /// write, and array materialization is appended to a fresh
    /// [`WriteLog`] until [`Store::take_write_log`] collects it.
    pub fn start_write_log(&mut self) {
        self.log = Some(Box::default());
    }

    /// Stops recording and returns the captured log (`None` when
    /// recording was never started).
    pub fn take_write_log(&mut self) -> Option<WriteLog> {
        self.log.take().map(|b| *b)
    }

    /// The write-version counter of `arr`: bumped on materialization and
    /// on every (potential) element write. Two equal versions at two
    /// program points guarantee the array was not mutated in between.
    pub fn array_version(&self, arr: VarId) -> u64 {
        self.versions[arr.index()]
    }

    /// Records a (potential) write to `arr`.
    pub(crate) fn bump_version(&mut self, arr: VarId) {
        self.versions[arr.index()] += 1;
    }

    /// Records `n` writes to `arr` at once — the compiled fast path
    /// counts writes locally and lands them here at flush, keeping the
    /// version arithmetic identical to `n` tree-walk writes.
    pub(crate) fn bump_version_by(&mut self, arr: VarId, n: u64) {
        self.versions[arr.index()] += n;
    }

    /// Whether writes are observed beyond the payload (transactional
    /// write log or a strategy overlay). The compiled fast path is
    /// only sound when they are not.
    pub(crate) fn writes_observed(&self) -> bool {
        self.log.is_some() || self.overlay.is_some()
    }

    /// Uniquely-owned payload of a materialized array (cloning a
    /// shared `Arc` exactly as a tree-walk write would).
    pub(crate) fn array_make_mut(&mut self, arr: VarId) -> &mut ArrayData {
        Arc::make_mut(self.arrays[arr.index()].as_mut().expect("ensured"))
    }

    /// The flat element count of `arr`, if materialized.
    pub fn array_len(&self, arr: VarId) -> Option<usize> {
        self.arrays[arr.index()].as_deref().map(ArrayData::len)
    }

    /// The payload of `arr`, if materialized (the bytecode executor's
    /// read path).
    pub(crate) fn array_ref(&self, arr: VarId) -> Option<&ArrayData> {
        self.arrays[arr.index()].as_deref()
    }

    /// Reads a scalar.
    pub fn scalar(&self, v: VarId) -> Value {
        self.scalars[v.index()]
    }

    /// Writes a scalar (coercing to the declared type).
    pub fn set_scalar(&mut self, v: VarId, ty: ScalarType, val: Value) {
        let coerced = match ty {
            ScalarType::Int => Value::Int(val.as_int()),
            ScalarType::Real => Value::Real(val.as_real()),
        };
        self.scalars[v.index()] = coerced;
        if let Some(log) = &mut self.log {
            log.scalars.push((v, coerced));
        }
    }

    /// Writes a scalar without recording it in the write log. The
    /// parallel executor uses this for the loop induction variable: it
    /// is restored by the master after the merge, so logging one entry
    /// per iteration would bloat the log past the real write set.
    pub(crate) fn set_scalar_untracked(&mut self, v: VarId, ty: ScalarType, val: Value) {
        self.scalars[v.index()] = match ty {
            ScalarType::Int => Value::Int(val.as_int()),
            ScalarType::Real => Value::Real(val.as_real()),
        };
    }

    /// Reads `arr` as a flat `f64` vector (for checksums in tests).
    pub fn array_as_reals(&self, arr: VarId) -> Option<Vec<f64>> {
        match self.arrays[arr.index()].as_deref()? {
            ArrayData::Int { data, .. } => Some(data.iter().map(|v| *v as f64).collect()),
            ArrayData::Real { data, .. } => Some(data.clone()),
        }
    }

    /// The declared extents of `arr`, if materialized.
    pub fn array_dims(&self, arr: VarId) -> Option<&[usize]> {
        self.arrays[arr.index()].as_deref().map(ArrayData::dims)
    }

    /// Installs `data` as the storage of `arr` before execution — the
    /// public preset hook the sparse workload suite uses to inject
    /// generated index and value arrays without interpreting gigantic
    /// initialization loops. Presets are pinned for the whole run:
    /// array materialization skips already-materialized arrays, and the
    /// audit's randomized fill only affects arrays not yet
    /// materialized.
    pub fn preset_array(&mut self, arr: VarId, data: ArrayData) {
        self.materialize(arr, data);
    }

    /// Installs `data` as the storage of `arr`, recording the
    /// materialization when a write log is active.
    pub(crate) fn materialize(&mut self, arr: VarId, data: ArrayData) {
        if let Some(log) = &mut self.log {
            log.materialized.push((arr, data.dims().to_vec()));
        }
        self.arrays[arr.index()] = Some(Arc::new(data));
        self.bump_version(arr);
    }

    /// Writes one element of a materialized array (copy-on-write:
    /// shared payloads are cloned on the first mutation), coercing to
    /// the array's element type, bumping the write version, and
    /// recording the write when a log is active.
    ///
    /// # Panics
    ///
    /// Panics if `arr` is not materialized or `idx` is out of range —
    /// callers bounds-check through [`Interp`] or the merge.
    pub(crate) fn write_element(&mut self, arr: VarId, idx: usize, val: Value) {
        // Strategy overlays intercept before anything else: an
        // in-place or concat write must not clone the shared payload,
        // bump the version, or reach the write log.
        if let Some(overlay) = &mut self.overlay {
            if overlay.intercept(arr, idx, val) {
                return;
            }
        }
        let data = Arc::make_mut(self.arrays[arr.index()].as_mut().expect("ensured"));
        let coerced = match data {
            ArrayData::Int { data, .. } => {
                let v = val.as_int();
                data[idx] = v;
                Value::Int(v)
            }
            ArrayData::Real { data, .. } => {
                let v = val.as_real();
                data[idx] = v;
                Value::Real(v)
            }
        };
        self.bump_version(arr);
        if let Some(log) = &mut self.log {
            log.elements.push((arr, idx, coerced));
        }
    }
}

/// Per-loop execution statistics.
#[derive(Clone, Debug, Default)]
pub struct LoopStats {
    /// Number of times the loop was entered.
    pub invocations: u64,
    /// Total statement cost spent inside (including nested).
    pub total_cost: u64,
    /// Per-invocation iteration costs (only for recorded loops).
    pub iteration_costs: Vec<Vec<u64>>,
    /// How many of the invocations went through the parallel executor.
    pub parallel_invocations: u64,
    /// Variables the parallel plan treated as privatized (scalars and
    /// arrays), recorded on parallel dispatch so telemetry and the
    /// dependence auditor can attribute effects per array instead of
    /// per loop.
    pub privatized: Vec<VarId>,
    /// Reduction variables of the parallel plan, recorded on parallel
    /// dispatch.
    pub reductions: Vec<VarId>,
}

/// Whole-run statistics.
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    /// Total statements executed (the cost unit).
    pub total_cost: u64,
    /// Per-loop stats.
    pub loops: HashMap<StmtId, LoopStats>,
}

/// Runtime errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// Array subscript outside the declared extent.
    OutOfBounds {
        array: String,
        index: i64,
        extent: usize,
    },
    /// Division by zero.
    DivisionByZero,
    /// The fuel limit was exhausted (runaway loop guard).
    OutOfFuel,
    /// An array extent did not evaluate to a positive constant.
    BadExtent { array: String },
    /// A parallel dispatch failed (e.g. conflicting chunk writes) — the
    /// dispatcher requested a parallel execution that was not actually
    /// legal.
    ParallelFailure { reason: String },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds {
                array,
                index,
                extent,
            } => {
                write!(
                    f,
                    "subscript {index} out of bounds for `{array}` (extent {extent})"
                )
            }
            ExecError::DivisionByZero => write!(f, "division by zero"),
            ExecError::OutOfFuel => write!(f, "execution fuel exhausted"),
            ExecError::BadExtent { array } => write!(f, "bad extent for array `{array}`"),
            ExecError::ParallelFailure { reason } => {
                write!(f, "parallel dispatch failed: {reason}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a complete run.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// Lines produced by `print`.
    pub output: Vec<String>,
    /// Statistics.
    pub stats: ExecStats,
    /// Final memory.
    pub store: Store,
}

/// The interpreter.
pub struct Interp<'p> {
    program: &'p Program,
    /// The store (public so the parallel executor can swap it).
    pub store: Store,
    /// Statistics.
    pub stats: ExecStats,
    /// Loops whose per-iteration costs are recorded.
    pub record_loops: HashSet<StmtId>,
    /// `print` output.
    pub output: Vec<String>,
    /// Remaining execution fuel.
    pub fuel: u64,
    /// The attached access tracer, if any (dependence sanitizer hook).
    /// `None` in ordinary runs: every hook site is one null check.
    tracer: Option<TracerSlot>,
    /// When set, lazily materialized arrays fill with deterministic
    /// pseudo-random values instead of zeros (randomized audit inputs).
    random_fill: Option<SplitMix64>,
    /// Dense per-`VarId` scalar types, resolved once at construction —
    /// scalar writes on the hot path read this table instead of the
    /// symbol table, and the bytecode lowering shares it.
    pub(crate) layout: ScalarLayout,
    /// Per-loop lowering results (`None` caches a rejection). Lowering
    /// is a pure function of the immutable program, so entries stay
    /// valid for the interpreter's lifetime; `Arc` lets parallel
    /// workers share one body.
    compiled_cache: HashMap<StmtId, Option<Arc<CompiledBody>>>,
    /// Typed specializations of cached bodies (`None` caches a nest
    /// the type inference cannot specialize). Like the lowering, the
    /// specialization is a pure function of the immutable program.
    fast_cache: HashMap<StmtId, Option<Arc<FastBody>>>,
    /// Per-opcode dispatch counters for the bytecode tier; `None` (the
    /// default) disables profiling entirely. Kept out of [`ExecStats`]
    /// so tier parity of stats is byte-identical.
    pub compiled_profile: Option<Box<CompiledProfile>>,
    /// Reusable register file for compiled loop entries.
    pub(crate) ctemps: Vec<Value>,
}

impl<'p> Interp<'p> {
    /// The program being interpreted.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Creates an interpreter with a fresh store and default fuel.
    pub fn new(program: &'p Program) -> Interp<'p> {
        Interp {
            program,
            store: Store::new(program),
            stats: ExecStats::default(),
            record_loops: HashSet::new(),
            output: Vec::new(),
            fuel: 2_000_000_000,
            tracer: None,
            random_fill: None,
            layout: ScalarLayout::new(program),
            compiled_cache: HashMap::new(),
            fast_cache: HashMap::new(),
            compiled_profile: None,
            ctemps: Vec::new(),
        }
    }

    /// The cached lowering of the `do` loop at `s` (`None` when the
    /// nest is not lowerable). The first call per loop runs the
    /// lowering; later calls are a map hit.
    pub fn compiled_body_for(&mut self, s: StmtId) -> Option<Arc<CompiledBody>> {
        if let Some(cached) = self.compiled_cache.get(&s) {
            return cached.clone();
        }
        let lowered = crate::bytecode::lower_do_loop(self.program, s)
            .ok()
            .map(Arc::new);
        self.compiled_cache.insert(s, lowered.clone());
        lowered
    }

    /// The cached typed specialization of the loop at `s` (`None` when
    /// the nest cannot be statically typed).
    pub(crate) fn fast_body_for(&mut self, s: StmtId, cb: &CompiledBody) -> Option<Arc<FastBody>> {
        if let Some(cached) = self.fast_cache.get(&s) {
            return cached.clone();
        }
        let fb = crate::bytecode::specialize(self.program, cb).map(Arc::new);
        self.fast_cache.insert(s, fb.clone());
        fb
    }

    /// Whether a [`LoopDecision::Compiled`] dispatch of `s` can run, and
    /// with which body. Interpreter-only instrumentation (an attached
    /// tracer — whose access hooks fire on every read — or
    /// per-iteration cost recording on any loop of the nest) forces the
    /// instrumented tree-walk.
    fn compiled_decision(&mut self, s: StmtId) -> Result<Arc<CompiledBody>, FallbackReason> {
        if self.tracer.is_some() {
            return Err(FallbackReason::Traced);
        }
        let Some(cb) = self.compiled_body_for(s) else {
            return Err(FallbackReason::Unsupported);
        };
        if cb
            .loop_stmts()
            .iter()
            .any(|l| self.record_loops.contains(l))
        {
            return Err(FallbackReason::Traced);
        }
        Ok(cb)
    }

    /// Attaches an access tracer: `hook` receives loop events for the
    /// loops `config` selects, plus every element/scalar access executed
    /// from now on (see [`AccessTracer`]).
    pub fn attach_tracer(&mut self, config: TraceConfig, hook: Box<dyn AccessTracer>) {
        self.tracer = Some(TracerSlot { config, hook });
    }

    /// Detaches and returns the tracer hook, if one was attached.
    pub fn detach_tracer(&mut self) -> Option<Box<dyn AccessTracer>> {
        self.tracer.take().map(|slot| slot.hook)
    }

    /// Fills every array materialized from now on with deterministic
    /// pseudo-random values drawn from a SplitMix64 stream seeded with
    /// `seed`, instead of zeros. Extents and scalar initialization are
    /// unaffected, so the program's shape is preserved while the data
    /// an array holds before its first write varies per seed.
    pub fn set_random_fill(&mut self, seed: u64) {
        self.random_fill = Some(SplitMix64::new(seed));
    }

    /// Presets `arr` to `data` before the run (see
    /// [`Store::preset_array`]): the declaration's extents are ignored
    /// in favor of the preset's, and neither zero- nor random-fill
    /// touches the array afterwards.
    pub fn preset_array(&mut self, arr: VarId, data: ArrayData) {
        self.store.preset_array(arr, data);
    }

    /// Runs the whole program.
    ///
    /// # Errors
    ///
    /// Propagates any [`ExecError`] raised during execution.
    pub fn run(self) -> Result<ExecOutcome, ExecError> {
        self.run_dispatched(&mut SequentialDispatch)
    }

    /// Runs the whole program, consulting `dispatcher` at every dynamic
    /// `do`-loop entry (see [`LoopDispatcher`]). This is the execution
    /// entry point of the hybrid inspector–executor runtime.
    ///
    /// # Errors
    ///
    /// Propagates any [`ExecError`] raised during execution, including
    /// failures of parallel dispatches the dispatcher requested.
    pub fn run_dispatched(
        mut self,
        dispatcher: &mut dyn LoopDispatcher,
    ) -> Result<ExecOutcome, ExecError> {
        let main = self.program.main();
        self.exec_proc_with(main, dispatcher)?;
        Ok(ExecOutcome {
            output: self.output,
            stats: self.stats,
            store: self.store,
        })
    }

    /// Executes one procedure body.
    pub fn exec_proc(&mut self, p: ProcId) -> Result<(), ExecError> {
        self.exec_proc_with(p, &mut SequentialDispatch)
    }

    /// Executes one procedure body under a dispatcher.
    pub fn exec_proc_with(
        &mut self,
        p: ProcId,
        dispatcher: &mut dyn LoopDispatcher,
    ) -> Result<(), ExecError> {
        let body = self.program.procedures[p.index()].body.clone();
        self.exec_body_with(&body, dispatcher)
    }

    /// Executes a statement list.
    pub fn exec_body(&mut self, body: &[StmtId]) -> Result<(), ExecError> {
        self.exec_body_with(body, &mut SequentialDispatch)
    }

    /// Executes a statement list under a dispatcher.
    pub fn exec_body_with(
        &mut self,
        body: &[StmtId],
        dispatcher: &mut dyn LoopDispatcher,
    ) -> Result<(), ExecError> {
        for &s in body {
            self.exec_stmt_with(s, dispatcher)?;
        }
        Ok(())
    }

    pub(crate) fn charge(&mut self, n: u64) -> Result<(), ExecError> {
        self.stats.total_cost += n;
        if self.fuel < n {
            return Err(ExecError::OutOfFuel);
        }
        self.fuel -= n;
        Ok(())
    }

    /// Executes a single statement.
    pub fn exec_stmt(&mut self, s: StmtId) -> Result<(), ExecError> {
        self.exec_stmt_with(s, &mut SequentialDispatch)
    }

    /// Executes a single statement under a dispatcher. Compound
    /// statements (loops, conditionals, calls) propagate the dispatcher
    /// into their bodies, so guarded loops are dispatched per execution
    /// at **any** nesting depth.
    pub fn exec_stmt_with(
        &mut self,
        s: StmtId,
        dispatcher: &mut dyn LoopDispatcher,
    ) -> Result<(), ExecError> {
        self.charge(1)?;
        // The program reference outlives `self`'s borrow, so statement
        // kinds are matched by reference — no per-statement clone on
        // this hot path.
        let program = self.program;
        match &program.stmt(s).kind {
            StmtKind::Assign { lhs, rhs } => {
                let val = self.eval(rhs)?;
                match lhs {
                    LValue::Scalar(v) => {
                        let v = *v;
                        let ty = self.layout.ty(v);
                        self.store.set_scalar(v, ty, val);
                        if let Some(t) = &mut self.tracer {
                            t.hook.write_scalar(v);
                        }
                    }
                    LValue::Element(a, subs) => {
                        let a = *a;
                        let idx = self.flat_index(a, subs)?;
                        self.write_element(a, idx, val);
                        if let Some(t) = &mut self.tracer {
                            t.hook.write_element(a, idx);
                        }
                    }
                }
                Ok(())
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
                ..
            } => {
                let var = *var;
                let lo = self.eval(lo)?.as_int();
                let hi = self.eval(hi)?.as_int();
                let step = match step {
                    Some(e) => self.eval(e)?.as_int(),
                    None => 1,
                };
                if step == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                match dispatcher.dispatch(&self.store, s, lo, hi, step) {
                    LoopDecision::Parallel(plan) => {
                        match crate::parallel::exec_do_parallel(self, s, &plan, lo, hi, step) {
                            Ok(strategy) => {
                                dispatcher.parallel_committed(s, strategy);
                                return Ok(());
                            }
                            // Genuine runtime errors inside a worker are
                            // the program's fault and propagate.
                            Err(crate::parallel::ParallelError::Exec(x)) => return Err(x),
                            // Everything else is the dispatch's fault
                            // (conflict, panic, shape, timeout,
                            // unsupported shape). The transaction left
                            // the master store, stats, and output
                            // untouched, so fall through to the
                            // sequential loop below — the recorded run
                            // is then exactly the sequential one.
                            Err(other) => {
                                let reason = other.fallback_reason().unwrap_or_else(|| {
                                    unreachable!("non-Exec ParallelError always has a reason")
                                });
                                dispatcher.parallel_failed(s, reason);
                            }
                        }
                    }
                    LoopDecision::Compiled => match self.compiled_decision(s) {
                        Ok(cb) => {
                            self.exec_do_compiled(s, &cb, lo, hi, step)?;
                            dispatcher.compiled_committed(s);
                            return Ok(());
                        }
                        // Unlowerable or instrumented: the sequential
                        // walk below is the execution; the failed
                        // dispatch cost one cached lowering lookup.
                        Err(reason) => dispatcher.compiled_fallback(s, reason),
                    },
                    LoopDecision::Sequential => {}
                }
                // Traced loops report entry (with the live store, for
                // guard replay), every iteration, and exit. Parallel
                // dispatches returned above: the sanitizer audits the
                // sequential semantics of a loop.
                let traced = self.tracer.as_ref().is_some_and(|t| t.config.traces(s));
                if traced {
                    if let Some(t) = &mut self.tracer {
                        t.hook.loop_enter(&self.store, s, lo, hi, step);
                    }
                }
                let record = self.record_loops.contains(&s);
                let entry = self.stats.loops.entry(s).or_default();
                entry.invocations += 1;
                let cost_at_entry = self.stats.total_cost;
                let mut iter_costs: Vec<u64> = Vec::new();
                let ty = self.layout.ty(var);
                let mut i = lo;
                while (step > 0 && i <= hi) || (step < 0 && i >= hi) {
                    self.store.set_scalar(var, ty, Value::Int(i));
                    if traced {
                        if let Some(t) = &mut self.tracer {
                            t.hook.loop_iter(s, i);
                        }
                    }
                    let c0 = self.stats.total_cost;
                    self.exec_body_with(body, dispatcher)?;
                    self.charge(1)?; // loop bookkeeping
                    if record {
                        iter_costs.push(self.stats.total_cost - c0);
                    }
                    i += step;
                }
                if traced {
                    if let Some(t) = &mut self.tracer {
                        t.hook.loop_exit(s);
                    }
                }
                // Fortran leaves the induction variable at the
                // first out-of-range value.
                self.store.set_scalar(var, ty, Value::Int(i));
                let total = self.stats.total_cost - cost_at_entry;
                let entry = self.stats.loops.entry(s).or_default();
                entry.total_cost += total;
                if record {
                    entry.iteration_costs.push(iter_costs);
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let entry = self.stats.loops.entry(s).or_default();
                entry.invocations += 1;
                let cost_at_entry = self.stats.total_cost;
                while self.eval_cond(cond)? {
                    self.charge(1)?;
                    self.exec_body_with(body, dispatcher)?;
                }
                let total = self.stats.total_cost - cost_at_entry;
                self.stats.loops.entry(s).or_default().total_cost += total;
                Ok(())
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.eval_cond(cond)? {
                    self.exec_body_with(then_body, dispatcher)
                } else {
                    self.exec_body_with(else_body, dispatcher)
                }
            }
            StmtKind::Call { proc } => self.exec_proc_with(*proc, dispatcher),
            StmtKind::Print { args } => {
                let mut parts = Vec::with_capacity(args.len());
                for a in args {
                    parts.push(format!("{}", self.eval(a)?));
                }
                self.output.push(parts.join(" "));
                Ok(())
            }
            StmtKind::Return => Ok(()),
        }
    }

    /// Evaluates a numeric expression.
    pub fn eval(&mut self, e: &Expr) -> Result<Value, ExecError> {
        match e {
            Expr::IntLit(v) => Ok(Value::Int(*v)),
            Expr::RealLit(v) => Ok(Value::Real(*v)),
            Expr::Var(v) => {
                if let Some(t) = &mut self.tracer {
                    t.hook.read_scalar(*v);
                }
                Ok(self.store.scalar(*v))
            }
            Expr::Element(a, subs) => {
                let idx = self.flat_index(*a, subs)?;
                if let Some(t) = &mut self.tracer {
                    t.hook.read_element(*a, idx);
                }
                Ok(self.read_element(*a, idx))
            }
            Expr::Bin(op, x, y) => {
                let a = self.eval(x)?;
                if op.is_logical() || op.is_comparison() {
                    // Logical value in numeric position: treat as 0/1.
                    let b = self.eval_cond(e)?;
                    return Ok(Value::Int(b as i64));
                }
                let b = self.eval(y)?;
                Ok(apply_bin(*op, a, b)?)
            }
            Expr::Un(UnOp::Neg, x) => Ok(match self.eval(x)? {
                Value::Int(v) => Value::Int(-v),
                Value::Real(v) => Value::Real(-v),
            }),
            Expr::Un(UnOp::Not, _) => {
                let b = self.eval_cond(e)?;
                Ok(Value::Int(b as i64))
            }
            Expr::Call(intr, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                apply_intrinsic(*intr, &vals)
            }
        }
    }

    /// Evaluates a condition.
    pub fn eval_cond(&mut self, e: &Expr) -> Result<bool, ExecError> {
        match e {
            Expr::Bin(op, x, y) if op.is_comparison() => {
                let a = self.eval(x)?;
                let b = self.eval(y)?;
                let ord = match (a, b) {
                    (Value::Int(p), Value::Int(q)) => p.cmp(&q),
                    _ => a
                        .as_real()
                        .partial_cmp(&b.as_real())
                        .unwrap_or(std::cmp::Ordering::Equal),
                };
                Ok(match op {
                    BinOp::Eq => ord == std::cmp::Ordering::Equal,
                    BinOp::Ne => ord != std::cmp::Ordering::Equal,
                    BinOp::Lt => ord == std::cmp::Ordering::Less,
                    BinOp::Le => ord != std::cmp::Ordering::Greater,
                    BinOp::Gt => ord == std::cmp::Ordering::Greater,
                    BinOp::Ge => ord != std::cmp::Ordering::Less,
                    _ => unreachable!("comparison"),
                })
            }
            Expr::Bin(BinOp::And, x, y) => Ok(self.eval_cond(x)? && self.eval_cond(y)?),
            Expr::Bin(BinOp::Or, x, y) => Ok(self.eval_cond(x)? || self.eval_cond(y)?),
            Expr::Un(UnOp::Not, x) => Ok(!self.eval_cond(x)?),
            other => Ok(self.eval(other)?.as_real() != 0.0),
        }
    }

    /// Materializes `a` if it is not already (evaluating its declared
    /// extents). The strategy executor calls this on in-place targets
    /// before taking raw payload pointers.
    pub(crate) fn ensure_materialized(&mut self, a: VarId) -> Result<(), ExecError> {
        self.ensure_array(a)
    }

    fn ensure_array(&mut self, a: VarId) -> Result<(), ExecError> {
        if self.store.arrays[a.index()].is_some() {
            return Ok(());
        }
        let info = self.program.symbols.var(a);
        let mut dims = Vec::with_capacity(info.dims.len());
        for d in info.dims.clone() {
            let v = self.eval(&d)?.as_int();
            if v <= 0 {
                return Err(ExecError::BadExtent {
                    array: info.name.clone(),
                });
            }
            dims.push(v as usize);
        }
        let data = match &mut self.random_fill {
            Some(rng) => ArrayData::random(info.ty, dims, rng),
            None => ArrayData::zeroed(info.ty, dims),
        };
        self.store.materialize(a, data);
        Ok(())
    }

    fn flat_index(&mut self, a: VarId, subs: &[Expr]) -> Result<usize, ExecError> {
        self.ensure_array(a)?;
        let mut vals = Vec::with_capacity(subs.len());
        for s in subs {
            vals.push(self.eval(s)?.as_int());
        }
        let arr = self.store.arrays[a.index()].as_deref().expect("ensured");
        let dims = arr.dims();
        // Fortran column-major, 1-based.
        let mut idx: usize = 0;
        let mut stride: usize = 1;
        for (k, &v) in vals.iter().enumerate() {
            let extent = dims[k];
            if v < 1 || v as usize > extent {
                return Err(ExecError::OutOfBounds {
                    array: self.program.symbols.name(a).to_string(),
                    index: v,
                    extent,
                });
            }
            idx += (v as usize - 1) * stride;
            stride *= extent;
        }
        debug_assert!(idx < arr.len());
        Ok(idx)
    }

    fn read_element(&self, a: VarId, idx: usize) -> Value {
        match self.store.arrays[a.index()].as_deref().expect("ensured") {
            ArrayData::Int { data, .. } => Value::Int(data[idx]),
            ArrayData::Real { data, .. } => Value::Real(data[idx]),
        }
    }

    fn write_element(&mut self, a: VarId, idx: usize, val: Value) {
        self.store.write_element(a, idx, val);
    }
}

pub(crate) fn apply_bin(op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(match op {
            BinOp::Add => Value::Int(x.wrapping_add(y)),
            BinOp::Sub => Value::Int(x.wrapping_sub(y)),
            BinOp::Mul => Value::Int(x.wrapping_mul(y)),
            BinOp::Div => {
                if y == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                Value::Int(x.div_euclid(y))
            }
            BinOp::Mod => {
                if y == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                Value::Int(x.rem_euclid(y))
            }
            _ => unreachable!("handled in eval"),
        }),
        _ => {
            let (x, y) = (a.as_real(), b.as_real());
            Ok(match op {
                BinOp::Add => Value::Real(x + y),
                BinOp::Sub => Value::Real(x - y),
                BinOp::Mul => Value::Real(x * y),
                BinOp::Div => {
                    if y == 0.0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    Value::Real(x / y)
                }
                BinOp::Mod => Value::Real(x.rem_euclid(y)),
                _ => unreachable!("handled in eval"),
            })
        }
    }
}

pub(crate) fn apply_intrinsic(intr: Intrinsic, vals: &[Value]) -> Result<Value, ExecError> {
    let real1 =
        |f: fn(f64) -> f64| -> Result<Value, ExecError> { Ok(Value::Real(f(vals[0].as_real()))) };
    match intr {
        Intrinsic::Min => match (vals[0], vals[1]) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.min(b))),
            (a, b) => Ok(Value::Real(a.as_real().min(b.as_real()))),
        },
        Intrinsic::Max => match (vals[0], vals[1]) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.max(b))),
            (a, b) => Ok(Value::Real(a.as_real().max(b.as_real()))),
        },
        Intrinsic::Abs => Ok(match vals[0] {
            Value::Int(v) => Value::Int(v.abs()),
            Value::Real(v) => Value::Real(v.abs()),
        }),
        Intrinsic::Mod => apply_bin(BinOp::Mod, vals[0], vals[1]),
        Intrinsic::Sqrt => real1(f64::sqrt),
        Intrinsic::Sin => real1(f64::sin),
        Intrinsic::Cos => real1(f64::cos),
        Intrinsic::Exp => real1(f64::exp),
        Intrinsic::Log => real1(f64::ln),
        Intrinsic::Int => Ok(Value::Int(vals[0].as_int())),
        Intrinsic::Real => Ok(Value::Real(vals[0].as_real())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    fn run(src: &str) -> ExecOutcome {
        let p = parse_program(src).unwrap();
        Interp::new(&p).run().unwrap()
    }

    #[test]
    fn arithmetic_and_print() {
        let out = run("program t\nprint 1 + 2 * 3, 10 / 3, mod(10, 3)\nend\n");
        assert_eq!(out.output, vec!["7 3 1"]);
    }

    #[test]
    fn floor_division_semantics() {
        let out = run("program t\nprint (0 - 7) / 2, mod(0 - 7, 2)\nend\n");
        // div_euclid(-7, 2) = -4, rem_euclid = 1.
        assert_eq!(out.output, vec!["-4 1"]);
    }

    #[test]
    fn do_loop_and_arrays() {
        let out = run("program t
             integer i
             real x(10)
             do i = 1, 10
               x(i) = i * 1.5
             enddo
             print x(1), x(10)
             end");
        assert_eq!(out.output, vec!["1.5 15"]);
    }

    #[test]
    fn while_and_if() {
        let out = run("program t
             integer p, total
             p = 0
             total = 0
             while (p < 5)
               p = p + 1
               if (mod(p, 2) == 0) then
                 total = total + p
               endif
             endwhile
             print total
             end");
        assert_eq!(out.output, vec!["6"]);
    }

    #[test]
    fn subroutine_calls_share_globals() {
        let out = run("program t
             integer k
             k = 1
             call bump
             call bump
             print k
             end
             subroutine bump
             k = k + 1
             end");
        assert_eq!(out.output, vec!["3"]);
    }

    #[test]
    fn two_dimensional_arrays() {
        let out = run("program t
             integer i, j
             real z(3, 4)
             do i = 1, 3
               do j = 1, 4
                 z(i, j) = i * 10 + j
               enddo
             enddo
             print z(2, 3), z(3, 4)
             end");
        assert_eq!(out.output, vec!["23 34"]);
    }

    #[test]
    fn out_of_bounds_is_caught() {
        let p = parse_program("program t\nreal x(3)\nx(4) = 1\nend\n").unwrap();
        let err = Interp::new(&p).run().unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { .. }));
    }

    #[test]
    fn fuel_limit_stops_infinite_loops() {
        let p =
            parse_program("program t\ninteger i\nwhile (1 > 0)\ni = i\nendwhile\nend\n").unwrap();
        let mut it = Interp::new(&p);
        it.fuel = 10_000;
        assert_eq!(it.run().unwrap_err(), ExecError::OutOfFuel);
    }

    #[test]
    fn loop_stats_and_recording() {
        let p = parse_program(
            "program t
             integer i, j
             real x(100)
             do i = 1, 4
               do j = 1, i
                 x(j) = i + j
               enddo
             enddo
             end",
        )
        .unwrap();
        let outer = p
            .stmts_in(&p.procedure(p.main()).body)
            .into_iter()
            .find(|s| p.stmt(*s).kind.is_loop())
            .unwrap();
        let mut it = Interp::new(&p);
        it.record_loops.insert(outer);
        let out = it.run().unwrap();
        let stats = &out.stats.loops[&outer];
        assert_eq!(stats.invocations, 1);
        assert_eq!(stats.iteration_costs.len(), 1);
        let iters = &stats.iteration_costs[0];
        assert_eq!(iters.len(), 4);
        // Triangular work: each iteration costs more than the previous.
        assert!(iters.windows(2).all(|w| w[0] < w[1]), "{iters:?}");
    }

    #[test]
    fn induction_variable_final_value() {
        let out = run("program t
             integer i
             do i = 1, 5
               i = i
             enddo
             print i
             end");
        assert_eq!(out.output, vec!["6"]);
    }

    #[test]
    fn zero_trip_loop() {
        let out = run("program t
             integer i, k
             k = 7
             do i = 5, 1
               k = 0
             enddo
             print k, i
             end");
        assert_eq!(out.output, vec!["7 5"]);
    }
}
