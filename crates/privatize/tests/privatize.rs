//! Privatization scenarios: the three motivating examples of Fig. 1,
//! the P3M/BDNA gather-then-use pattern, and negative cases.

use irr_core::property::ArrayPropertyAnalysis;
use irr_core::AnalysisCtx;
use irr_frontend::{parse_program, Program, StmtId};
use irr_privatize::{PrivatizeEvidence, Privatizer};

fn loops_of(p: &Program) -> Vec<StmtId> {
    let mut out = Vec::new();
    for proc in &p.procedures {
        out.extend(
            p.stmts_in(&proc.body)
                .into_iter()
                .filter(|s| p.stmt(*s).kind.is_loop()),
        );
    }
    out
}

#[test]
fn fig1a_consecutively_written_privatization() {
    // The paper's first motivating example: x() is filled by a while
    // loop via p (consecutively written from p = 0), then read as
    // x(1..p). Traditional tests fail (no closed form for p); the CW
    // analysis privatizes x for the outer k loop.
    let src = "program t
         integer i, j, k, n, p, link(100, 10)
         real x(100), y(100), z(10, 100)
         do k = 1, n
           p = 0
           i = link(1, k)
           while (i /= 0)
             p = p + 1
             x(p) = y(i)
             i = link(i, k)
           endwhile
           do j = 1, p
             z(k, j) = x(j)
           enddo
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut pv = Privatizer::new(&ctx, &mut apa);
    let outer = loops_of(&p)[0];
    let x = p.symbols.lookup("x").unwrap();
    let r = pv.analyze_array(outer, x);
    assert!(r.privatizable, "{r:?}");
    assert_eq!(r.evidence, Some(PrivatizeEvidence::ConsecutivelyWritten));
    // Without IAA the same array is not privatizable.
    let mut apa2 = ArrayPropertyAnalysis::new(&ctx);
    let mut pv2 = Privatizer::new(&ctx, &mut apa2);
    pv2.enable_iaa = false;
    let r2 = pv2.analyze_array(outer, x);
    assert!(!r2.privatizable);
}

#[test]
fn fig1b_stack_privatization() {
    let src = "program t
         integer i, j, n, m, p, cond(100)
         real t2(100), work(100)
         do i = 1, n
           p = 0
           do j = 1, m
             p = p + 1
             t2(p) = work(j)
             if (cond(j) > 0) then
               if (p >= 1) then
                 work(j) = t2(p)
                 p = p - 1
               endif
             endif
           enddo
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut pv = Privatizer::new(&ctx, &mut apa);
    let outer = loops_of(&p)[0];
    let t2 = p.symbols.lookup("t2").unwrap();
    let r = pv.analyze_array(outer, t2);
    assert!(r.privatizable, "{r:?}");
    assert_eq!(r.evidence, Some(PrivatizeEvidence::Stack));
}

#[test]
fn fig1c_indirect_read_with_bounds() {
    // x(1..m) is written, then read through pos(k) with pos values in
    // [1, m] (set up by an index-gathering loop); x privatizes for the
    // outer i loop.
    let src = "program t
         integer i, j, k, n, m, q, pos(100)
         real x(100), y(100), z(100, 100), w(100)
         m = 50
         q = 0
         do j = 1, m
           if (w(j) > 0) then
             q = q + 1
             pos(q) = j
           endif
         enddo
         do i = 1, n
           do j = 1, m
             x(j) = y(i) + j
           enddo
           do k = 1, q
             z(i, k) = x(pos(k))
           enddo
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut pv = Privatizer::new(&ctx, &mut apa);
    let outer = loops_of(&p).into_iter().nth(1).unwrap(); // the i loop (after the gather loop)
    let x = p.symbols.lookup("x").unwrap();
    let r = pv.analyze_array(outer, x);
    assert!(r.privatizable, "{r:?}");
    assert_eq!(r.evidence, Some(PrivatizeEvidence::IndirectBounded));
    let pos = p.symbols.lookup("pos").unwrap();
    assert!(r
        .properties_used
        .iter()
        .any(|(a, t)| *a == pos && *t == "CFB"));
    // Without IAA: not privatizable.
    let mut apa2 = ArrayPropertyAnalysis::new(&ctx);
    let mut pv2 = Privatizer::new(&ctx, &mut apa2);
    pv2.enable_iaa = false;
    assert!(!pv2.analyze_array(outer, x).privatizable);
}

#[test]
fn regular_write_before_read() {
    let src = "program t
         integer i, j, n, m
         real x(100), z(100, 100)
         do i = 1, n
           do j = 1, m
             x(j) = i + j
           enddo
           do j = 1, m
             z(i, j) = x(j) * 2
           enddo
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut pv = Privatizer::new(&ctx, &mut apa);
    let outer = loops_of(&p)[0];
    let x = p.symbols.lookup("x").unwrap();
    let r = pv.analyze_array(outer, x);
    assert!(r.privatizable, "{r:?}");
    assert_eq!(r.evidence, Some(PrivatizeEvidence::Regular));
}

#[test]
fn read_beyond_written_region_fails() {
    let src = "program t
         integer i, j, n, m
         real x(100), z(100, 100)
         do i = 1, n
           do j = 1, m
             x(j) = i + j
           enddo
           do j = 1, m
             z(i, j) = x(j + 1)
           enddo
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut pv = Privatizer::new(&ctx, &mut apa);
    let outer = loops_of(&p)[0];
    let x = p.symbols.lookup("x").unwrap();
    assert!(!pv.analyze_array(outer, x).privatizable);
}

#[test]
fn conditional_write_fails_but_both_arms_ok() {
    // Write under a condition: not a MUST write.
    let src = "program t
         integer i, n, c
         real x(100), z(100)
         do i = 1, n
           if (c > 0) then
             x(1) = 1
           endif
           z(i) = x(1)
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut pv = Privatizer::new(&ctx, &mut apa);
    let outer = loops_of(&p)[0];
    let x = p.symbols.lookup("x").unwrap();
    assert!(!pv.analyze_array(outer, x).privatizable);
    // Writing in both arms is a MUST write.
    let src2 = src.replace(
        "if (c > 0) then\n             x(1) = 1\n           endif",
        "if (c > 0) then\n             x(1) = 1\n           else\n             x(1) = 2\n           endif",
    );
    let p2 = parse_program(&src2).unwrap();
    let ctx2 = AnalysisCtx::new(&p2);
    let mut apa2 = ArrayPropertyAnalysis::new(&ctx2);
    let mut pv2 = Privatizer::new(&ctx2, &mut apa2);
    let outer2 = loops_of(&p2)[0];
    let x2 = p2.symbols.lookup("x").unwrap();
    let r2 = pv2.analyze_array(outer2, x2);
    assert!(r2.privatizable, "{r2:?}");
}

#[test]
fn unbounded_indirect_read_fails() {
    // pos has no provable bounds: the CFB query fails.
    let src = "program t
         integer i, j, k, n, m, q, pos(100)
         real x(100), y(100), z(100, 100)
         do i = 1, n
           do j = 1, m
             x(j) = y(i) + j
           enddo
           do k = 1, q
             z(i, k) = x(pos(k))
           enddo
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut pv = Privatizer::new(&ctx, &mut apa);
    let outer = loops_of(&p)[0];
    let x = p.symbols.lookup("x").unwrap();
    assert!(!pv.analyze_array(outer, x).privatizable);
}

#[test]
fn read_inside_cw_while_loop_blocks_cw_shortcut() {
    // Like Fig. 1(a) but the while loop also reads x(p) before writing:
    // the CW shortcut must not claim coverage.
    let src = "program t
         integer i, k, n, p, link(100, 10)
         real x(100), y(100), z(10, 100)
         do k = 1, n
           p = 0
           i = link(1, k)
           while (i /= 0)
             p = p + 1
             y(i) = x(p)
             x(p) = y(i)
             i = link(i, k)
           endwhile
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut pv = Privatizer::new(&ctx, &mut apa);
    let outer = loops_of(&p)[0];
    let x = p.symbols.lookup("x").unwrap();
    assert!(!pv.analyze_array(outer, x).privatizable);
}

#[test]
fn two_dimensional_scratch_array() {
    // A 2-D per-iteration workspace: wk(j, c) filled for all j and both
    // columns, then read back — privatizable with multi-dim sections.
    let src = "program t
         integer i, j, n, m
         real wk(16, 2), z(100)
         n = 50
         m = 16
         do i = 1, n
           do j = 1, m
             wk(j, 1) = i + j
             wk(j, 2) = i - j
           enddo
           do j = 1, m
             z(i) = z(i) + wk(j, 1) * wk(j, 2)
           enddo
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut pv = Privatizer::new(&ctx, &mut apa);
    let outer = loops_of(&p)[0];
    let wk = p.symbols.lookup("wk").unwrap();
    let r = pv.analyze_array(outer, wk);
    assert!(r.privatizable, "{r:?}");
    assert_eq!(r.evidence, Some(PrivatizeEvidence::Regular));
}

#[test]
fn two_dimensional_partial_fill_fails() {
    // Only column 1 is filled; reading column 2 is upward-exposed.
    let src = "program t
         integer i, j, n, m
         real wk(16, 2), z(100)
         n = 50
         m = 16
         do i = 1, n
           do j = 1, m
             wk(j, 1) = i + j
           enddo
           do j = 1, m
             z(i) = z(i) + wk(j, 2)
           enddo
         enddo
         end";
    let p = parse_program(src).unwrap();
    let ctx = AnalysisCtx::new(&p);
    let mut apa = ArrayPropertyAnalysis::new(&ctx);
    let mut pv = Privatizer::new(&ctx, &mut apa);
    let outer = loops_of(&p)[0];
    let wk = p.symbols.lookup("wk").unwrap();
    assert!(!pv.analyze_array(outer, wk).privatizable);
}
