//! Array privatization extended for irregular accesses (§5.1.4).
//!
//! The Polaris criterion: an array can be privatized for a loop if its
//! per-iteration *upward-exposed read set* is empty — within any one
//! iteration, every element read was written earlier in the same
//! iteration. The paper's §5.1.4 extensions, all implemented here:
//!
//! - **consecutively-written** arrays (§2.2) contribute the MUST write
//!   section `[p_entry+1 : p_exit]` even though `p` has no closed form
//!   (the Fig. 1(a) motivating example);
//! - **array stacks** (§2.3) are privatizable outright when the stack
//!   pointer resets each iteration (Fig. 1(b), TREE);
//! - **indirect reads** `x(pos(k))` are covered by querying a
//!   closed-form bound of `pos` against the already-written section
//!   (Fig. 1(c), BDNA, P3M).
//!
//! The scan walks one iteration of the loop body in program order,
//! carrying a MUST-written section `W` and a symbolic valuation of
//! scalars in a private *value space*: the value of scalar `v` at the
//! iteration entry is the symbol `entry(v)`, values computed during the
//! scan are expressions over entry symbols, and unknowable values get
//! fresh opaque symbols. This is what connects `p = 0; while ...
//! p = p + 1 ...; do j = 1, p` — the write section `[1 : phi]` and the
//! read bound `phi` meet in the same symbol.

use irr_core::property::ArrayPropertyAnalysis;
use irr_core::{consecutively_written, stack_access, AnalysisCtx, Property, PropertyQuery};
use irr_frontend::visit::for_each_subexpr;
use irr_frontend::{Expr, LValue, StmtId, StmtKind, VarId};
use irr_symbolic::{expr_to_sym, AggMode, Atom, Bound, RangeEnv, Section, SymExpr};
use std::collections::HashMap;

/// How privatizability was established.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrivatizeEvidence {
    /// Plain writes-cover-reads with regular sections.
    Regular,
    /// The consecutively-written analysis supplied the write section.
    ConsecutivelyWritten,
    /// The array is a per-iteration stack.
    Stack,
    /// A closed-form bound query covered the indirect reads.
    IndirectBounded,
}

impl PrivatizeEvidence {
    /// Table 3-style tag.
    pub fn tag(self) -> &'static str {
        match self {
            PrivatizeEvidence::Regular => "REG",
            PrivatizeEvidence::ConsecutivelyWritten => "CW",
            PrivatizeEvidence::Stack => "STACK",
            PrivatizeEvidence::IndirectBounded => "CFB",
        }
    }
}

/// Result for one array in one loop.
#[derive(Clone, Debug)]
pub struct PrivatizationResult {
    /// The array.
    pub array: VarId,
    /// Whether each iteration's reads are covered by its earlier writes.
    pub privatizable: bool,
    /// What made it work.
    pub evidence: Option<PrivatizeEvidence>,
    /// `(index array, property tag)` pairs verified on the way.
    pub properties_used: Vec<(VarId, &'static str)>,
}

/// Base for iteration-entry value symbols.
const ENTRY_BASE: u32 = u32::MAX / 4;
/// Base for fresh opaque value symbols minted during the scan.
const FRESH_BASE: u32 = u32::MAX / 2;

fn entry_sym(v: VarId) -> SymExpr {
    SymExpr::var(VarId(ENTRY_BASE + v.0))
}

fn is_value_space_var(v: VarId) -> bool {
    v.0 >= ENTRY_BASE
}

/// The privatization analyzer.
pub struct Privatizer<'a, 'c, 'p> {
    ctx: &'c AnalysisCtx<'p>,
    apa: &'a mut ArrayPropertyAnalysis<'c, 'p>,
    /// When false, the §2/§3 extensions are disabled (the "without IAA"
    /// configuration).
    pub enable_iaa: bool,
    fresh_counter: u32,
    /// The loop being privatized for.
    target: StmtId,
}

#[derive(Clone)]
struct Scan {
    /// MUST-written section so far in this iteration (value space).
    w: Section,
    /// Scalar valuation: program var -> value-space expression. Absent
    /// means "still the entry value".
    vals: HashMap<VarId, SymExpr>,
    /// Reverse map: fresh symbol -> the program variable whose current
    /// value it names (used to express query bounds in program terms).
    fresh_names: HashMap<VarId, VarId>,
    used_cw: bool,
    used_indirect: bool,
    properties: Vec<(VarId, &'static str)>,
}

impl Scan {
    fn new() -> Scan {
        Scan {
            w: Section::Empty,
            vals: HashMap::new(),
            fresh_names: HashMap::new(),
            used_cw: false,
            used_indirect: false,
            properties: Vec::new(),
        }
    }
}

impl<'a, 'c, 'p> Privatizer<'a, 'c, 'p> {
    /// Creates a privatizer.
    pub fn new(
        ctx: &'c AnalysisCtx<'p>,
        apa: &'a mut ArrayPropertyAnalysis<'c, 'p>,
    ) -> Privatizer<'a, 'c, 'p> {
        Privatizer {
            ctx,
            apa,
            enable_iaa: true,
            fresh_counter: 0,
            target: StmtId(0),
        }
    }

    fn fresh(&mut self) -> SymExpr {
        self.fresh_counter += 1;
        SymExpr::var(VarId(FRESH_BASE + self.fresh_counter))
    }

    /// Gives `v` a fresh unknown value and records that the fresh symbol
    /// names `v`'s current value.
    fn freshen(&mut self, scan: &mut Scan, v: VarId) -> SymExpr {
        let f = self.fresh();
        if let Some(fv) = f.as_var() {
            scan.fresh_names.insert(fv, v);
        }
        scan.vals.insert(v, f.clone());
        f
    }

    /// Analyzes every array written in the loop.
    pub fn analyze_loop(&mut self, loop_stmt: StmtId) -> Vec<PrivatizationResult> {
        let body: Vec<StmtId> = match &self.ctx.program.stmt(loop_stmt).kind {
            StmtKind::Do { body, .. } | StmtKind::While { body, .. } => body.clone(),
            _ => return Vec::new(),
        };
        irr_frontend::visit::arrays_written_in(self.ctx.program, &body)
            .into_iter()
            .map(|a| self.analyze_array(loop_stmt, a))
            .collect()
    }

    /// Analyzes one array for privatization in `loop_stmt`.
    pub fn analyze_array(&mut self, loop_stmt: StmtId, array: VarId) -> PrivatizationResult {
        self.target = loop_stmt;
        let mut result = PrivatizationResult {
            array,
            privatizable: false,
            evidence: None,
            properties_used: Vec::new(),
        };
        let body: Vec<StmtId> = match &self.ctx.program.stmt(loop_stmt).kind {
            StmtKind::Do { body, .. } | StmtKind::While { body, .. } => body.clone(),
            _ => return result,
        };
        // Stack shortcut (§2.3).
        if self.enable_iaa {
            for si in irr_core::single_indexed_arrays(self.ctx, loop_stmt) {
                if si.array == array {
                    if let Some(st) = stack_access(self.ctx, loop_stmt, array, si.index) {
                        if st.resets_each_iteration {
                            result.privatizable = true;
                            result.evidence = Some(PrivatizeEvidence::Stack);
                            return result;
                        }
                    }
                }
            }
        }
        let mut scan = Scan::new();
        let env = self.ctx.range_env_at(loop_stmt);
        let ok = self.scan_body(&body, array, &mut scan, &env);
        result.properties_used = scan.properties.clone();
        if ok {
            result.privatizable = true;
            result.evidence = Some(if scan.used_cw {
                PrivatizeEvidence::ConsecutivelyWritten
            } else if scan.used_indirect {
                PrivatizeEvidence::IndirectBounded
            } else {
                PrivatizeEvidence::Regular
            });
        }
        result
    }

    /// Whether `array` is read anywhere inside `body` (transitively).
    fn array_read_inside(&self, body: &[StmtId], array: VarId) -> bool {
        let program = self.ctx.program;
        let mut found = false;
        for t in program.stmts_in(body) {
            irr_frontend::visit::for_each_expr_in_stmt(program, t, |e| {
                for_each_subexpr(e, &mut |sub| {
                    if matches!(sub, Expr::Element(a, _) if *a == array) {
                        found = true;
                    }
                });
            });
        }
        found
    }

    /// The CW index variable when `array` is consecutively written in
    /// the loop `s`.
    fn cw_index_of(&self, s: StmtId, array: VarId) -> Option<VarId> {
        for si in irr_core::single_indexed_arrays(self.ctx, s) {
            if si.array == array && consecutively_written(self.ctx, s, array, si.index).is_some() {
                return Some(si.index);
            }
        }
        None
    }

    // ----- value space -----------------------------------------------------

    /// Converts a program expression to the scan's value space.
    fn to_value(&self, e: &Expr, scan: &Scan) -> Option<SymExpr> {
        let sym = expr_to_sym(e)?;
        Some(self.sym_to_value(&sym, scan))
    }

    /// Converts a symbolic program expression to value space.
    fn sym_to_value(&self, sym: &SymExpr, scan: &Scan) -> SymExpr {
        let mut out = sym.clone();
        // Collect the program vars mentioned (< ENTRY_BASE).
        let mut vars: Vec<VarId> = Vec::new();
        collect_program_vars(&out, &mut vars);
        for v in vars {
            let replacement = scan.vals.get(&v).cloned().unwrap_or_else(|| entry_sym(v));
            out = out.subst(v, &replacement);
        }
        out
    }

    /// Converts a value-space expression back to a program expression,
    /// valid at a point where none of its entry symbols' variables have
    /// been reassigned. `None` when fresh symbols or reassigned entries
    /// appear.
    fn value_to_program(&self, sym: &SymExpr, scan: &Scan) -> Option<SymExpr> {
        let mut out = sym.clone();
        let mut vars: Vec<VarId> = Vec::new();
        collect_all_vars(&out, &mut vars);
        for w in vars {
            if w.0 >= FRESH_BASE {
                // A fresh symbol can be written back as its variable if
                // that variable still holds exactly this fresh value.
                let &orig = scan.fresh_names.get(&w)?;
                if scan.vals.get(&orig) != Some(&SymExpr::var(w)) {
                    return None;
                }
                out = out.subst(w, &SymExpr::var(orig));
            } else if w.0 >= ENTRY_BASE {
                let orig = VarId(w.0 - ENTRY_BASE);
                if scan.vals.contains_key(&orig) {
                    return None; // entry value no longer current
                }
                out = out.subst(w, &SymExpr::var(orig));
            }
        }
        Some(out)
    }

    // ----- the scan ---------------------------------------------------------

    fn scan_body(
        &mut self,
        body: &[StmtId],
        array: VarId,
        scan: &mut Scan,
        env: &RangeEnv,
    ) -> bool {
        for &s in body {
            if !self.scan_stmt(s, array, scan, env) {
                return false;
            }
        }
        true
    }

    /// All reads of `array` in the statement's own expressions, as full
    /// subscript lists.
    fn reads_of(&self, s: StmtId, array: VarId) -> Vec<Vec<Expr>> {
        let mut reads = Vec::new();
        irr_frontend::visit::for_each_expr_in_stmt(self.ctx.program, s, |e| {
            for_each_subexpr(e, &mut |sub| {
                if let Expr::Element(a, subs) = sub {
                    if *a == array {
                        reads.push(subs.clone());
                    }
                }
            });
        });
        reads
    }

    fn check_reads(&mut self, s: StmtId, array: VarId, scan: &mut Scan, env: &RangeEnv) -> bool {
        for subs in self.reads_of(s, array) {
            if !self.read_covered(s, &subs, scan, env) {
                return false;
            }
        }
        true
    }

    /// Checks that reading `array(subs...)` at `stmt` is covered by `W`.
    fn read_covered(
        &mut self,
        stmt: StmtId,
        subs: &[Expr],
        scan: &mut Scan,
        env: &RangeEnv,
    ) -> bool {
        let vals: Option<Vec<SymExpr>> = subs.iter().map(|e| self.to_value(e, scan)).collect();
        let Some(vals) = vals else {
            return false;
        };
        // Aggregate over the do-loop variables between `stmt` and the
        // target loop (the read happens for every inner iteration).
        let mut read = Section::point(vals);
        for &inner in self.ctx.enclosing_loops(stmt) {
            if inner == self.target {
                break;
            }
            let Some((ivar, ilo, ihi)) = self.ctx.do_bounds_sym(inner) else {
                return false; // inner while loop: unbounded reads
            };
            if read.mentions_var(ivar) {
                let (ilo, ihi) = (self.sym_to_value(&ilo, scan), self.sym_to_value(&ihi, scan));
                read = read.aggregate(ivar, &ilo, &ihi, env, AggMode::May);
            }
        }
        if scan.w.provably_contains(&read, env) {
            return true;
        }
        // Indirect read x(pos(k)) against W = [wl : wh] via a CFB query.
        if !self.enable_iaa {
            return false;
        }
        let Section::Dims(wdims) = &scan.w else {
            return false;
        };
        if wdims.len() != 1 {
            return false;
        }
        let (Bound::Finite(wl), Bound::Finite(wh)) = (&wdims[0].lo, &wdims[0].hi) else {
            return false;
        };
        let (Some(wl_prog), Some(wh_prog)) = (
            self.value_to_program(wl, scan),
            self.value_to_program(wh, scan),
        ) else {
            return false;
        };
        // The read must be exactly one index-array element pos(inner).
        if subs.len() != 1 {
            return false;
        }
        let Expr::Element(pos, inner_subs) = &subs[0] else {
            return false;
        };
        if inner_subs.len() != 1 {
            return false;
        }
        // The section of pos actually dereferenced (hull over inner
        // loops), in *program* space for the query.
        let Some(inner_val) = self.to_value(&inner_subs[0], scan) else {
            return false;
        };
        let mut pos_sec = Section::point(vec![inner_val]);
        for &l in self.ctx.enclosing_loops(stmt) {
            if l == self.target {
                break;
            }
            let Some((ivar, ilo, ihi)) = self.ctx.do_bounds_sym(l) else {
                return false;
            };
            if pos_sec.mentions_var(ivar) {
                let (ilo, ihi) = (self.sym_to_value(&ilo, scan), self.sym_to_value(&ihi, scan));
                pos_sec = pos_sec.aggregate(ivar, &ilo, &ihi, env, AggMode::May);
            }
        }
        let pos_sec_prog = match &pos_sec {
            Section::Dims(d) if d.len() == 1 => {
                let (Bound::Finite(l), Bound::Finite(h)) = (&d[0].lo, &d[0].hi) else {
                    return false;
                };
                let (Some(l), Some(h)) = (
                    self.value_to_program(l, scan),
                    self.value_to_program(h, scan),
                ) else {
                    return false;
                };
                Section::range1(l, h)
            }
            _ => return false,
        };
        // Query at the *reading* statement: the index array may have
        // been defined earlier in the same iteration (BDNA's gather
        // inside the privatized loop) or before the loop (Fig. 1(c)).
        let q = PropertyQuery {
            array: *pos,
            property: Property::ClosedFormBound {
                lo: Some(wl_prog),
                hi: Some(wh_prog),
            },
            section: pos_sec_prog,
            at_stmt: stmt,
        };
        if self.apa.check(&q) {
            scan.used_indirect = true;
            scan.properties.push((*pos, "CFB"));
            true
        } else {
            false
        }
    }

    fn scan_stmt(&mut self, s: StmtId, array: VarId, scan: &mut Scan, env: &RangeEnv) -> bool {
        let program = self.ctx.program;
        match program.stmt(s).kind.clone() {
            StmtKind::Assign { lhs, rhs } => {
                if !self.check_reads(s, array, scan, env) {
                    return false;
                }
                match lhs {
                    LValue::Scalar(v) => match self.to_value(&rhs, scan) {
                        Some(val) => {
                            scan.vals.insert(v, val);
                        }
                        None => {
                            self.freshen(scan, v);
                        }
                    },
                    LValue::Element(a, subs) => {
                        if a == array {
                            let vals: Option<Vec<SymExpr>> =
                                subs.iter().map(|e| self.to_value(e, scan)).collect();
                            if let Some(vals) = vals {
                                let pt = Section::point(vals);
                                scan.w = scan.w.union_must(&pt, env);
                            }
                        }
                    }
                }
                true
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                if !self.check_reads(s, array, scan, env) {
                    return false;
                }
                let mut scan_t = scan.clone();
                let mut scan_e = scan.clone();
                if !self.scan_body(&then_body, array, &mut scan_t, env)
                    || !self.scan_body(&else_body, array, &mut scan_e, env)
                {
                    return false;
                }
                scan.w = scan_t.w.intersect_must(&scan_e.w, env);
                let mut merged = HashMap::new();
                for (v, val) in &scan_t.vals {
                    if scan_e.vals.get(v) == Some(val) {
                        merged.insert(*v, val.clone());
                    }
                }
                scan.fresh_names.extend(scan_t.fresh_names.clone());
                scan.fresh_names.extend(scan_e.fresh_names.clone());
                let to_freshen: Vec<VarId> = scan_t
                    .vals
                    .keys()
                    .chain(scan_e.vals.keys())
                    .copied()
                    .filter(|v| !merged.contains_key(v))
                    .collect();
                scan.vals = merged;
                for v in to_freshen {
                    self.freshen(scan, v);
                }
                scan.used_cw = scan_t.used_cw || scan_e.used_cw;
                scan.used_indirect = scan_t.used_indirect || scan_e.used_indirect;
                scan.properties = scan_t.properties;
                scan.properties.extend(scan_e.properties);
                true
            }
            StmtKind::Do {
                var, lo, hi, body, ..
            } => {
                if !self.check_reads(s, array, scan, env) {
                    return false;
                }
                // A consecutively-written inner do loop (e.g. an index
                // gathering loop) contributes the section
                // [p_entry+1 : p_exit] just like the while-loop case.
                if self.enable_iaa && !self.array_read_inside(&body, array) {
                    if let Some(cw_index) = self.cw_index_of(s, array) {
                        let p_entry = scan
                            .vals
                            .get(&cw_index)
                            .cloned()
                            .unwrap_or_else(|| entry_sym(cw_index));
                        let p_exit = self.fresh();
                        if let Some(fv) = p_exit.as_var() {
                            scan.fresh_names.insert(fv, cw_index);
                        }
                        let delta = Section::range1(p_entry.add(&SymExpr::int(1)), p_exit.clone());
                        scan.w = delta.union_must(&scan.w, env);
                        scan.used_cw = true;
                        for v in irr_frontend::visit::scalars_assigned_in(program, &body) {
                            if v == cw_index {
                                continue;
                            }
                            self.freshen(scan, v);
                        }
                        scan.vals.insert(cw_index, p_exit);
                        self.freshen(scan, var);
                        return true;
                    }
                }
                let lo_v = self.to_value(&lo, scan);
                let hi_v = self.to_value(&hi, scan);
                let mut inner = scan.clone();
                // Scalars carried across the inner loop's iterations have
                // unknown values at a generic iteration's entry — the
                // outer valuation is only valid for iteration 1.
                for v in irr_frontend::visit::scalars_assigned_in(program, &body) {
                    if v != var {
                        self.freshen(&mut inner, v);
                    }
                }
                // Inside, the loop var stands for itself (its range is
                // known), not for an entry value.
                inner.vals.insert(var, SymExpr::var(var));
                let mut env_inner = env.clone();
                if let (Some(l), Some(h)) = (&lo_v, &hi_v) {
                    env_inner.set_var_range(var, l.clone(), h.clone());
                }
                if !self.scan_body(&body, array, &mut inner, &env_inner) {
                    return false;
                }
                // MUST-aggregate the writes over the loop range and keep
                // the pre-existing W.
                if let (Some(l), Some(h)) = (lo_v, hi_v) {
                    let agg = inner.w.aggregate(var, &l, &h, env, AggMode::Must);
                    scan.w = agg.union_must(&scan.w, env);
                }
                for v in irr_frontend::visit::scalars_assigned_in(program, &body) {
                    self.freshen(scan, v);
                }
                self.freshen(scan, var);
                scan.used_cw |= inner.used_cw;
                scan.used_indirect |= inner.used_indirect;
                scan.properties.extend(inner.properties);
                true
            }
            StmtKind::While { body, .. } => {
                if !self.check_reads(s, array, scan, env) {
                    return false;
                }
                // Consecutively-written while loop (Fig. 1(a)): the
                // writes cover [p_entry+1 : p_exit]. Only usable when
                // the array is not read inside the loop (a read could
                // precede the covering write).
                let array_read_inside = {
                    let mut found = false;
                    for t in program.stmts_in(&body) {
                        irr_frontend::visit::for_each_expr_in_stmt(program, t, |e| {
                            for_each_subexpr(e, &mut |sub| {
                                if matches!(sub, Expr::Element(a, _) if *a == array) {
                                    found = true;
                                }
                            });
                        });
                    }
                    found
                };
                let mut handled_index: Option<VarId> = None;
                if self.enable_iaa && !array_read_inside {
                    for si in irr_core::single_indexed_arrays(self.ctx, s) {
                        if si.array == array
                            && consecutively_written(self.ctx, s, array, si.index).is_some()
                        {
                            let p_entry = scan
                                .vals
                                .get(&si.index)
                                .cloned()
                                .unwrap_or_else(|| entry_sym(si.index));
                            let p_exit = self.fresh();
                            if let Some(fv) = p_exit.as_var() {
                                scan.fresh_names.insert(fv, si.index);
                            }
                            let delta =
                                Section::range1(p_entry.add(&SymExpr::int(1)), p_exit.clone());
                            scan.w = delta.union_must(&scan.w, env);
                            scan.vals.insert(si.index, p_exit);
                            scan.used_cw = true;
                            handled_index = Some(si.index);
                            break;
                        }
                    }
                }
                if handled_index.is_none() {
                    // Reads inside must be covered by the pre-loop W;
                    // writes contribute nothing (zero-trip possible).
                    // Iteration-carried scalars are unknown at a generic
                    // iteration entry.
                    let mut inner = scan.clone();
                    for v in irr_frontend::visit::scalars_assigned_in(program, &body) {
                        self.freshen(&mut inner, v);
                    }
                    if !self.scan_body(&body, array, &mut inner, env) {
                        return false;
                    }
                    scan.properties.extend(inner.properties);
                }
                for v in irr_frontend::visit::scalars_assigned_in(program, &body) {
                    if Some(v) == handled_index {
                        continue; // already given its exit symbol
                    }
                    self.freshen(scan, v);
                }
                true
            }
            StmtKind::Call { proc } => {
                let pbody = program.procedures[proc.index()].body.clone();
                let writes_it =
                    irr_frontend::visit::arrays_written_in(program, &pbody).contains(&array);
                let mut reads_it = false;
                for t in program.stmts_in(&pbody) {
                    irr_frontend::visit::for_each_expr_in_stmt(program, t, |e| {
                        if e.mentions(array) {
                            reads_it = true;
                        }
                    });
                }
                if writes_it || reads_it {
                    return false;
                }
                for v in irr_frontend::visit::scalars_assigned_in(program, &pbody) {
                    self.freshen(scan, v);
                }
                true
            }
            StmtKind::Print { .. } | StmtKind::Return => self.check_reads(s, array, scan, env),
        }
    }
}

fn collect_program_vars(e: &SymExpr, out: &mut Vec<VarId>) {
    for a in e.atoms() {
        match a {
            Atom::Var(v) => {
                if !is_value_space_var(*v) && !out.contains(v) {
                    out.push(*v);
                }
            }
            Atom::Elem(_, subs) => {
                for s in subs {
                    collect_program_vars(s, out);
                }
            }
            Atom::Opaque(_, args) => {
                for s in args {
                    collect_program_vars(s, out);
                }
            }
        }
    }
}

fn collect_all_vars(e: &SymExpr, out: &mut Vec<VarId>) {
    for a in e.atoms() {
        match a {
            Atom::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Atom::Elem(_, subs) => {
                for s in subs {
                    collect_all_vars(s, out);
                }
            }
            Atom::Opaque(_, args) => {
                for s in args {
                    collect_all_vars(s, out);
                }
            }
        }
    }
}

// Whole-program tests live in `tests/privatize.rs`.
