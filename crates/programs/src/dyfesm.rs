//! DYFESM kernel (Perfect Benchmarks): explicit finite-element dynamics.
//!
//! The irregular loops are the segment sweeps of `SOLXDD` (Fig. 13's
//! source) and `HOP/do20`: arrays are stored in CCS-style segments
//! addressed through the offset array `pptr` with lengths `iblen`, so
//! every sweep needs the offset–length test (closed-form distance of
//! `pptr` = `iblen`, `iblen >= 0`).
//!
//! The input is deliberately tiny (the paper used "a tiny input data
//! set" and the program *slowed down* when parallelized on the Origin —
//! Fig. 16(e) — but gained 1.6x on the cheap-fork Challenge,
//! Fig. 16(f)): each parallel region has only `nblk` = 8 iterations and
//! the loops are invoked once per time step.

use crate::{Benchmark, Scale};

/// Builds the DYFESM kernel at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    // nblk: number of segments (region iteration count — tiny!);
    // steps: time steps; ser: serial relaxation length per step.
    let (nblk, steps, ser, upd) = match scale {
        Scale::Test => (8, 4, 120, 300),
        Scale::Paper => (16, 300, 500, 1700),
    };
    let sz = nblk * 8 + 1;
    let source = format!(
        "program dyfesm
  integer i, j, it, nblk, nstep, pptr({nb1}), iblen({nblk}), nser
  real xdd({sz}), zd({sz}), r({sz}), y({sz}), xdplus({sz}), xplus({sz}), xd({sz})
  real serial({ser}), u({upd}), total
  integer nupd
  nblk = {nblk}
  nstep = {steps}
  nser = {ser}
  nupd = {upd}
  call setup
  do 1 it = 1, nstep
    call solxdd
    call hop
    call update
    call relax
 1 continue
  call chksum
end

subroutine setup
  integer i2
  do i2 = 1, nblk
    iblen(i2) = mod(i2 * 3, 7) + 2
  enddo
  pptr(1) = 1
  do i2 = 1, nblk
    pptr(i2 + 1) = pptr(i2) + iblen(i2)
  enddo
  do i2 = 1, {sz}
    r(i2) = mod(i2 * 11, 17) * 0.1
    y(i2) = mod(i2 * 5, 13) * 0.2
    xd(i2) = 0.5
    xplus(i2) = 0.25
  enddo
  serial(1) = 1.0
end

subroutine solxdd
  do 4 i = 1, nblk
    do j = 1, iblen(i)
      xdd(pptr(i) + j - 1) = r(pptr(i) + j - 1) * 0.9 + 0.1
    enddo
 4 continue
  do 10 i = 1, nblk
    do j = 1, iblen(i)
      y(pptr(i) + j - 1) = y(pptr(i) + j - 1) * 0.99 + xdd(pptr(i) + j - 1) * 0.01
    enddo
 10 continue
  do 30 i = 1, nblk
    do j = 1, iblen(i)
      zd(pptr(i) + j - 1) = xdd(pptr(i) + j - 1) + y(pptr(i) + j - 1)
    enddo
 30 continue
  do 50 i = 1, nblk
    do j = 1, iblen(i)
      xdd(pptr(i) + j - 1) = xdd(pptr(i) + j - 1) + zd(pptr(i) + j - 1) * 0.5
    enddo
 50 continue
end

subroutine hop
  do 20 i = 1, nblk
    do j = 1, iblen(i)
      xdplus(pptr(i) + j - 1) = xplus(pptr(i) + j - 1) + xd(pptr(i) + j - 1) * 0.1
    enddo
 20 continue
end

subroutine update
  ! the conventional-parallel part of each time step
  do i = 1, nupd
    u(i) = u(i) * 0.9 + 0.1
  enddo
end

subroutine relax
  integer k2
  do k2 = 2, nser
    serial(k2) = serial(k2 - 1) * 0.5 + serial(k2) * 0.5 + 0.001
  enddo
end

subroutine chksum
  integer i4
  total = 0.0
  do i4 = 1, {sz}
    total = total + xdd(i4) + zd(i4) + xdplus(i4)
  enddo
  total = total + serial(nser) + u(nupd)
  print total
end
",
        nb1 = nblk + 1,
    );
    Benchmark {
        name: "DYFESM",
        source,
        irregular_labels: vec![
            "SOLXDD/do4",
            "SOLXDD/do10",
            "SOLXDD/do30",
            "SOLXDD/do50",
            "HOP/do20",
        ],
        paper_coverage: 0.20,
    }
}
