//! SplitMix64-randomized loop programs for the differential parity
//! gates (the strategy-parity suite and `sanitizer-audit --compiled`).
//!
//! Each program is a straight-line prologue that fills the inputs
//! (including an injective gather index), followed by a labeled loop
//! whose body is assembled from templates spanning the bytecode
//! lowering's superinstructions: affine store, gather load, scatter
//! through an index array, scalar accumulate, append-through-pointer,
//! and inner `do`/`if` shapes. All subscripts are bounded by
//! construction, so every generated program runs error-free and
//! differential comparisons are exact.

use irr_exec::SplitMix64;

/// Loop-body statement templates. Kept as a named constant so the
/// tests can assert coverage (every template parses and lowers).
const TEMPLATES: [&str; 9] = [
    "y(i) = x(i) * 2.0 + y(i)\n",
    "y(i + 1) = x(i) - 0.25\n",
    "s = s + x(i)\n",
    "z(idx(i)) = x(i)\n",
    "t = x(idx(i))\nz(i) = t * 0.5\n",
    "if (x(i) > 0.5) then\nz(i) = x(i)\nelse\nz(i) = 1.0 - x(i)\nendif\n",
    "do j = 1, 3\ny(i) = y(i) + 0.125\nenddo\n",
    "s = s + min(x(i), z(i)) * max(x(i), 0.1)\n",
    "if (x(i) > 0.25) then\nq = q + 1\nw(q) = x(i)\nendif\n",
];

/// One randomized loop program drawn from `rng`. The same rng state
/// always yields the same source, so seeds name programs durably
/// across the test suite, the audit CLI, and CI.
pub fn random_loop_program(rng: &mut SplitMix64) -> String {
    let n_stmts = 2 + rng.range_i64(0, 2) as usize;
    let mut body = String::new();
    for _ in 0..n_stmts {
        body.push_str(TEMPLATES[rng.range_usize(0, TEMPLATES.len() - 1)]);
    }
    format!(
        "program f
         integer i, j, n, q, idx(64)
         real s, t, x(64), y(65), z(64), w(64)
         n = 64
         s = 0.0
         q = 0
         do i = 1, n
           x(i) = mod(i * 13, 97) * 0.01
           idx(i) = mod(i * 7, 64) + 1
         enddo
         do 20 i = 1, n
{body} 20      continue
         print s, q, y(1), z(5)
         end"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_parses() {
        let (mut a, mut b) = (SplitMix64::new(7), SplitMix64::new(7));
        for _ in 0..8 {
            let (pa, pb) = (random_loop_program(&mut a), random_loop_program(&mut b));
            assert_eq!(pa, pb);
            irr_frontend::parse_program(&pa).expect("generated program parses");
        }
    }

    #[test]
    fn every_template_parses_in_isolation() {
        for t in TEMPLATES {
            let src = format!(
                "program f
                 integer i, j, n, q, idx(64)
                 real s, t, x(64), y(65), z(64), w(64)
                 n = 64
                 do 20 i = 1, n
{t} 20           continue
                 end"
            );
            irr_frontend::parse_program(&src).expect("template parses");
        }
    }
}
