//! TRFD kernel (Perfect Benchmarks): two-electron integral
//! transformation.
//!
//! The irregular loop is `INTGRL/do140`: the triangular index array
//! `ia(i) = i*(i-1)/2` makes the write `xrsiq(ia(i)+j)` irregular;
//! with the closed-form value/distance property the iterations write
//! disjoint segments `[ia(i)+1 : ia(i)+i]`. Per Table 3 this loop is
//! only ~5% of the sequential time — the bulk is the regular
//! transformation sweeps — so parallelizing it moves the 16-processor
//! speedup from ~5 to ~6 (Fig. 16(a)).

use crate::{Benchmark, Scale};

/// Builds the TRFD kernel at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    // m: triangular dimension (do140 costs ~m^2/2);
    // n, reps: regular sweep size (costs ~3*n*reps).
    let (m, n, reps) = match scale {
        Scale::Test => (24, 300, 12),
        Scale::Paper => (800, 25000, 120),
    };
    let mt = m * (m + 1) / 2 + 1;
    let source = format!(
        "program trfd
  integer i, j, k, m, n, nrep, ia({m}), seed
  real v({m}), w({m}), xrsiq({mt}), xij({n}), yij({n}), total
  m = {m}
  n = {n}
  nrep = {reps}
  call setia
  call init
  ! regular transformation sweeps (the ~95% regular part)
  do 100 k = 1, nrep
    do i = 1, n
      xij(i) = yij(i) * 0.5 + xij(i) * 0.25 + 1.0
    enddo
    do i = 1, n
      yij(i) = xij(i) * 0.125 + yij(i) * 0.5
    enddo
 100 continue
  call intgrl
  call chksum
end

subroutine setia
  integer i2
  do i2 = 1, m
    ia(i2) = i2 * (i2 - 1) / 2
  enddo
end

subroutine init
  integer i3
  seed = 12345
  do i3 = 1, m
    seed = mod(seed * 1103 + 12345, 65536)
    v(i3) = seed * 0.0001
    seed = mod(seed * 1103 + 12345, 65536)
    w(i3) = seed * 0.0001
  enddo
  do i3 = 1, n
    yij(i3) = mod(i3 * 7, 13) * 0.125
  enddo
end

subroutine intgrl
  ! the irregular triangular store
  do 140 i = 1, m
    do j = 1, i
      xrsiq(ia(i) + j) = v(i) * w(j) + 0.5
    enddo
 140 continue
end

subroutine chksum
  integer i4
  total = 0.0
  do i4 = 1, n
    total = total + xij(i4) + yij(i4)
  enddo
  do i4 = 1, m
    total = total + xrsiq(ia(i4) + 1)
  enddo
  print total
end
"
    );
    Benchmark {
        name: "TRFD",
        source,
        irregular_labels: vec!["INTGRL/do140"],
        paper_coverage: 0.05,
    }
}
