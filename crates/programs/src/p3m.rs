//! P3M kernel (NCSA): particle-particle/particle-mesh simulation.
//!
//! The dominant loop is `PP/do100` (74% of sequential time, Table 3):
//! each particle fills a distance scratch `x0` (`PP/do50`), gathers
//! close-neighbor indices into `ind0` via the counter `np0`
//! (`PP/do57`, consecutively written), and accumulates the
//! particle-particle force through `x0(ind0(k))` — privatizable only
//! with the closed-form bound of `ind0` and the CW analysis.

use crate::{Benchmark, Scale};

/// Builds the P3M kernel at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    // np: particles; mc: neighbor candidates; mesh: the small regular
    // particle-mesh part (~26%).
    let (np, mc, mesh, mrep) = match scale {
        Scale::Test => (30, 20, 200, 3),
        Scale::Paper => (700, 150, 13000, 6),
    };
    let source = format!(
        "program p3m
  integer i, j, k, np0, np, mc, nmesh, nrep, ind0({mc})
  real px({np}), acc({np}), x0({mc}), mesh({mesh}), total
  np = {np}
  mc = {mc}
  nmesh = {mesh}
  nrep = {mrep}
  call init
  call pp
  call pm
  call chksum
end

subroutine init
  integer i2
  do i2 = 1, np
    px(i2) = mod(i2 * 17, 31) * 0.04
  enddo
  do i2 = 1, nmesh
    mesh(i2) = mod(i2 * 3, 7) * 0.2
  enddo
end

subroutine pp
  do 100 i = 1, np
    do 50 j = 1, mc
      x0(j) = abs(px(i) - px(j)) + (j - i) * 0.0005
 50 continue
    np0 = 0
    do 57 j = 1, mc
      if (x0(j) < 0.4) then
        np0 = np0 + 1
        ind0(np0) = j
      endif
 57 continue
    do k = 1, np0
      acc(i) = acc(i) + 1.0 / (x0(ind0(k)) + 0.05)
    enddo
 100 continue
end

subroutine pm
  ! the particle-mesh part: regular sweeps
  do 200 k = 1, nrep
    do i = 1, nmesh
      mesh(i) = mesh(i) * 0.9 + 0.1
    enddo
 200 continue
end

subroutine chksum
  integer i4
  total = 0.0
  do i4 = 1, np
    total = total + acc(i4)
  enddo
  do i4 = 1, nmesh
    total = total + mesh(i4)
  enddo
  print total
end
"
    );
    Benchmark {
        name: "P3M",
        source,
        irregular_labels: vec!["PP/do100"],
        paper_coverage: 0.74,
    }
}
