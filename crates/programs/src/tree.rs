//! TREE kernel (University of Hawaii): Barnes–Hut N-body code.
//!
//! `ACCEL/do10` walks the oct-tree for every body using an explicit
//! **array stack** (`stack` indexed by `sptr`): push the root, pop a
//! node, either accumulate a far-field contribution or push the node's
//! children. The stack discipline of Table 1 holds and the pointer
//! resets at the start of each body, so `stack` privatizes and the loop
//! — ~90% of sequential time (Table 3) — parallelizes, giving TREE its
//! near-linear Fig. 16 curve.

use crate::{Benchmark, Scale};

/// Builds the TREE kernel at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    // nbody: bodies; depth: binary-tree depth (nnode = 2^depth - 1).
    let (nbody, depth, io) = match scale {
        Scale::Test => (30, 6, 100),
        Scale::Paper => (1200, 10, 30000),
    };
    let nnode: usize = (1 << depth) - 1;
    let leaf_start = 1 << (depth - 1);
    let source = format!(
        "program tree
  integer i, nbody, nnode, sptr, node, nbot, stack(200), nio
  real pos({nbody}), cpos({nnode}), csize({nnode}), acc({nbody}), iobuf({io}), zerov, total
  nbody = {nbody}
  nnode = {nnode}
  nio = {io}
  call maketree
  call accel
  call outp
  call chksum
end

subroutine maketree
  integer k2
  zerov = 0.0
  do k2 = 1, nbody
    pos(k2) = mod(k2 * 19, 37) * 0.03
  enddo
  ! a complete binary tree: node k has children 2k and 2k+1;
  ! nodes below {leaf} are internal.
  do k2 = 1, nnode
    cpos(k2) = mod(k2 * 23, 41) * 0.027
    csize(k2) = 3.0 / sqrt(k2 + 0.0)
  enddo
end

subroutine accel
  ! the stack bottom comes from runtime data (as in the original code),
  ! so it is a region-invariant symbolic C_bottom
  nbot = int(zerov)
  do 10 i = 1, nbody
    sptr = nbot
    sptr = sptr + 1
    stack(sptr) = 1
    while (sptr >= 1)
      node = stack(sptr)
      sptr = sptr - 1
      if (csize(node) < abs(pos(i) - cpos(node)) * 0.9 + 0.02) then
        ! far enough: accept the cell approximation
        acc(i) = acc(i) + 1.0 / (abs(pos(i) - cpos(node)) + 0.1)
      else
        if (node < {leaf}) then
          sptr = sptr + 1
          stack(sptr) = 2 * node
          sptr = sptr + 1
          stack(sptr) = 2 * node + 1
        else
          acc(i) = acc(i) + 1.0 / (abs(pos(i) - cpos(node)) + 0.1)
        endif
      endif
    endwhile
 10 continue
end

subroutine outp
  ! serial output/bookkeeping part (~10%)
  integer k3
  do k3 = 2, nio
    iobuf(k3) = iobuf(k3 - 1) * 0.5 + 0.25
  enddo
end

subroutine chksum
  integer i4
  total = 0.0
  do i4 = 1, nbody
    total = total + acc(i4)
  enddo
  total = total + iobuf(nio)
  print total
end
",
        leaf = leaf_start,
    );
    Benchmark {
        name: "TREE",
        source,
        irregular_labels: vec!["ACCEL/do10"],
        paper_coverage: 0.90,
    }
}
