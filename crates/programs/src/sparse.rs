//! The sparse kernel library: lowers generated [`SparseMatrix`] data
//! into mini-Fortran programs written in the offset–length
//! `a(ptr(i)+j)` form the driver's irregular analyses target.
//!
//! Each kernel comes with its expected dispatch tier and strategy
//! facts, so the suite doubles as a verdict-stability test: together
//! the nine kernels span all three tiers (compile-time parallel,
//! runtime-guarded, sequential) and all three execution strategies
//! (write-log, in-place disjoint, privatize-and-concat).
//!
//! The index and value arrays are *not* initialized by interpreted
//! loops — at 10M nonzeros that would dominate every run. They are
//! carried as presets: `(array name, data)` pairs the caller injects
//! with `Interp::preset_array` (or `run_hybrid_seeded`) after
//! compiling the source. Presets are pinned — the interpreter skips
//! re-materialization and the audit's randomized fill never touches
//! them — so the compile-time verdicts and the runtime inspections see
//! the same arrays.

use irr_exec::{ArrayData, SplitMix64};
use irr_frontend::{Program, VarId};
use irr_sparse::{
    generate, int_array, random_permutation, random_successors, real_array, Layout, MatrixSpec,
    SparseMatrix, Structure,
};

/// The dispatch tier a kernel's main loop must land on (mirrors the
/// driver's `DispatchTier` without depending on the driver crate).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExpectedTier {
    CompileTimeParallel,
    RuntimeGuarded,
    Sequential,
}

/// One generated sparse kernel: source, presets, and the expected
/// verdict for its main loop.
#[derive(Clone, Debug)]
pub struct SparseProgram {
    /// Kernel name (lower case, stable across sizes).
    pub name: &'static str,
    /// `PROG/doNN` label of the kernel's main loop.
    pub label: String,
    /// Mini-Fortran source.
    pub source: String,
    /// `(array name, data)` presets to inject before running.
    pub presets: Vec<(&'static str, ArrayData)>,
    /// The dispatch tier the driver must assign the main loop.
    pub expected_tier: ExpectedTier,
    /// The strategy facts (`StrategyFacts::name()`) the verdict must
    /// carry: `"none"`, `"disjoint-affine"`, or `"consecutive-append"`.
    pub expected_facts: &'static str,
}

impl SparseProgram {
    /// Resolves the named presets against a compiled program's symbol
    /// table. Panics if a preset array does not survive to the symbol
    /// table (they are all printed or read, so dead-code elimination
    /// never drops them).
    pub fn resolve_presets(&self, program: &Program) -> Vec<(VarId, ArrayData)> {
        self.presets
            .iter()
            .map(|(name, data)| {
                let var = program.symbols.lookup(name).unwrap_or_else(|| {
                    panic!("{}: preset array `{name}` not in symbols", self.name)
                });
                (var, data.clone())
            })
            .collect()
    }
}

/// Workload parameters for one suite instantiation.
#[derive(Clone, Copy, Debug)]
pub struct SparseScale {
    /// Rows (= columns) of the square system.
    pub n: usize,
    /// Nonzeros.
    pub nnz: usize,
    pub structure: Structure,
    pub seed: u64,
}

impl SparseScale {
    /// A small instance for unit tests (fast to interpret).
    pub fn test(structure: Structure, seed: u64) -> SparseScale {
        SparseScale {
            n: 48,
            nnz: 480,
            structure,
            seed,
        }
    }
}

fn crs(scale: &SparseScale) -> SparseMatrix {
    generate(&MatrixSpec::square(
        scale.n,
        scale.nnz,
        scale.structure,
        scale.seed,
    ))
}

fn ccs(scale: &SparseScale) -> SparseMatrix {
    generate(&MatrixSpec {
        rows: scale.n,
        cols: scale.n,
        nnz: scale.nnz,
        structure: scale.structure,
        layout: Layout::Ccs,
        seed: scale.seed.wrapping_add(1),
    })
}

/// Deterministic real vector in `[0.5, 1.5)` for right-hand sides and
/// input vectors.
fn dense_reals(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n.max(1)).map(|_| 0.5 + rng.next_f64()).collect()
}

fn mid(n: usize) -> usize {
    (n / 2).max(1)
}

/// Segment index (1-based) of every nonzero, in storage order: the
/// `rowof`/`colof` preset the producer kernels histogram over. For a
/// CRS matrix the nonzeros are row-sorted, so the prefix sum the
/// program computes over this histogram reproduces `m.ptr` exactly.
fn segment_of(m: &SparseMatrix) -> Vec<i64> {
    let mut out = Vec::with_capacity(m.nnz());
    for (i, &l) in m.len.iter().enumerate() {
        for _ in 0..l {
            out.push((i + 1) as i64);
        }
    }
    out
}

/// All nine kernels at the given scale, in a stable order.
pub fn kernels(scale: &SparseScale) -> Vec<SparseProgram> {
    vec![
        spmv(scale),
        jacobi(scale),
        trisolve(scale),
        lufront(scale),
        colscale(scale),
        chase(scale),
        scale_kernel(scale),
        permute(scale),
        rowgather(scale),
    ]
}

/// The three producer-loop kernels, in a stable order: the same
/// consumers as `lufront`, `colscale`, and `permute`, but the index
/// arrays are built by in-program producer loops instead of arriving
/// as presets. The value-evolution analysis proves offset–length /
/// injectivity at compile time, so the consumer loops promote to
/// `CompileTimeParallel` with their runtime inspections retired.
pub fn producer_kernels(scale: &SparseScale) -> Vec<SparseProgram> {
    vec![
        lufront_producer(scale),
        colscale_producer(scale),
        permute_producer(scale),
    ]
}

/// Sparse matrix–vector product `y = A·x` over CRS: every access to
/// the written array subscripts the outer loop variable directly, so
/// the identity-dimension test proves the loop parallel at compile
/// time; the nested segment loop keeps the strategy on the write-log.
pub fn spmv(scale: &SparseScale) -> SparseProgram {
    let m = crs(scale);
    let (r, e) = (m.segments(), m.nnz().max(1));
    let source = format!(
        "program spmv
  integer i, j, n, rowptr({rp}), rowlen({r}), colidx({e})
  real aval({e}), x({c}), y({r})
  n = {r}
  do 100 i = 1, n
    y(i) = 0.0
    do j = 1, rowlen(i)
      y(i) = y(i) + aval(rowptr(i) + j - 1) * x(colidx(rowptr(i) + j - 1))
    enddo
 100 continue
  print y(1), y({m}), y({r})
end
",
        rp = r + 1,
        c = m.cols,
        m = mid(r),
    );
    SparseProgram {
        name: "spmv",
        label: "SPMV/do100".into(),
        source,
        presets: vec![
            ("rowptr", int_array(&m.ptr)),
            ("rowlen", int_array(&m.len)),
            ("colidx", int_array(&m.idx)),
            ("aval", real_array(&m.val)),
            ("x", real_array(&dense_reals(m.cols, scale.seed ^ 0x51))),
        ],
        expected_tier: ExpectedTier::CompileTimeParallel,
        expected_facts: "none",
    }
}

/// One Jacobi sweep `xnew = (b − A·xold)·dinv` over CRS: compile-time
/// parallel for the same reason as SpMV.
pub fn jacobi(scale: &SparseScale) -> SparseProgram {
    let m = crs(scale);
    let (r, e) = (m.segments(), m.nnz().max(1));
    let source = format!(
        "program jacobi
  integer i, j, n, rowptr({rp}), rowlen({r}), colidx({e})
  real aval({e}), xold({c}), xnew({r}), b({r}), dinv({r})
  n = {r}
  do 200 i = 1, n
    xnew(i) = b(i)
    do j = 1, rowlen(i)
      xnew(i) = xnew(i) - aval(rowptr(i) + j - 1) * xold(colidx(rowptr(i) + j - 1))
    enddo
    xnew(i) = xnew(i) * dinv(i)
 200 continue
  print xnew(1), xnew({m}), xnew({r})
end
",
        rp = r + 1,
        c = m.cols,
        m = mid(r),
    );
    SparseProgram {
        name: "jacobi",
        label: "JACOBI/do200".into(),
        source,
        presets: vec![
            ("rowptr", int_array(&m.ptr)),
            ("rowlen", int_array(&m.len)),
            ("colidx", int_array(&m.idx)),
            ("aval", real_array(&m.val)),
            ("xold", real_array(&dense_reals(m.cols, scale.seed ^ 0x52))),
            ("b", real_array(&dense_reals(r, scale.seed ^ 0x53))),
            ("dinv", real_array(&dense_reals(r, scale.seed ^ 0x54))),
        ],
        expected_tier: ExpectedTier::CompileTimeParallel,
        expected_facts: "none",
    }
}

/// Sparse forward substitution `L·xsol = b` over the strictly-lower
/// triangle: iteration `i` reads `xsol` at earlier rows through the
/// index array, a genuine loop-carried dependence no inspection can
/// clear — proven (and kept) sequential.
pub fn trisolve(scale: &SparseScale) -> SparseProgram {
    let m = crs(scale).strict_lower();
    let (r, e) = (m.segments(), m.nnz().max(1));
    let source = format!(
        "program trisolve
  integer i, j, n, lptr({rp}), llen({r}), lidx({e})
  real lval({e}), xsol({r}), b({r}), dinv({r})
  n = {r}
  do 300 i = 1, n
    xsol(i) = b(i)
    do j = 1, llen(i)
      xsol(i) = xsol(i) - lval(lptr(i) + j - 1) * xsol(lidx(lptr(i) + j - 1))
    enddo
    xsol(i) = xsol(i) * dinv(i)
 300 continue
  print xsol(1), xsol({m}), xsol({r})
end
",
        rp = r + 1,
        m = mid(r),
    );
    SparseProgram {
        name: "trisolve",
        label: "TRISOLVE/do300".into(),
        source,
        presets: vec![
            ("lptr", int_array(&m.ptr)),
            ("llen", int_array(&m.len)),
            ("lidx", int_array(&m.idx)),
            ("lval", real_array(&m.val)),
            ("b", real_array(&dense_reals(r, scale.seed ^ 0x55))),
            ("dinv", real_array(&dense_reals(r, scale.seed ^ 0x56))),
        ],
        expected_tier: ExpectedTier::Sequential,
        expected_facts: "none",
    }
}

/// LU factorization front updates over CRS: each row's segment of the
/// `front` workspace is scaled and accumulated in place. The segments
/// are disjoint exactly when `rowptr`/`rowlen` form an offset–length
/// chain — unprovable for preset arrays, so the loop lands on the
/// runtime-guarded tier with an offset–length inspection.
pub fn lufront(scale: &SparseScale) -> SparseProgram {
    let m = crs(scale);
    let (r, e) = (m.segments(), m.nnz().max(1));
    let front = dense_reals(e, scale.seed ^ 0x57);
    let source = format!(
        "program lufront
  integer i, j, n, rowptr({rp}), rowlen({r})
  real aval({e}), front({e})
  n = {r}
  do 400 i = 1, n
    do j = 1, rowlen(i)
      front(rowptr(i) + j - 1) = front(rowptr(i) + j - 1) * 0.98 + aval(rowptr(i) + j - 1)
    enddo
 400 continue
  print front(1), front({me}), front({e})
end
",
        rp = r + 1,
        me = mid(e),
    );
    SparseProgram {
        name: "lufront",
        label: "LUFRONT/do400".into(),
        source,
        presets: vec![
            ("rowptr", int_array(&m.ptr)),
            ("rowlen", int_array(&m.len)),
            ("aval", real_array(&m.val)),
            ("front", real_array(&front)),
        ],
        expected_tier: ExpectedTier::RuntimeGuarded,
        expected_facts: "none",
    }
}

/// `lufront` with the offset–length chain built *in the program*:
/// an init loop zeroes `rowlen`, a histogram over the preset `rowof`
/// counts nonzeros per row, and a prefix-sum loop derives `rowptr`.
/// Value evolution proves `rowlen ≥ 0` (fill + accumulate) and the
/// `rowptr(i+1) = rowptr(i) + rowlen(i)` chain, so the do-400 consumer
/// needs no offset–length inspection — it is compile-time parallel.
pub fn lufront_producer(scale: &SparseScale) -> SparseProgram {
    let m = crs(scale);
    let (r, e) = (m.segments(), m.nnz().max(1));
    let front = dense_reals(e, scale.seed ^ 0x57);
    let source = format!(
        "program lufrontp
  integer i, j, k, n, nnz, rowptr({rp}), rowlen({r}), rowof({e})
  real aval({e}), front({e})
  n = {r}
  nnz = {anz}
  do 310 i = 1, n
    rowlen(i) = 0
 310 continue
  do 320 k = 1, nnz
    rowlen(rowof(k)) = rowlen(rowof(k)) + 1
 320 continue
  rowptr(1) = 1
  do 330 i = 1, n
    rowptr(i + 1) = rowptr(i) + rowlen(i)
 330 continue
  do 400 i = 1, n
    do j = 1, rowlen(i)
      front(rowptr(i) + j - 1) = front(rowptr(i) + j - 1) * 0.98 + aval(rowptr(i) + j - 1)
    enddo
 400 continue
  print front(1), front({me}), front({e})
end
",
        rp = r + 1,
        anz = m.nnz(),
        me = mid(e),
    );
    SparseProgram {
        name: "lufront_producer",
        label: "LUFRONTP/do400".into(),
        source,
        presets: vec![
            ("rowof", int_array(&segment_of(&m))),
            ("aval", real_array(&m.val)),
            ("front", real_array(&front)),
        ],
        expected_tier: ExpectedTier::CompileTimeParallel,
        expected_facts: "none",
    }
}

/// CCS column scaling (the Fig. 3 shape at generated scale): in-place
/// update of each column segment through preset `colptr`/`collen` —
/// runtime-guarded by the offset–length inspection, like `lufront`,
/// but over the column-compressed layout.
pub fn colscale(scale: &SparseScale) -> SparseProgram {
    let m = ccs(scale);
    let (s, e) = (m.segments(), m.nnz().max(1));
    let source = format!(
        "program colscale
  integer i, j, ncol, colptr({sp}), collen({s})
  real cval({e})
  ncol = {s}
  do 500 i = 1, ncol
    do j = 1, collen(i)
      cval(colptr(i) + j - 1) = cval(colptr(i) + j - 1) * 0.5 + 1.0
    enddo
 500 continue
  print cval(1), cval({me}), cval({e})
end
",
        sp = s + 1,
        me = mid(e),
    );
    SparseProgram {
        name: "colscale",
        label: "COLSCALE/do500".into(),
        source,
        presets: vec![
            ("colptr", int_array(&m.ptr)),
            ("collen", int_array(&m.len)),
            ("cval", real_array(&m.val)),
        ],
        expected_tier: ExpectedTier::RuntimeGuarded,
        expected_facts: "none",
    }
}

/// `colscale` with an in-program producer chain over the CCS layout:
/// zero-fill, histogram over the preset `colof`, prefix-sum into
/// `colptr` — the do-500 consumer's offset–length inspection is
/// retired and the loop promotes to compile-time parallel.
pub fn colscale_producer(scale: &SparseScale) -> SparseProgram {
    let m = ccs(scale);
    let (s, e) = (m.segments(), m.nnz().max(1));
    let source = format!(
        "program colscalep
  integer i, j, k, ncol, nnz, colptr({sp}), collen({s}), colof({e})
  real cval({e})
  ncol = {s}
  nnz = {anz}
  do 510 i = 1, ncol
    collen(i) = 0
 510 continue
  do 520 k = 1, nnz
    collen(colof(k)) = collen(colof(k)) + 1
 520 continue
  colptr(1) = 1
  do 530 i = 1, ncol
    colptr(i + 1) = colptr(i) + collen(i)
 530 continue
  do 500 i = 1, ncol
    do j = 1, collen(i)
      cval(colptr(i) + j - 1) = cval(colptr(i) + j - 1) * 0.5 + 1.0
    enddo
 500 continue
  print cval(1), cval({me}), cval({e})
end
",
        sp = s + 1,
        anz = m.nnz(),
        me = mid(e),
    );
    SparseProgram {
        name: "colscale_producer",
        label: "COLSCALEP/do500".into(),
        source,
        presets: vec![
            ("colof", int_array(&segment_of(&m))),
            ("cval", real_array(&m.val)),
        ],
        expected_tier: ExpectedTier::CompileTimeParallel,
        expected_facts: "none",
    }
}

/// Pointer-chasing traversal: every row walks a successor chain
/// through `nxt`, accumulating weights into `acc(i)`. The chased
/// pointer `p` and hop counter `h` privatize (written before read each
/// iteration), and `acc` is identity-subscripted — compile-time
/// parallel despite the irregular read stream.
pub fn chase(scale: &SparseScale) -> SparseProgram {
    let r = scale.n.max(1);
    let nodes = scale.nnz.max(1);
    let mut rng = SplitMix64::new(scale.seed ^ 0x58);
    let head: Vec<i64> = (0..r).map(|_| rng.range_i64(1, nodes as i64)).collect();
    let source = format!(
        "program chase
  integer i, p, h, n, nhop, head({r}), nxt({nodes})
  real w({nodes}), acc({r})
  n = {r}
  nhop = 8
  do 600 i = 1, n
    acc(i) = 0.0
    p = head(i)
    h = 0
    while (h < nhop)
      acc(i) = acc(i) + w(p)
      p = nxt(p)
      h = h + 1
    endwhile
 600 continue
  print acc(1), acc({m}), acc({r})
end
",
        m = mid(r),
    );
    SparseProgram {
        name: "chase",
        label: "CHASE/do600".into(),
        source,
        presets: vec![
            ("head", int_array(&head)),
            (
                "nxt",
                int_array(&random_successors(nodes, scale.seed ^ 0x59)),
            ),
            ("w", real_array(&dense_reals(nodes, scale.seed ^ 0x5a))),
        ],
        expected_tier: ExpectedTier::CompileTimeParallel,
        expected_facts: "none",
    }
}

/// Flat nonzero scaling `bval(k) = aval(k)·1.5 + 0.25`: straight-line
/// body, every write at the loop variable, target never read — the
/// driver proves the disjoint-affine facts and the runtime commits in
/// place with no write-log.
pub fn scale_kernel(scale: &SparseScale) -> SparseProgram {
    let m = crs(scale);
    let e = m.nnz().max(1);
    let source = format!(
        "program scale
  integer k, nnz
  real aval({e}), bval({e})
  nnz = {e}
  do 700 k = 1, nnz
    bval(k) = aval(k) * 1.5 + 0.25
 700 continue
  print bval(1), bval({me}), bval({e})
end
",
        me = mid(e),
    );
    SparseProgram {
        name: "scale",
        label: "SCALE/do700".into(),
        source,
        presets: vec![("aval", real_array(&m.val))],
        expected_tier: ExpectedTier::CompileTimeParallel,
        expected_facts: "disjoint-affine",
    }
}

/// Permutation scatter `pval(perm(k)) = aval(k)·2.0`: parallel exactly
/// when `perm` is injective — unprovable for a preset array, so the
/// loop is runtime-guarded by the injectivity inspection (the chunked
/// parallel bitmap path at bench sizes).
pub fn permute(scale: &SparseScale) -> SparseProgram {
    let m = crs(scale);
    let e = m.nnz().max(1);
    let source = format!(
        "program permute
  integer k, nnz, perm({e})
  real aval({e}), pval({e})
  nnz = {e}
  do 800 k = 1, nnz
    pval(perm(k)) = aval(k) * 2.0
 800 continue
  print pval(1), pval({me}), pval({e})
end
",
        me = mid(e),
    );
    SparseProgram {
        name: "permute",
        label: "PERMUTE/do800".into(),
        source,
        presets: vec![
            ("perm", int_array(&random_permutation(e, scale.seed ^ 0x5b))),
            ("aval", real_array(&m.val)),
        ],
        expected_tier: ExpectedTier::RuntimeGuarded,
        expected_facts: "none",
    }
}

/// `permute` with the permutation built by an in-program reversal
/// fill `perm(k) = nnz + 1 - k`: value evolution proves the fill
/// injective over the loop range, so the do-800 scatter needs no
/// injectivity inspection — compile-time parallel.
pub fn permute_producer(scale: &SparseScale) -> SparseProgram {
    let m = crs(scale);
    let e = m.nnz().max(1);
    let source = format!(
        "program permutep
  integer k, nnz, perm({e})
  real aval({e}), pval({e})
  nnz = {anz}
  do 710 k = 1, nnz
    perm(k) = nnz + 1 - k
 710 continue
  do 800 k = 1, nnz
    pval(perm(k)) = aval(k) * 2.0
 800 continue
  print pval(1), pval({me}), pval({e})
end
",
        anz = m.nnz(),
        me = mid(e),
    );
    SparseProgram {
        name: "permute_producer",
        label: "PERMUTEP/do800".into(),
        source,
        presets: vec![("aval", real_array(&m.val))],
        expected_tier: ExpectedTier::CompileTimeParallel,
        expected_facts: "none",
    }
}

/// `lufront_producer` with the whole producer chain moved into a
/// subroutine the inliner must skip (its loops are labeled): the
/// offset–length facts reach the do-400 consumer only via the
/// interprocedural summaries, so the loop promotes to
/// `CompileTimeParallel` exactly when summaries are enabled — the
/// SPARK00-style decomposed-kernel shape.
pub fn lufront_callchain(scale: &SparseScale) -> SparseProgram {
    let m = crs(scale);
    let (r, e) = (m.segments(), m.nnz().max(1));
    let front = dense_reals(e, scale.seed ^ 0x65);
    let source = format!(
        "program lufrontc
  integer i, j, k, n, nnz, rowptr({rp}), rowlen({r}), rowof({e})
  real aval({e}), front({e})
  n = {r}
  call crsbld
  do 400 i = 1, n
    do j = 1, rowlen(i)
      front(rowptr(i) + j - 1) = front(rowptr(i) + j - 1) * 0.98 + aval(rowptr(i) + j - 1)
    enddo
 400 continue
  print front(1), front({me}), front({e})
end
subroutine crsbld
  integer i, k, nnz, rowptr({rp}), rowlen({r}), rowof({e})
  do 610 i = 1, {r}
    rowlen(i) = 0
 610 continue
  do 620 k = 1, {anz}
    rowlen(rowof(k)) = rowlen(rowof(k)) + 1
 620 continue
  rowptr(1) = 1
  do 630 i = 1, {r}
    rowptr(i + 1) = rowptr(i) + rowlen(i)
 630 continue
end
",
        rp = r + 1,
        anz = m.nnz(),
        me = mid(e),
    );
    SparseProgram {
        name: "lufront_callchain",
        label: "LUFRONTC/do400".into(),
        source,
        presets: vec![
            ("rowof", int_array(&segment_of(&m))),
            ("aval", real_array(&m.val)),
            ("front", real_array(&front)),
        ],
        expected_tier: ExpectedTier::CompileTimeParallel,
        expected_facts: "none",
    }
}

/// `permute_producer` with the reversal fill hidden in a subroutine
/// (labeled loop, so never inlined): the injectivity fact crosses the
/// call via summaries and the do-800 scatter promotes — without them
/// it stays runtime-guarded.
pub fn permute_callchain(scale: &SparseScale) -> SparseProgram {
    let m = crs(scale);
    let e = m.nnz().max(1);
    let source = format!(
        "program permutec
  integer k, nnz, perm({e})
  real aval({e}), pval({e})
  nnz = {anz}
  call permbld
  do 800 k = 1, nnz
    pval(perm(k)) = aval(k) * 2.0
 800 continue
  print pval(1), pval({me}), pval({e})
end
subroutine permbld
  integer k, perm({e})
  do 710 k = 1, {anz}
    perm(k) = {anz} + 1 - k
 710 continue
end
",
        anz = m.nnz(),
        me = mid(e),
    );
    SparseProgram {
        name: "permute_callchain",
        label: "PERMUTEC/do800".into(),
        source,
        presets: vec![("aval", real_array(&m.val))],
        expected_tier: ExpectedTier::CompileTimeParallel,
        expected_facts: "none",
    }
}

/// The call-structured producer kernels, in a stable order: consumers
/// identical to the producer kernels', but the index arrays are built
/// by subroutines the inliner cannot flatten. Their promotion is the
/// acceptance test of the interprocedural summary pass.
pub fn interproc_kernels(scale: &SparseScale) -> Vec<SparseProgram> {
    vec![lufront_callchain(scale), permute_callchain(scale)]
}

/// Heavy-row gathering: appends the indices of rows longer than the
/// mean to a compacted list through an incremented pointer. The
/// pointer dependence proves the loop sequential, but the
/// consecutive-append facts promote it to the privatize-and-concat
/// strategy at dispatch time.
pub fn rowgather(scale: &SparseScale) -> SparseProgram {
    let m = crs(scale);
    let r = m.segments();
    let threshold = (m.nnz() / r.max(1)) as i64;
    let source = format!(
        "program rowgather
  integer i, n, q, rowlen({r}), heavy({r})
  n = {r}
  q = 0
  do 900 i = 1, n
    if (rowlen(i) > {threshold}) then
      q = q + 1
      heavy(q) = i
    endif
 900 continue
  print q, heavy(1)
end
",
    );
    SparseProgram {
        name: "rowgather",
        label: "ROWGATHER/do900".into(),
        source,
        presets: vec![("rowlen", int_array(&m.len))],
        expected_tier: ExpectedTier::Sequential,
        expected_facts: "consecutive-append",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    #[test]
    fn all_kernels_parse_at_test_scale() {
        for structure in [
            Structure::Banded { bandwidth: 8 },
            Structure::Uniform,
            Structure::PowerLaw,
        ] {
            let scale = SparseScale::test(structure, 42);
            let mut ks = kernels(&scale);
            assert_eq!(ks.len(), 9);
            let pks = producer_kernels(&scale);
            assert_eq!(pks.len(), 3);
            ks.extend(pks);
            for k in &ks {
                let p = parse_program(&k.source)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{}", k.name, k.source));
                for (name, data) in &k.presets {
                    assert!(
                        p.symbols.lookup(name).is_some(),
                        "{}: preset `{name}` undeclared",
                        k.name
                    );
                    assert!(!data.is_empty());
                }
            }
        }
    }

    #[test]
    fn kernels_parse_at_edge_scales() {
        for scale in [
            // Zero nonzeros: every segment empty, padded presets.
            SparseScale {
                n: 8,
                nnz: 0,
                structure: Structure::Uniform,
                seed: 1,
            },
            // Single row.
            SparseScale {
                n: 1,
                nnz: 12,
                structure: Structure::Banded { bandwidth: 4 },
                seed: 2,
            },
        ] {
            for k in kernels(&scale).into_iter().chain(producer_kernels(&scale)) {
                parse_program(&k.source)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{}", k.name, k.source));
            }
        }
    }

    #[test]
    fn suite_spans_all_tiers_and_strategies() {
        let ks = kernels(&SparseScale::test(Structure::Uniform, 7));
        let tiers: Vec<ExpectedTier> = ks.iter().map(|k| k.expected_tier).collect();
        assert!(tiers.contains(&ExpectedTier::CompileTimeParallel));
        assert!(tiers.contains(&ExpectedTier::RuntimeGuarded));
        assert!(tiers.contains(&ExpectedTier::Sequential));
        let facts: Vec<&str> = ks.iter().map(|k| k.expected_facts).collect();
        assert!(facts.contains(&"none"));
        assert!(facts.contains(&"disjoint-affine"));
        assert!(facts.contains(&"consecutive-append"));
    }

    #[test]
    fn producer_kernels_expect_promotion_everywhere() {
        let pks = producer_kernels(&SparseScale::test(Structure::PowerLaw, 11));
        assert_eq!(pks.len(), 3);
        for k in &pks {
            assert_eq!(
                k.expected_tier,
                ExpectedTier::CompileTimeParallel,
                "{}: producer kernels exist to exercise evolution promotion",
                k.name
            );
            parse_program(&k.source).unwrap_or_else(|e| panic!("{}: {e}\n{}", k.name, k.source));
        }
    }

    #[test]
    fn interproc_kernels_parse_and_keep_the_producers_out_of_line() {
        let iks = interproc_kernels(&SparseScale::test(Structure::Uniform, 13));
        assert_eq!(iks.len(), 2);
        for k in &iks {
            assert_eq!(k.expected_tier, ExpectedTier::CompileTimeParallel);
            let p = parse_program(&k.source)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", k.name, k.source));
            assert_eq!(
                p.procedures.len(),
                2,
                "{}: the producer chain must live in a subroutine",
                k.name
            );
            // Labeled producer loops keep the subroutine out of the
            // inliner, so promotion genuinely crosses the call.
            let sub = &p.procedures[1];
            assert!(p.stmts_in(&sub.body).iter().any(|&s| matches!(
                p.stmt(s).kind,
                irr_frontend::StmtKind::Do { label: Some(_), .. }
            )));
        }
    }

    #[test]
    fn segment_map_reproduces_the_pointer_array() {
        // The prefix sum the producer programs compute over the
        // `segment_of` histogram must land exactly on the generator's
        // `ptr`, or the producer kernels would compute different
        // segment windows than their preset-based counterparts.
        let m = crs(&SparseScale::test(Structure::Uniform, 9));
        let of = segment_of(&m);
        assert_eq!(of.len(), m.nnz());
        let mut ptr = vec![1i64];
        for i in 0..m.segments() {
            let cnt = of.iter().filter(|&&s| s == (i + 1) as i64).count() as i64;
            ptr.push(ptr[i] + cnt);
        }
        assert_eq!(ptr, m.ptr);
    }
}
