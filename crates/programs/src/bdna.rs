//! BDNA kernel (Perfect Benchmarks): molecular dynamics of DNA in
//! water.
//!
//! `ACTFOR/do240` builds a per-particle distance scratch `xdt`, gathers
//! the indices of close pairs into `ind` (`ACTFOR/do236`, a §4
//! index-gathering loop — "ind CW" in Table 3), and accumulates forces
//! through the gathered indices `xdt(ind(j))`. The loop parallelizes
//! only when `xdt` is privatized via the closed-form bound of `ind` and
//! `ind` itself via the consecutively-written analysis. Per Table 3 the
//! loop is ~32% of sequential time.

use crate::{Benchmark, Scale};

/// Builds the BDNA kernel at the given scale.
pub fn benchmark(scale: Scale) -> Benchmark {
    // n: particles (outer loop); m: neighbor candidates per particle;
    // reps/nreg: the regular force sweeps (the other ~68%).
    let (n, m, nreg, reps) = match scale {
        Scale::Test => (24, 16, 400, 4),
        Scale::Paper => (400, 120, 20000, 12),
    };
    let source = format!(
        "program bdna
  integer i, j, k, q, n, m, nreg, nrep, ind({m})
  real x({n}), f({n}), xdt({m}), reg({nreg}), total
  n = {n}
  m = {m}
  nreg = {nreg}
  nrep = {reps}
  call init
  call actfor
  call regwork
  call chksum
end

subroutine init
  integer i2
  do i2 = 1, n
    x(i2) = mod(i2 * 13, 29) * 0.05
  enddo
  do i2 = 1, nreg
    reg(i2) = mod(i2 * 7, 11) * 0.125
  enddo
end

subroutine actfor
  do 240 i = 1, n
    do j = 1, m
      xdt(j) = x(i) - x(j) + (i - j) * 0.001
    enddo
    q = 0
    do 236 j = 1, m
      if (xdt(j) > 0.2) then
        q = q + 1
        ind(q) = j
      endif
 236 continue
    do j = 1, q
      f(i) = f(i) + xdt(ind(j)) * 0.01 + 0.001
    enddo
 240 continue
end

subroutine regwork
  ! regular sweeps: the bulk of BDNA parallelizes conventionally
  do 300 k = 1, nrep
    do i = 1, nreg
      reg(i) = reg(i) * 0.75 + 0.25
    enddo
 300 continue
end

subroutine chksum
  integer i4
  total = 0.0
  do i4 = 1, n
    total = total + f(i4)
  enddo
  do i4 = 1, nreg
    total = total + reg(i4)
  enddo
  print total
end
"
    );
    Benchmark {
        name: "BDNA",
        source,
        irregular_labels: vec!["ACTFOR/do240"],
        paper_coverage: 0.32,
    }
}
