//! The five benchmark kernels of the paper's evaluation (§5.2).
//!
//! TRFD, DYFESM, and BDNA come from the Perfect Benchmarks, P3M from
//! NCSA, and TREE is the Hawaii Barnes–Hut N-body code. The original
//! Fortran sources are not redistributable here, so each program is a
//! faithful mini-Fortran kernel reproducing the loops of Table 3 — the
//! same subroutine names, loop labels, index-array definition patterns
//! (triangular closed form, CCS offset/length, index gathering, array
//! stacks), and approximately the same share of sequential execution
//! time — together with the surrounding regular and serial code that
//! gives each program its Fig. 16 speedup shape.
//!
//! Each program prints a checksum so executions can be compared.

pub mod bdna;
pub mod dyfesm;
pub mod fuzz;
pub mod p3m;
pub mod sparse;
pub mod tree;
pub mod trfd;

/// Workload size.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny: for unit tests (fast to interpret).
    Test,
    /// The default evaluation size (seconds of interpreter time).
    Paper,
}

/// A benchmark program with its metadata.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Program name (upper case, as in Table 2).
    pub name: &'static str,
    /// Mini-Fortran source.
    pub source: String,
    /// The Table 3 loops: labels that should be parallelized *only*
    /// with the irregular access analyses.
    pub irregular_labels: Vec<&'static str>,
    /// Paper-reported fraction of sequential execution time accountable
    /// to the irregular loops (Table 3, column ten).
    pub paper_coverage: f64,
}

/// All five benchmarks at the given scale.
pub fn all(scale: Scale) -> Vec<Benchmark> {
    vec![
        trfd::benchmark(scale),
        dyfesm::benchmark(scale),
        bdna::benchmark(scale),
        p3m::benchmark(scale),
        tree::benchmark(scale),
    ]
}

/// Lines of code of a source (non-empty lines, as Table 2 counts).
pub fn loc(source: &str) -> usize {
    source.lines().filter(|l| !l.trim().is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use irr_frontend::parse_program;

    #[test]
    fn all_benchmarks_parse() {
        for b in all(Scale::Test) {
            parse_program(&b.source).unwrap_or_else(|e| panic!("{}: {e}\n{}", b.name, b.source));
        }
        for b in all(Scale::Paper) {
            parse_program(&b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn names_and_metadata() {
        let names: Vec<&str> = all(Scale::Test).iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["TRFD", "DYFESM", "BDNA", "P3M", "TREE"]);
        for b in all(Scale::Test) {
            assert!(!b.irregular_labels.is_empty(), "{}", b.name);
            assert!(b.paper_coverage > 0.0 && b.paper_coverage <= 1.0);
            assert!(loc(&b.source) > 20, "{} too small", b.name);
        }
    }
}
