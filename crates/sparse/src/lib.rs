//! SPARK00-class sparse matrix generators (van der Spek et al., see
//! PAPERS.md): deterministic, SplitMix64-driven matrices in CRS or CCS
//! layout with controlled density, bandwidth, and row-length skew.
//!
//! The generators produce exactly the index-array construction patterns
//! the paper's offset–length analysis targets: a prefix-sum-built `ptr`
//! array, per-segment lengths `len(k) = ptr(k+1) - ptr(k)`, and 1-based
//! column (or row) indices per nonzero — ready to be injected into the
//! interpreter as preset arrays (see [`int_array`]/[`real_array`] and
//! `Interp::preset_array`) so a 10M-nonzero workload does not have to
//! be initialized by interpreted loops.
//!
//! Everything is deterministic in `(spec, seed)`: the same
//! [`MatrixSpec`] always yields the same matrix, so verdict-stability
//! tests, the sanitizer's sparse audit mode, and the bench sweep all
//! agree on the workload.

use irr_exec::{ArrayData, SplitMix64};

/// Nonzero placement pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Structure {
    /// Nonzeros clustered within `bandwidth` of the diagonal — the
    /// discretized-PDE shape (balanced segment lengths, local indices).
    Banded {
        /// Maximum |column − row| of a nonzero.
        bandwidth: usize,
    },
    /// Nonzeros uniform over the whole matrix: balanced segment lengths
    /// with scattered indices.
    Uniform,
    /// Graph-shaped skew: segment lengths follow a Zipf-like
    /// distribution, so a few segments are huge and most are tiny —
    /// the adversarial case for static chunking.
    PowerLaw,
}

impl Structure {
    /// Short tag for bench IDs and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Structure::Banded { .. } => "banded",
            Structure::Uniform => "uniform",
            Structure::PowerLaw => "powerlaw",
        }
    }
}

/// Storage layout. The generated arrays are identical in shape; the
/// layout decides what a "segment" means (a row or a column), which the
/// kernels reflect in their loop nests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Layout {
    /// Compressed Row Storage: one segment per row, indices are columns.
    Crs,
    /// Compressed Column Storage: one segment per column, indices are
    /// rows.
    Ccs,
}

impl Layout {
    /// Short tag for bench IDs and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Layout::Crs => "crs",
            Layout::Ccs => "ccs",
        }
    }
}

/// Everything a generator needs; deterministic in all fields.
#[derive(Clone, Copy, Debug)]
pub struct MatrixSpec {
    pub rows: usize,
    pub cols: usize,
    /// Requested nonzero count (the generator hits it exactly).
    pub nnz: usize,
    pub structure: Structure,
    pub layout: Layout,
    pub seed: u64,
}

impl MatrixSpec {
    /// A square CRS spec with a structure-appropriate default bandwidth.
    pub fn square(n: usize, nnz: usize, structure: Structure, seed: u64) -> MatrixSpec {
        MatrixSpec {
            rows: n,
            cols: n,
            nnz,
            structure,
            layout: Layout::Crs,
            seed,
        }
    }
}

/// A generated sparse matrix. All index values are 1-based, matching
/// the mini-Fortran language; `ptr` is the prefix-sum offset array with
/// `segments() + 1` entries (`ptr[0] == 1`), `len[k] == ptr[k+1] -
/// ptr[k]`, and `idx`/`val` hold one entry per nonzero in segment
/// order.
#[derive(Clone, Debug)]
pub struct SparseMatrix {
    pub rows: usize,
    pub cols: usize,
    pub layout: Layout,
    /// Offsets: `seg k` (1-based) occupies `idx[ptr[k-1]-1 ..
    /// ptr[k]-1]`.
    pub ptr: Vec<i64>,
    /// Segment lengths (redundant with `ptr`, but the offset–length
    /// kernels read both arrays).
    pub len: Vec<i64>,
    /// 1-based cross indices per nonzero (columns for CRS, rows for
    /// CCS).
    pub idx: Vec<i64>,
    /// Nonzero values, in `(0.1, 1.1]`.
    pub val: Vec<f64>,
}

impl SparseMatrix {
    /// Number of segments (rows for CRS, columns for CCS).
    pub fn segments(&self) -> usize {
        self.len.len()
    }

    /// Actual nonzero count.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Fraction of positions holding a nonzero.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Ratio of the longest segment to the mean segment length — 1.0
    /// for perfectly balanced matrices, large for power-law skew.
    pub fn skew(&self) -> f64 {
        let max = self.len.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.nnz() as f64 / self.segments().max(1) as f64;
        if mean == 0.0 {
            return 1.0;
        }
        max / mean
    }

    /// The strictly-lower-triangular restriction (CRS): keeps only
    /// nonzeros with `idx < segment index`, rebuilding `ptr`/`len`.
    /// Values are rescaled by segment length so forward substitution
    /// stays numerically tame. The result feeds the triangular-solve
    /// kernel.
    pub fn strict_lower(&self) -> SparseMatrix {
        let segs = self.segments();
        let mut ptr = Vec::with_capacity(segs + 1);
        let mut len = Vec::with_capacity(segs);
        let mut idx = Vec::new();
        let mut val = Vec::new();
        ptr.push(1i64);
        for k in 1..=segs {
            let (a, b) = self.segment_range(k);
            let kept: Vec<usize> = (a..b).filter(|&e| self.idx[e] < k as i64).collect();
            let scale = 0.5 / (kept.len().max(1) as f64);
            for &e in &kept {
                idx.push(self.idx[e]);
                val.push(self.val[e].min(1.0) * scale);
            }
            len.push(kept.len() as i64);
            ptr.push(ptr[k - 1] + kept.len() as i64);
        }
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            layout: self.layout,
            ptr,
            len,
            idx,
            val,
        }
    }

    /// Zero-based element range `[start, end)` of 1-based segment `k`.
    pub fn segment_range(&self, k: usize) -> (usize, usize) {
        ((self.ptr[k - 1] - 1) as usize, (self.ptr[k] - 1) as usize)
    }
}

/// Generates the matrix described by `spec`. Deterministic in the spec
/// (including its seed). Segment lengths always sum to exactly
/// `spec.nnz`; indices are 1-based and within `[1, cross extent]`.
/// Duplicate indices within a segment are possible for the scattered
/// structures (they are harmless to every kernel and realistic for
/// accumulation workloads).
pub fn generate(spec: &MatrixSpec) -> SparseMatrix {
    let segs = match spec.layout {
        Layout::Crs => spec.rows,
        Layout::Ccs => spec.cols,
    };
    let cross = match spec.layout {
        Layout::Crs => spec.cols,
        Layout::Ccs => spec.rows,
    };
    assert!(
        segs > 0 && cross > 0,
        "matrix must have at least one row and column"
    );
    let mut rng = SplitMix64::new(spec.seed);
    let lengths = segment_lengths(&mut rng, segs, spec.nnz, spec.structure);
    let mut ptr = Vec::with_capacity(segs + 1);
    let mut len = Vec::with_capacity(segs);
    let mut idx = Vec::with_capacity(spec.nnz);
    let mut val = Vec::with_capacity(spec.nnz);
    ptr.push(1i64);
    for (k, &lk) in lengths.iter().enumerate() {
        for _ in 0..lk {
            let j = match spec.structure {
                Structure::Banded { bandwidth } => {
                    // Index within the band around the diagonal position
                    // scaled to the cross extent.
                    let center = if segs == 1 {
                        1
                    } else {
                        1 + (k as u64 * (cross as u64 - 1) / (segs as u64 - 1)) as i64
                    };
                    let w = bandwidth.max(1) as i64;
                    let lo = (center - w).max(1);
                    let hi = (center + w).min(cross as i64);
                    rng.range_i64(lo, hi)
                }
                Structure::Uniform | Structure::PowerLaw => rng.range_i64(1, cross as i64),
            };
            idx.push(j);
            val.push(0.1 + rng.next_f64());
        }
        len.push(lk as i64);
        ptr.push(ptr[k] + lk as i64);
    }
    debug_assert_eq!(*ptr.last().unwrap() as usize, spec.nnz + 1);
    SparseMatrix {
        rows: spec.rows,
        cols: spec.cols,
        layout: spec.layout,
        ptr,
        len,
        idx,
        val,
    }
}

/// Distributes `nnz` nonzeros over `segs` segments according to the
/// structure: balanced (±1) for banded and uniform, Zipf-weighted for
/// power-law. Always sums to exactly `nnz`.
fn segment_lengths(
    rng: &mut SplitMix64,
    segs: usize,
    nnz: usize,
    structure: Structure,
) -> Vec<usize> {
    match structure {
        Structure::Banded { .. } | Structure::Uniform => {
            let base = nnz / segs;
            let extra = nnz % segs;
            // The `extra` remainder entries land on random distinct
            // segments so the boundary is not always the same segment.
            let mut lengths = vec![base; segs];
            let mut bonus: Vec<usize> = (0..segs).collect();
            // Partial Fisher–Yates: pick `extra` distinct positions.
            for i in 0..extra.min(segs) {
                let j = i + rng.range_usize(0, segs - 1 - i);
                bonus.swap(i, j);
                lengths[bonus[i]] += 1;
            }
            lengths
        }
        Structure::PowerLaw => {
            // Zipf-like weights 1/(k+1); then largest-remainder
            // apportionment so the total is exact. The weight ranks are
            // shuffled so the heavy segments are scattered, not always
            // the leading ones.
            let mut ranks: Vec<usize> = (0..segs).collect();
            for i in 0..segs.saturating_sub(1) {
                let j = i + rng.range_usize(0, segs - 1 - i);
                ranks.swap(i, j);
            }
            let weights: Vec<f64> = (0..segs).map(|r| 1.0 / (r + 1) as f64).collect();
            let total: f64 = weights.iter().sum();
            let mut lengths = vec![0usize; segs];
            let mut assigned = 0usize;
            let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(segs);
            for (r, &w) in weights.iter().enumerate() {
                let exact = nnz as f64 * w / total;
                let floor = exact.floor() as usize;
                lengths[ranks[r]] = floor;
                assigned += floor;
                remainders.push((exact - floor as f64, ranks[r]));
            }
            remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            for (_, seg) in remainders.into_iter().take(nnz - assigned) {
                lengths[seg] += 1;
            }
            lengths
        }
    }
}

/// A random permutation of `1..=n` (1-based values), deterministic in
/// the seed — the workload for the injectivity-guarded scatter kernel.
pub fn random_permutation(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    let mut perm: Vec<i64> = (1..=n as i64).collect();
    for i in 0..n.saturating_sub(1) {
        let j = i + rng.range_usize(0, n - 1 - i);
        perm.swap(i, j);
    }
    perm
}

/// A random successor map over `1..=n` (each node points at some node),
/// deterministic in the seed — the workload for the pointer-chasing
/// kernel. Not necessarily a permutation.
pub fn random_successors(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.range_i64(1, n.max(1) as i64)).collect()
}

/// Packs `values` as an integer preset array, padding an empty slice to
/// one zero element (the interpreter rejects zero extents).
pub fn int_array(values: &[i64]) -> ArrayData {
    let data: Vec<i64> = if values.is_empty() {
        vec![0]
    } else {
        values.to_vec()
    };
    let dims = vec![data.len()];
    ArrayData::Int { data, dims }
}

/// Packs `values` as a real preset array, padding an empty slice to one
/// zero element.
pub fn real_array(values: &[f64]) -> ArrayData {
    let data: Vec<f64> = if values.is_empty() {
        vec![0.0]
    } else {
        values.to_vec()
    };
    let dims = vec![data.len()];
    ArrayData::Real { data, dims }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<MatrixSpec> {
        vec![
            MatrixSpec::square(64, 640, Structure::Banded { bandwidth: 8 }, 1),
            MatrixSpec::square(64, 640, Structure::Uniform, 2),
            MatrixSpec::square(64, 640, Structure::PowerLaw, 3),
            MatrixSpec {
                rows: 32,
                cols: 96,
                nnz: 500,
                structure: Structure::Uniform,
                layout: Layout::Ccs,
                seed: 4,
            },
        ]
    }

    #[test]
    fn generation_is_deterministic_and_well_formed() {
        for spec in specs() {
            let m = generate(&spec);
            let m2 = generate(&spec);
            assert_eq!(m.ptr, m2.ptr);
            assert_eq!(m.idx, m2.idx);
            assert_eq!(m.nnz(), spec.nnz, "{spec:?}");
            // Prefix-sum invariant: ptr[k+1] = ptr[k] + len[k], ptr[0]=1.
            assert_eq!(m.ptr[0], 1);
            assert_eq!(m.ptr.len(), m.segments() + 1);
            for k in 0..m.segments() {
                assert_eq!(m.ptr[k + 1], m.ptr[k] + m.len[k], "{spec:?} seg {k}");
                assert!(m.len[k] >= 0);
            }
            let cross = match spec.layout {
                Layout::Crs => spec.cols,
                Layout::Ccs => spec.rows,
            } as i64;
            assert!(m.idx.iter().all(|&j| j >= 1 && j <= cross), "{spec:?}");
            assert!(m.val.iter().all(|&v| v > 0.0 && v <= 1.1 + 1e-12));
        }
    }

    #[test]
    fn banded_indices_stay_in_band() {
        let spec = MatrixSpec::square(100, 1000, Structure::Banded { bandwidth: 5 }, 7);
        let m = generate(&spec);
        for k in 1..=m.segments() {
            let (a, b) = m.segment_range(k);
            for e in a..b {
                assert!((m.idx[e] - k as i64).abs() <= 5, "seg {k} idx {}", m.idx[e]);
            }
        }
    }

    #[test]
    fn power_law_is_skewed_and_uniform_is_not() {
        let pl = generate(&MatrixSpec::square(256, 8192, Structure::PowerLaw, 11));
        let un = generate(&MatrixSpec::square(256, 8192, Structure::Uniform, 11));
        assert!(pl.skew() > 4.0, "power-law skew {}", pl.skew());
        assert!(un.skew() < 1.5, "uniform skew {}", un.skew());
        assert_eq!(pl.nnz(), 8192);
        assert_eq!(un.nnz(), 8192);
    }

    #[test]
    fn edge_matrices_zero_nnz_and_single_row() {
        let zero = generate(&MatrixSpec::square(16, 0, Structure::Uniform, 5));
        assert_eq!(zero.nnz(), 0);
        assert!(zero.len.iter().all(|&l| l == 0));
        assert_eq!(zero.ptr, vec![1; 17]);
        let single = generate(&MatrixSpec {
            rows: 1,
            cols: 64,
            nnz: 10,
            structure: Structure::Banded { bandwidth: 3 },
            layout: Layout::Crs,
            seed: 6,
        });
        assert_eq!(single.segments(), 1);
        assert_eq!(single.len, vec![10]);
        assert_eq!(single.ptr, vec![1, 11]);
    }

    #[test]
    fn strict_lower_keeps_only_below_diagonal() {
        let m = generate(&MatrixSpec::square(64, 1024, Structure::Uniform, 9));
        let l = m.strict_lower();
        for k in 1..=l.segments() {
            let (a, b) = l.segment_range(k);
            for e in a..b {
                assert!(l.idx[e] < k as i64);
            }
            assert_eq!(l.ptr[k], l.ptr[k - 1] + l.len[k - 1]);
        }
        assert_eq!(l.len[0], 0, "row 1 has nothing below the diagonal");
        assert_eq!(l.nnz(), (*l.ptr.last().unwrap() - 1) as usize);
    }

    #[test]
    fn permutation_and_successors() {
        let p = random_permutation(257, 42);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=257).collect::<Vec<i64>>());
        assert_ne!(p, (1..=257).collect::<Vec<i64>>(), "shuffled");
        let s = random_successors(100, 42);
        assert!(s.iter().all(|&x| (1..=100).contains(&x)));
    }

    #[test]
    fn preset_packing_pads_empty() {
        assert_eq!(int_array(&[]).len(), 1);
        assert_eq!(real_array(&[]).len(), 1);
        assert_eq!(int_array(&[3, 4]).dims(), &[2]);
    }
}
